//! Regenerates the paper's **Table 1**: model sizes, memory usage,
//! transformation time, and Algorithm-1 runtime/iteration counts for the
//! FTWC at ε = 10⁻⁶, for N ∈ {1, 2, 4, 8, 16, 32, 64, 128}.
//!
//! By default the long-horizon (30000 h) analysis is only run for N ≤ 8 to
//! keep the run short; pass `--full` for the complete sweep (expect tens of
//! minutes for N = 128) or `--max-n <N>` to cap the cluster size.
//!
//! ```text
//! cargo run -p unicon-bench --release --bin table1 [-- --full] [--max-n N]
//! ```

use unicon_bench::{format_bytes, format_secs, has_flag, opt_value, PAPER_TABLE1};
use unicon_ftwc::{experiment, FtwcParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = has_flag(&args, "--full");
    let max_n: usize = opt_value(&args, "--max-n").unwrap_or(if full { 128 } else { 64 });
    let epsilon = 1e-6;
    let (t_short, t_long) = (100.0, 30_000.0);

    println!("Table 1 — FTWC model sizes, memory and Algorithm-1 runtimes (ε = {epsilon:.0e})");
    println!("paper values in parentheses; iterations differ because our Fox–Glynn");
    println!("truncation is the minimal k with P[X <= k] >= 1-ε, not the closed-form bound\n");
    println!(
        "{:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} | {:>8} | {:>9} {:>9} | {:>7} {:>7}",
        "N",
        "IntSt",
        "MarkSt",
        "IntTr",
        "MarkTr",
        "Mem",
        "Tf(s)",
        "100h(s)",
        "30kh(s)",
        "it100",
        "it30k"
    );

    for &(n, pi, pm, pti, ptm, ptf, pr100, pr30k, pit100, pit30k) in &PAPER_TABLE1 {
        if n > max_n {
            break;
        }
        let run_long = full || n <= 8;
        let bounds: Vec<f64> = if run_long {
            vec![t_short, t_long]
        } else {
            vec![t_short]
        };
        let row = experiment::table1_row(&FtwcParams::new(n), &bounds, epsilon);
        let (r100, it100, p100) = (row.analyses[0].1, row.analyses[0].2, row.analyses[0].3);
        let long = row.analyses.get(1);
        println!(
            "{:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} | {:>8} | {:>9} {:>9} | {:>7} {:>7}",
            n,
            row.interactive_states,
            row.markov_states,
            row.interactive_transitions,
            row.markov_transitions,
            format_bytes(row.memory_bytes),
            format_secs(row.transform_time),
            format_secs(r100),
            long.map_or_else(|| "-".into(), |l| format_secs(l.1)),
            it100,
            long.map_or_else(|| "-".into(), |l| l.2.to_string()),
        );
        println!(
            "     | ({pi:>7}) ({pm:>7}) | ({pti:>7}) ({ptm:>7}) |           | ({ptf:>5.1}) | ({pr100:>6.2}) ({pr30k:>6.1}) | ({pit100:>4}) ({pit30k:>5})"
        );
        print!("     | worst-case P(premium lost, 100 h) = {p100:.6e}");
        if let Some(l) = long {
            print!(",  30000 h = {:.6e}", l.3);
        }
        println!("\n");
    }
}
