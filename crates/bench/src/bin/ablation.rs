//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Precision vs. iterations** — the ε → k(ε, E, t) trade-off of the
//!    Fox–Glynn truncation that drives Algorithm 1's cost.
//! 2. **Γ sensitivity** — how the classic CTMC's overestimation scales with
//!    the artificial decision rate.
//! 3. **Minimize-first vs. transform-directly** — effect of stochastic
//!    branching bisimulation minimization on CTMDP size, with value
//!    preservation checked.
//!
//! ```text
//! cargo run -p unicon-bench --release --bin ablation
//! ```

use unicon_core::{ClosedModel, PreparedModel};
use unicon_ftwc::{experiment, generator, FtwcParams};
use unicon_imc::{bisim, View};
use unicon_numeric::FoxGlynn;

fn main() {
    precision_vs_iterations();
    gamma_sensitivity();
    minimization_effect();
}

fn precision_vs_iterations() {
    println!("── Ablation 1: precision ε vs. iteration count k(ε, E, t) ──");
    let params = FtwcParams::new(4);
    let e = params.uniform_rate();
    println!("uniform rate E = {e:.4}\n   ε      | k(100 h) | k(30000 h)");
    for neg in [3, 6, 9, 12] {
        let eps = 10f64.powi(-neg);
        let k100 = FoxGlynn::new(e * 100.0).right_truncation(eps);
        let k30k = FoxGlynn::new(e * 30_000.0).right_truncation(eps);
        println!("   1e-{neg:<3} | {k100:>8} | {k30k:>10}");
    }
    println!("(the cost of two extra precision digits is a few √λ iterations)\n");
}

fn gamma_sensitivity() {
    println!("── Ablation 2: CTMC overestimation vs. decision rate Γ ──");
    println!("FTWC N = 2, t = 500 h\n   Γ      | CTMC − CTMDP (abs) | relative");
    let t = 500.0;
    let base = {
        let params = FtwcParams::new(2);
        let model = generator::build_uimc(&params);
        let prepared =
            PreparedModel::new(&model.uniform, &model.premium_down).expect("transforms");
        prepared
            .worst_case(t, 1e-9)
            .expect("uniform")
            .from_state(prepared.ctmdp.initial())
    };
    for gamma in [10.0, 100.0, 1000.0, 10_000.0] {
        let mut params = FtwcParams::new(2);
        params.gamma = gamma;
        let pts = experiment::figure4(&params, &[t], 1e-9);
        let gap = pts[0].ctmc - base;
        println!(
            "   {gamma:<6} | {gap:>+18.3e} | {:>+8.4}%",
            100.0 * gap / base
        );
    }
    println!("(the artificial-race error decays like 1/Γ but never changes sign)\n");
}

fn minimization_effect() {
    println!("── Ablation 3: minimize-first vs. transform-directly ──");
    println!("   N | direct CTMDP | minimized CTMDP | value direct | value minimized");
    for n in [1usize, 2, 4] {
        let params = FtwcParams::new(n);
        let model = generator::build_uimc(&params);

        let direct =
            PreparedModel::new(&model.uniform, &model.premium_down).expect("transforms");
        let v_direct = direct
            .worst_case(100.0, 1e-8)
            .expect("uniform")
            .from_state(direct.ctmdp.initial());

        let labels: Vec<u32> = model.premium_down.iter().map(|&d| u32::from(d)).collect();
        let (small, small_labels) =
            bisim::minimize_labeled(model.uniform.imc(), View::Closed, &labels);
        let small_goal: Vec<bool> = small_labels.iter().map(|&l| l == 1).collect();
        let small_model = ClosedModel::try_new(small).expect("quotient stays uniform");
        let minimized =
            PreparedModel::new(&small_model, &small_goal).expect("transforms");
        let v_min = minimized
            .worst_case(100.0, 1e-8)
            .expect("uniform")
            .from_state(minimized.ctmdp.initial());

        println!(
            "   {n} | {:>6} states | {:>9} states | {v_direct:.6e} | {v_min:.6e}",
            direct.ctmdp.num_states(),
            minimized.ctmdp.num_states()
        );
        assert!(
            (v_direct - v_min).abs() < 1e-6,
            "minimization changed the analysis value!"
        );
    }
    println!("(values agree to analysis precision — Lemma 3 at work)");
}
