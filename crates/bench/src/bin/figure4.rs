//! Regenerates the paper's **Figure 4**: worst-case timed reachability of
//! "premium service lost" from the nondeterministic CTMDP model vs. the
//! probability computed from the classic Γ-resolved CTMC, over a grid of
//! mission times.
//!
//! The paper plots N = 4 and N = 128; the default here is N = 4 (the
//! N = 128 CTMC transient analysis is dominated by the Γ-induced stiffness
//! — pass `--n 128` and some patience if you want it).
//!
//! ```text
//! cargo run -p unicon-bench --release --bin figure4 [-- --n N] [--gamma G]
//! ```

use unicon_bench::opt_value;
use unicon_ftwc::{experiment, FtwcParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = opt_value(&args, "--n").unwrap_or(4);
    let gamma: f64 = opt_value(&args, "--gamma").unwrap_or(100.0);
    let max_t: f64 = opt_value(&args, "--max-t").unwrap_or(2000.0);
    let epsilon = 1e-9;

    let mut params = FtwcParams::new(n);
    params.gamma = gamma;

    println!("Figure 4 — CTMDP worst case vs. Γ-resolved CTMC, N = {n}, Γ = {gamma}");
    println!("(the CTMC consistently overestimates: its high-rate assignment races");
    println!(" leave failed components unattended for windows the faithful urgent");
    println!(" interpretation does not have)\n");

    // The CTMC side's uniformization rate is dominated by Γ, so its cost
    // grows like Γ·t — cap the grid via --max-t for large N.
    let times: Vec<f64> = [
        10.0, 20.0, 50.0, 100.0, 200.0, 400.0, 700.0, 1000.0, 1500.0, 2000.0,
    ]
    .into_iter()
    .filter(|&t| t <= max_t)
    .collect();
    let points = experiment::figure4(&params, &times, epsilon);

    println!(
        "{:>7} | {:>16} | {:>16} | {:>12} | {:>9}",
        "t (h)", "CTMDP worst", "CTMC", "CTMC-CTMDP", "rel. (%)"
    );
    let mut all_over = true;
    for p in &points {
        let gap = p.ctmc - p.ctmdp_worst;
        all_over &= gap >= 0.0;
        println!(
            "{:>7.0} | {:>16.9e} | {:>16.9e} | {:>+12.3e} | {:>+9.4}",
            p.t,
            p.ctmdp_worst,
            p.ctmc,
            gap,
            100.0 * gap / p.ctmdp_worst.max(1e-300)
        );
    }
    println!(
        "\nCTMC {} the worst-case probability at every point.",
        if all_over {
            "overestimates"
        } else {
            "does NOT overestimate (unexpected)"
        }
    );

    // ASCII sketch of the two curves (log-free, normalized).
    let max = points
        .iter()
        .map(|p| p.ctmc)
        .fold(0.0f64, f64::max)
        .max(1e-300);
    println!("\n  normalized curves ('#' CTMDP, 'o' CTMC where it exceeds):");
    for p in &points {
        let w = (60.0 * p.ctmdp_worst / max).round() as usize;
        let c = (60.0 * p.ctmc / max).round() as usize;
        let mut line: Vec<char> = vec![' '; 62];
        for ch in line.iter_mut().take(w + 1) {
            *ch = '#';
        }
        if c > w {
            for ch in line.iter_mut().take(c + 1).skip(w + 1) {
                *ch = 'o';
            }
        }
        println!("  {:>6.0}h |{}", p.t, line.iter().collect::<String>());
    }
}
