//! Reproduces the "Technicalities" observations of Section 5: the
//! compositional (CADP-style) construction works for small N thanks to
//! compositional minimization, but intermediate state spaces grow quickly —
//! the paper itself gave up at N = 16. The generated (PRISM-style) route
//! scales instead, and both routes agree on the analysis results.
//!
//! ```text
//! cargo run -p unicon-bench --release --bin compositional_route [-- --max-n N]
//! ```

use std::time::Instant;

use unicon_bench::opt_value;
use unicon_core::PreparedModel;
use unicon_ftwc::{compositional, experiment, generator, FtwcParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_n: usize = opt_value(&args, "--max-n").unwrap_or(3);
    let t = 100.0;
    let epsilon = 1e-8;

    println!("Compositional (CADP-route) vs. generated (PRISM-route) FTWC models");
    println!("worst-case P(premium lost within {t} h), ε = {epsilon:.0e}\n");
    println!(
        "{:>3} | {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9} | {:>11}",
        "N", "comp states", "comp P", "comp (s)", "gen states", "gen P", "gen (s)", "|ΔP|"
    );

    for n in 1..=max_n {
        let params = FtwcParams::new(n);

        let start = Instant::now();
        let comp = compositional::build(&params);
        let comp_prepared =
            PreparedModel::new(&comp.uniform.close(), &comp.premium_down).expect("transforms");
        let p_comp = comp_prepared
            .worst_case(t, epsilon)
            .expect("uniform")
            .from_state(comp_prepared.ctmdp.initial());
        let comp_time = start.elapsed();
        let comp_states = comp.uniform.imc().num_states();

        let start = Instant::now();
        let gen = generator::build_uimc(&params);
        let gen_prepared =
            PreparedModel::new(&gen.uniform, &gen.premium_down).expect("transforms");
        let p_gen = gen_prepared
            .worst_case(t, epsilon)
            .expect("uniform")
            .from_state(gen_prepared.ctmdp.initial());
        let gen_time = start.elapsed();
        let gen_states = gen.uniform.imc().num_states();

        println!(
            "{:>3} | {:>12} {:>12.6e} {:>9.2} | {:>12} {:>12.6e} {:>9.2} | {:>11.2e}",
            n,
            comp_states,
            p_comp,
            comp_time.as_secs_f64(),
            gen_states,
            p_gen,
            gen_time.as_secs_f64(),
            (p_comp - p_gen).abs()
        );
    }

    println!(
        "\nThe two constructions use different uniform rates (per-component elapse\n\
         timers vs. one shared repair timer) yet describe the same stochastic\n\
         behaviour — the probabilities agree to analysis precision. The paper's\n\
         CADP route hit a 2 GB wall at N = 16; the compositional route here is\n\
         likewise only practical for small N, which is exactly the point of the\n\
         scalable counter generator."
    );
    let _ = experiment::cross_validate; // same computation, exposed as API
}
