//! Shared helpers for the benchmark harness binaries that regenerate the
//! paper's Table 1 and Figure 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// One row of the paper's Table 1: `(N, interactive states, Markov states,
/// interactive transitions, Markov transitions, transformation time s,
/// runtime 100 h s, runtime 30000 h s, iterations 100 h,
/// iterations 30000 h)`.
pub type PaperRow = (usize, usize, usize, usize, usize, f64, f64, f64, usize, usize);

/// The paper's Table 1, verbatim, for side-by-side comparison.
pub const PAPER_TABLE1: [PaperRow; 8] = [
    (1, 110, 81, 155, 324, 5.37, 0.01, 6.04, 372, 62_161),
    (2, 274, 205, 403, 920, 4.32, 0.01, 12.33, 372, 62_284),
    (4, 818, 621, 1235, 3000, 5.25, 0.04, 37.28, 373, 62_528),
    (8, 2770, 2125, 4243, 10_712, 5.83, 0.13, 47.77, 375, 63_016),
    (16, 10_130, 7821, 15_635, 40_344, 6.61, 0.52, 294.97, 378, 63_993),
    (32, 38_674, 29_965, 59_923, 156_440, 9.44, 3.23, 877.52, 384, 65_945),
    (64, 151_058, 117_261, 234_515, 615_960, 20.58, 37.42, 3044.72, 397, 69_849),
    (128, 597_010, 463_885, 927_763, 2_444_312, 57.31, 557.52, 20_867.06, 423, 77_651),
];

/// Formats a byte count the way the paper does (KB / MB).
pub fn format_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.1} MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn format_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.01 {
        format!("{:.2e}", s)
    } else if s < 10.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.1}")
    }
}

/// Simple flag lookup in the argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--key value` style options.
pub fn opt_value<T: std::str::FromStr>(args: &[String], key: &str) -> Option<T> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(14_540), "14.2 KB");
        assert_eq!(format_bytes(98_147_436), "93.6 MB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(format_secs(Duration::from_millis(1)), "1.00e-3");
        assert_eq!(format_secs(Duration::from_millis(2500)), "2.500");
        assert_eq!(format_secs(Duration::from_secs(100)), "100.0");
    }

    #[test]
    fn flag_and_opt_parsing() {
        let args: Vec<String> = ["--full", "--max-n", "32"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(has_flag(&args, "--full"));
        assert!(!has_flag(&args, "--quick"));
        assert_eq!(opt_value::<usize>(&args, "--max-n"), Some(32));
        assert_eq!(opt_value::<usize>(&args, "--missing"), None);
    }

    #[test]
    fn paper_table_is_monotone_in_n() {
        for w in PAPER_TABLE1.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }
}
