//! Stochastic branching bisimulation minimization on interleaved component
//! groups — the compositional route's workhorse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_core::UniformImc;
use unicon_ctmc::PhaseType;
use unicon_imc::{bisim, View};
use unicon_lts::LtsBuilder;

fn component() -> UniformImc {
    let mut b = LtsBuilder::new(4, 0);
    b.add("fail", 0, 1);
    b.add("g", 1, 2);
    b.add("repair", 2, 3);
    b.add("r", 3, 0);
    let lts = UniformImc::from_lts(&b.build());
    let tf = UniformImc::from_elapse(
        &PhaseType::exponential(0.01).uniformize_at_max(),
        "fail",
        "r",
    );
    let tr = UniformImc::from_elapse(
        &PhaseType::exponential(1.0).uniformize_at_max(),
        "repair",
        "g",
    );
    tf.parallel(&tr, &[])
        .parallel(&lts, &["fail", "g", "repair", "r"])
        .hide(&["fail", "repair"])
}

fn bench_bisim(c: &mut Criterion) {
    let unit = component();
    let mut g = c.benchmark_group("branching_bisim");
    g.sample_size(10);
    for copies in [2usize, 3] {
        let mut acc = unit.clone();
        for _ in 1..copies {
            acc = acc.parallel(&unit, &[]);
        }
        let imc = acc.imc().clone();
        g.bench_function(
            format!("group{copies}_{}states", imc.num_states()),
            |b| b.iter(|| bisim::minimize(black_box(&imc), View::Open)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_bisim);
criterion_main!(benches);
