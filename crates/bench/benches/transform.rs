//! The uIMC → uCTMDP transformation on FTWC models of growing size
//! (the paper's "Transf. time" column).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_ftwc::{generator, FtwcParams};
use unicon_transform::transform;

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform_ftwc");
    g.sample_size(10);
    for n in [2usize, 8, 16] {
        let model = generator::build_uimc(&FtwcParams::new(n));
        let imc = model.uniform.imc().clone();
        g.bench_function(format!("n{n}_{}states", imc.num_states()), |b| {
            b.iter(|| transform(black_box(&imc)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
