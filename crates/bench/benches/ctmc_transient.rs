//! CTMC transient/reachability analysis — the baseline the paper compares
//! its CTMDP runtimes against ("time and space requirements are of similar
//! order for models of similar size").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_ctmc::transient::{self, TransientOptions};
use unicon_ftwc::{generator, FtwcParams};

fn bench_ctmc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctmc_reachability_ftwc");
    g.sample_size(10);
    for n in [1usize, 4] {
        let mut params = FtwcParams::new(n);
        params.gamma = 100.0;
        let (ctmc, goal, _) = generator::build_ctmc(&params);
        let opts = TransientOptions::default().with_epsilon(1e-6);
        g.bench_function(format!("n{n}_t100h"), |b| {
            b.iter(|| transient::reachability(&ctmc, &goal, black_box(100.0), &opts))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ctmc);
criterion_main!(benches);
