//! Algorithm 1 (uniform-CTMDP timed reachability) on the FTWC — the inner
//! loop whose runtimes the paper's Table 1 reports.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_core::PreparedModel;
use unicon_ctmdp::reachability::{timed_reachability, ReachOptions};
use unicon_ftwc::{generator, FtwcParams};

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_ftwc");
    g.sample_size(10);
    for n in [1usize, 4, 8] {
        let model = generator::build_uimc(&FtwcParams::new(n));
        let prepared = PreparedModel::new(&model.uniform, &model.premium_down).unwrap();
        g.bench_function(format!("n{n}_t100h"), |b| {
            b.iter(|| {
                timed_reachability(
                    &prepared.ctmdp,
                    &prepared.goal,
                    black_box(100.0),
                    &ReachOptions::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithm1);
criterion_main!(benches);
