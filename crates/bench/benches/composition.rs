//! Parallel composition and the elapse construction — the model-building
//! side of the trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_ctmc::PhaseType;
use unicon_ftwc::{generator, FtwcParams};
use unicon_imc::elapse;

fn bench_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_building");
    g.sample_size(10);

    g.bench_function("elapse_erlang32", |b| {
        let ph = PhaseType::erlang(32, 2.0).uniformize_at_max();
        b.iter(|| elapse::elapse(black_box(&ph), "f", "r"))
    });

    for n in [4usize, 16, 32] {
        g.bench_function(format!("ftwc_generator_n{n}"), |b| {
            let params = FtwcParams::new(n);
            b.iter(|| generator::build_uimc(black_box(&params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
