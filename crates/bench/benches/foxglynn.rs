//! Fox–Glynn weight computation across the λ range relevant to the paper
//! (λ = E·t from ~2 to ~75 000).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unicon_numeric::FoxGlynn;

fn bench_foxglynn(c: &mut Criterion) {
    let mut g = c.benchmark_group("foxglynn");
    g.sample_size(20);
    for lambda in [2.0, 200.0, 5_000.0, 75_000.0] {
        g.bench_function(format!("new_lambda_{lambda}"), |b| {
            b.iter(|| {
                let fg = FoxGlynn::new(black_box(lambda));
                black_box(fg.right_truncation(1e-6))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_foxglynn);
criterion_main!(benches);
