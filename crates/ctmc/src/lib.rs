//! Continuous-time Markov chains (CTMCs) for the `unicon` workspace.
//!
//! CTMCs appear in three roles in the paper:
//!
//! 1. as the purely stochastic special case of IMCs,
//! 2. as the structure underlying **phase-type distributions**, which the
//!    *elapse* operator turns into uniform time-constraint IMCs,
//! 3. as the *less faithful* modelling style the fault-tolerant workstation
//!    cluster had previously been analyzed with — the comparison baseline of
//!    Figure 4.
//!
//! Provided here:
//!
//! * the [`Ctmc`] model (sparse rate matrix, self-loops allowed),
//! * Jensen's **uniformization** ([`Ctmc::uniformize`]) — the key enabling
//!   twist behind uniformity by construction,
//! * **transient analysis** and **timed reachability** via uniformization
//!   with Fox–Glynn Poisson weights ([`transient`]),
//! * exact **lumping** (ordinary lumpability, [`lumping`]),
//! * [`PhaseType`] distributions with the standard constructors.
//!
//! # Examples
//!
//! ```
//! use unicon_ctmc::{Ctmc, transient::TransientOptions};
//!
//! // A two-state failure/repair chain.
//! let ctmc = Ctmc::from_rates(2, 0, [(0, 1, 0.01), (1, 0, 1.0)]);
//! let pi = unicon_ctmc::transient::distribution(
//!     &ctmc, 10.0, &TransientOptions::default());
//! assert!((pi[0] + pi[1] - 1.0).abs() < 1e-9);
//! assert!(pi[1] < 0.05); // mostly operational
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lumping;
mod model;
pub mod phase_type;
pub mod steady;
pub mod transient;

pub use model::{Ctmc, CtmcBuilder};
pub use phase_type::PhaseType;
