//! Phase-type distributions as absorbing CTMCs.
//!
//! A phase-type distribution is the distribution of the time until
//! absorption in a finite absorbing CTMC (Neuts). Any distribution on
//! `[0, ∞)` can be approximated arbitrarily closely by one. The paper's
//! *elapse* operator consumes a **uniformized** phase-type CTMC; the
//! absorbing state then re-enters itself via the uniformization self-loop,
//! which is exactly what keeps the resulting time-constraint IMC uniform.

use crate::transient::{self, TransientOptions};
use crate::Ctmc;

/// A phase-type distribution: an absorbing CTMC with a distinguished
/// initial phase `i` and a single absorbing state `a`.
///
/// # Examples
///
/// ```
/// use unicon_ctmc::PhaseType;
///
/// let erl = PhaseType::erlang(3, 2.0);
/// assert!((erl.mean() - 1.5).abs() < 1e-9);
/// let exp = PhaseType::exponential(0.5);
/// assert!((exp.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseType {
    ctmc: Ctmc,
    absorbing: u32,
}

impl PhaseType {
    /// Wraps an absorbing CTMC as a phase-type distribution.
    ///
    /// # Panics
    ///
    /// Panics if `absorbing` is out of bounds, is not actually absorbing, or
    /// is not reachable from the initial state, or if some state cannot
    /// reach the absorbing state (the distribution would be defective).
    pub fn new(ctmc: Ctmc, absorbing: u32) -> Self {
        let n = ctmc.num_states();
        assert!((absorbing as usize) < n, "absorbing state out of bounds");
        assert!(
            ctmc.is_absorbing(absorbing as usize),
            "state {absorbing} has outgoing rates"
        );
        // Every state must reach the absorbing state (non-defective).
        let reaches = backward_reach(&ctmc, absorbing);
        assert!(
            reaches.iter().all(|&r| r),
            "phase-type chain has states that never get absorbed"
        );
        Self { ctmc, absorbing }
    }

    /// The exponential distribution with the given rate (one phase).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self::new(Ctmc::from_rates(2, 0, [(0, 1, rate)]), 1)
    }

    /// The Erlang distribution: `phases` sequential exponentials of equal
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `phases == 0` or `rate <= 0`.
    pub fn erlang(phases: u32, rate: f64) -> Self {
        assert!(phases > 0, "Erlang needs at least one phase");
        assert!(rate > 0.0, "rate must be positive");
        let n = phases as usize + 1;
        let rates = (0..phases as usize).map(|k| (k, k + 1, rate));
        Self::new(Ctmc::from_rates(n, 0, rates), phases)
    }

    /// A hypoexponential distribution: sequential exponential phases with
    /// individual rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a nonpositive rate.
    pub fn hypoexponential(rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "need at least one phase");
        let n = rates.len() + 1;
        let triplets = rates
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                assert!(r > 0.0, "rate must be positive");
                (k, k + 1, r)
            })
            .collect::<Vec<_>>();
        Self::new(Ctmc::from_rates(n, 0, triplets), rates.len() as u32)
    }

    /// A Coxian distribution: after phase `k` (rate `rates[k]`), continue to
    /// phase `k+1` with probability `continue_prob[k]`, otherwise absorb.
    ///
    /// # Panics
    ///
    /// Panics on empty input, nonpositive rates, mismatched lengths
    /// (`continue_prob.len()` must be `rates.len() - 1`), or probabilities
    /// outside `[0, 1)`. The last phase always absorbs.
    pub fn coxian(rates: &[f64], continue_prob: &[f64]) -> Self {
        assert!(!rates.is_empty(), "need at least one phase");
        assert_eq!(
            continue_prob.len(),
            rates.len() - 1,
            "need one continuation probability per non-final phase"
        );
        let n = rates.len() + 1;
        let absorbing = rates.len();
        let mut triplets = Vec::new();
        for (k, &r) in rates.iter().enumerate() {
            assert!(r > 0.0, "rate must be positive");
            if k < rates.len() - 1 {
                let p = continue_prob[k];
                assert!(
                    (0.0..1.0).contains(&p),
                    "continuation probability {p} not in [0,1)"
                );
                if p > 0.0 {
                    triplets.push((k, k + 1, r * p));
                }
                triplets.push((k, absorbing, r * (1.0 - p)));
            } else {
                triplets.push((k, absorbing, r));
            }
        }
        Self::new(Ctmc::from_rates(n, 0, triplets), absorbing as u32)
    }

    /// The underlying absorbing CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The initial phase.
    pub fn initial(&self) -> u32 {
        self.ctmc.initial()
    }

    /// The absorbing state.
    pub fn absorbing(&self) -> u32 {
        self.absorbing
    }

    /// Number of phases (states excluding the absorbing one).
    pub fn num_phases(&self) -> usize {
        self.ctmc.num_states() - 1
    }

    /// `P[T <= t]`, computed by transient analysis of the absorbing chain.
    pub fn cdf(&self, t: f64) -> f64 {
        let opts = TransientOptions::default().with_epsilon(1e-12);
        let pi = transient::distribution(&self.ctmc, t, &opts);
        pi[self.absorbing as usize].clamp(0.0, 1.0)
    }

    /// Expected time to absorption.
    ///
    /// Computed from the mean-holding-time equations
    /// `m(s) = 1/E_s + Σ P(s,s')·m(s')` solved by Gauss–Seidel iteration
    /// (the chains here are small and absorbing, so convergence is fast).
    pub fn mean(&self) -> f64 {
        let n = self.ctmc.num_states();
        let p = self.ctmc.embedded_dtmc();
        let mut m = vec![0.0; n];
        for _ in 0..200_000 {
            let mut delta = 0.0f64;
            for s in 0..n {
                if s == self.absorbing as usize {
                    continue;
                }
                let mut v = 1.0 / self.ctmc.exit_rate(s);
                for (t, pr) in p.row(s) {
                    if t != s {
                        v += pr * m[t];
                    }
                }
                // solve for self-loop mass: m = v + P(s,s) m
                let self_p = p.get(s, s);
                if self_p < 1.0 {
                    v /= 1.0 - self_p;
                }
                delta = delta.max((v - m[s]).abs());
                m[s] = v;
            }
            if delta < 1e-14 {
                break;
            }
        }
        m[self.ctmc.initial() as usize]
    }

    /// Uniformizes the underlying chain at `rate`, preserving the
    /// distribution. The absorbing state becomes a self-loop state, as
    /// required by the elapse operator.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is below the maximal exit rate.
    pub fn uniformize(&self, rate: f64) -> UniformPhaseType {
        UniformPhaseType {
            ctmc: self.ctmc.uniformize(rate),
            absorbing: self.absorbing,
            rate,
        }
    }

    /// Uniformizes at the maximal exit rate.
    pub fn uniformize_at_max(&self) -> UniformPhaseType {
        self.uniformize(self.ctmc.max_exit_rate())
    }
}

/// A uniformized phase-type distribution: every state (including the former
/// absorbing state) has exit rate exactly `rate`.
///
/// This is the input shape required by the elapse operator of
/// `unicon-imc`.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformPhaseType {
    ctmc: Ctmc,
    absorbing: u32,
    rate: f64,
}

impl UniformPhaseType {
    /// The uniformized chain (all exit rates equal [`Self::rate`]).
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The distinguished completion state (formerly absorbing).
    pub fn absorbing(&self) -> u32 {
        self.absorbing
    }

    /// The initial phase.
    pub fn initial(&self) -> u32 {
        self.ctmc.initial()
    }

    /// The uniform rate `E`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

fn backward_reach(ctmc: &Ctmc, target: u32) -> Vec<bool> {
    let n = ctmc.num_states();
    // predecessors via transpose
    let tr = ctmc.rates().transpose();
    let mut seen = vec![false; n];
    seen[target as usize] = true;
    let mut stack = vec![target as usize];
    while let Some(s) = stack.pop() {
        for (p, _) in tr.row(s) {
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::assert_close;
    use unicon_numeric::special::{erlang_cdf, exponential_cdf};

    #[test]
    fn exponential_matches_closed_form() {
        let ph = PhaseType::exponential(1.3);
        for t in [0.1, 1.0, 3.0] {
            assert_close!(ph.cdf(t), exponential_cdf(1.3, t), 1e-10);
        }
        assert_close!(ph.mean(), 1.0 / 1.3, 1e-9);
    }

    #[test]
    fn erlang_matches_closed_form() {
        let ph = PhaseType::erlang(4, 2.0);
        for t in [0.5, 2.0, 5.0] {
            assert_close!(ph.cdf(t), erlang_cdf(4, 2.0, t), 1e-10);
        }
        assert_close!(ph.mean(), 2.0, 1e-9);
        assert_eq!(ph.num_phases(), 4);
    }

    #[test]
    fn hypoexponential_mean_is_sum_of_inverse_rates() {
        let ph = PhaseType::hypoexponential(&[1.0, 2.0, 4.0]);
        assert_close!(ph.mean(), 1.0 + 0.5 + 0.25, 1e-9);
    }

    #[test]
    fn coxian_with_full_continuation_is_hypoexponential() {
        let cox = PhaseType::coxian(&[1.0, 2.0], &[0.999999999999]);
        let hypo = PhaseType::hypoexponential(&[1.0, 2.0]);
        for t in [0.5, 2.0] {
            assert_close!(cox.cdf(t), hypo.cdf(t), 1e-6);
        }
    }

    #[test]
    fn coxian_with_zero_continuation_is_exponential() {
        let cox = PhaseType::coxian(&[1.5, 9.0], &[0.0]);
        let exp = PhaseType::exponential(1.5);
        for t in [0.5, 2.0] {
            assert_close!(cox.cdf(t), exp.cdf(t), 1e-9);
        }
    }

    #[test]
    fn uniformize_preserves_cdf() {
        let ph = PhaseType::hypoexponential(&[1.0, 3.0]);
        let u = ph.uniformize(5.0);
        assert!(u.ctmc().is_uniform());
        assert_close!(u.ctmc().uniform_rate().unwrap(), 5.0, 1e-12);
        // transient mass on the completion state is the cdf
        let opts = TransientOptions::default().with_epsilon(1e-12);
        for t in [0.3, 1.0, 4.0] {
            let pi = transient::distribution(u.ctmc(), t, &opts);
            assert_close!(pi[u.absorbing() as usize], ph.cdf(t), 1e-9);
        }
    }

    #[test]
    fn uniformize_at_max_picks_max_exit_rate() {
        let ph = PhaseType::hypoexponential(&[1.0, 3.0]);
        let u = ph.uniformize_at_max();
        assert_close!(u.rate(), 3.0, 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let ph = PhaseType::coxian(&[2.0, 1.0, 0.5], &[0.7, 0.4]);
        let mut prev = 0.0;
        for i in 0..20 {
            let c = ph.cdf(i as f64 * 0.3);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(prev <= 1.0);
    }

    #[test]
    #[should_panic(expected = "has outgoing rates")]
    fn new_rejects_non_absorbing() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (1, 0, 1.0)]);
        PhaseType::new(c, 1);
    }

    #[test]
    #[should_panic(expected = "never get absorbed")]
    fn new_rejects_defective_chain() {
        // state 2 cannot reach absorbing state 1
        let c = Ctmc::from_rates(3, 0, [(0, 1, 1.0)]);
        PhaseType::new(c, 1);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn erlang_rejects_zero_phases() {
        PhaseType::erlang(0, 1.0);
    }
}
