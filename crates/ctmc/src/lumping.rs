//! Exact lumping (ordinary lumpability) for CTMCs.
//!
//! A partition is *ordinarily lumpable* when all states of a block have the
//! same cumulative rate into every block; the quotient CTMC then has exactly
//! the same transient (and steady-state) behaviour on block level. This is
//! ingredient (2) of the minimization equivalence used in Section 3 of the
//! paper, and the stochastic half of stochastic branching bisimulation.

use std::collections::HashMap;

use unicon_numeric::NeumaierSum;
use unicon_sparse::CooBuilder;

use crate::Ctmc;

/// A partition of CTMC states into dense blocks `0..num_blocks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block[s]` is the block of state `s`.
    pub block: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
}

/// Computes the coarsest ordinarily lumpable partition refining the initial
/// labelling.
///
/// `labels[s]` is an arbitrary state label (e.g. "goal" / "non-goal"); the
/// resulting partition never merges states with different labels, so any
/// measure defined on the labels is preserved.
///
/// Rates are bucketed with relative tolerance `1e-9` when comparing
/// signatures.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn coarsest_lumping(ctmc: &Ctmc, labels: &[u32]) -> Partition {
    assert_eq!(
        labels.len(),
        ctmc.num_states(),
        "label vector length mismatch"
    );
    let n = ctmc.num_states();
    // Initial partition: by label.
    let mut block = dense_renumber(labels);
    loop {
        // Signature: sorted (block, cumulative rate) pairs.
        let mut keys: HashMap<(u32, Vec<(u32, u64)>), u32> = HashMap::new();
        let mut next_block = Vec::with_capacity(n);
        for s in 0..n {
            let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
            for (t, r) in ctmc.rates().row(s) {
                per_block.entry(block[t]).or_default().add(r);
            }
            let mut sig: Vec<(u32, u64)> = per_block
                .into_iter()
                .map(|(b, r)| (b, quantize(r.value())))
                .collect();
            sig.sort_unstable();
            let key = (block[s], sig);
            let fresh = keys.len() as u32;
            next_block.push(*keys.entry(key).or_insert(fresh));
        }
        let changed = keys.len() != count_blocks(&block);
        block = next_block;
        if !changed {
            return Partition {
                num_blocks: count_blocks(&block),
                block,
            };
        }
    }
}

/// Builds the quotient CTMC of `ctmc` under a lumpable `partition`.
///
/// The rate from block `B` to block `C` is read off any representative of
/// `B` (they agree by lumpability).
///
/// # Panics
///
/// Panics if the partition length mismatches the model.
pub fn quotient(ctmc: &Ctmc, partition: &Partition) -> Ctmc {
    assert_eq!(
        partition.block.len(),
        ctmc.num_states(),
        "partition does not match the model"
    );
    let nb = partition.num_blocks;
    let mut rep = vec![usize::MAX; nb];
    for s in 0..ctmc.num_states() {
        let b = partition.block[s] as usize;
        if rep[b] == usize::MAX {
            rep[b] = s;
        }
    }
    let mut b = CooBuilder::new(nb, nb);
    for (block_id, &s) in rep.iter().enumerate() {
        let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
        for (t, r) in ctmc.rates().row(s) {
            per_block.entry(partition.block[t]).or_default().add(r);
        }
        for (c, r) in per_block {
            let v = r.value();
            if v > 0.0 {
                b.push(block_id, c as usize, v);
            }
        }
    }
    Ctmc::from_matrix(b.build(), partition.block[ctmc.initial() as usize])
}

/// Lumps a CTMC to its coarsest quotient respecting `labels`.
///
/// # Examples
///
/// ```
/// use unicon_ctmc::{Ctmc, lumping};
///
/// // Two symmetric paths to a goal state collapse into one.
/// let c = Ctmc::from_rates(4, 0, [
///     (0, 1, 1.0), (0, 2, 1.0), (1, 3, 2.0), (2, 3, 2.0),
/// ]);
/// let labels = [0, 0, 0, 1]; // state 3 is the goal
/// let small = lumping::lump(&c, &labels);
/// assert_eq!(small.num_states(), 3);
/// ```
pub fn lump(ctmc: &Ctmc, labels: &[u32]) -> Ctmc {
    quotient(ctmc, &coarsest_lumping(ctmc, labels))
}

fn dense_renumber(labels: &[u32]) -> Vec<u32> {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let fresh = remap.len() as u32;
            *remap.entry(l).or_insert(fresh)
        })
        .collect()
}

fn count_blocks(block: &[u32]) -> usize {
    let mut seen: Vec<bool> = Vec::new();
    let mut count = 0;
    for &b in block {
        let b = b as usize;
        if b >= seen.len() {
            seen.resize(b + 1, false);
        }
        if !seen[b] {
            seen[b] = true;
            count += 1;
        }
    }
    count
}

/// Quantizes a rate for signature hashing with ~1e-9 relative tolerance.
///
/// Two rates that differ by less than about one part in 10⁹ map to the same
/// key; rates further apart map to different keys. Shared by the lumping
/// here and the stochastic bisimulations of `unicon-imc`.
pub fn quantize(r: f64) -> u64 {
    // Map to an integer grid: floor(r * 2^30 / scale) with a power-of-two
    // scale chosen from the exponent, keeping ~9 significant decimal digits.
    if r == 0.0 {
        return 0;
    }
    let (m, e) = frexp(r);
    // m in [0.5, 1): keep 30 bits of mantissa plus the exponent.
    let mant = (m * (1u64 << 30) as f64).round() as u64;
    ((e + 1024) as u64) << 32 | mant
}

fn frexp(x: f64) -> (f64, i32) {
    if x == 0.0 || !x.is_finite() {
        return (x, 0);
    }
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 {
        // subnormal: scale up
        let scaled = x * (1u64 << 54) as f64;
        let (m, e) = frexp(scaled);
        (m, e - 54)
    } else {
        let e = exp - 1022;
        let mantissa_bits = (bits & !(0x7ffu64 << 52)) | (1022u64 << 52);
        (f64::from_bits(mantissa_bits), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{self, TransientOptions};
    use unicon_numeric::assert_close;

    #[test]
    fn symmetric_branches_lump() {
        let c = Ctmc::from_rates(4, 0, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 2.0), (2, 3, 2.0)]);
        let p = coarsest_lumping(&c, &[0, 0, 0, 1]);
        assert_eq!(p.num_blocks, 3);
        assert_eq!(p.block[1], p.block[2]);
        let q = quotient(&c, &p);
        // cumulative rate from block{0} into block{1,2} is 2.0
        let b0 = p.block[0] as usize;
        let b12 = p.block[1] as usize;
        assert_close!(q.rate(b0, b12), 2.0, 1e-12);
    }

    #[test]
    fn labels_prevent_merging() {
        let c = Ctmc::from_rates(2, 0, []);
        // identical (absorbing) states, but different labels
        let p = coarsest_lumping(&c, &[0, 1]);
        assert_eq!(p.num_blocks, 2);
        let p2 = coarsest_lumping(&c, &[5, 5]);
        assert_eq!(p2.num_blocks, 1);
    }

    #[test]
    fn asymmetric_rates_do_not_lump() {
        let c = Ctmc::from_rates(4, 0, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 2.0), (2, 3, 2.5)]);
        let p = coarsest_lumping(&c, &[0, 0, 0, 1]);
        assert_ne!(p.block[1], p.block[2]);
    }

    #[test]
    fn lumping_preserves_transient_probabilities() {
        // Erlang branches: two interchangeable intermediate states.
        let c = Ctmc::from_rates(
            5,
            0,
            [
                (0, 1, 0.5),
                (0, 2, 0.5),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (3, 4, 2.0),
            ],
        );
        let labels = [0, 1, 1, 2, 3];
        let part = coarsest_lumping(&c, &labels);
        let q = quotient(&c, &part);
        assert!(q.num_states() < c.num_states());
        let opts = TransientOptions::default().with_epsilon(1e-12);
        for t in [0.5, 2.0] {
            let pi = transient::distribution(&c, t, &opts);
            let qi = transient::distribution(&q, t, &opts);
            // goal state (label 3) probability agrees
            let goal_block = part.block[4] as usize;
            assert_close!(pi[4], qi[goal_block], 1e-9);
        }
    }

    #[test]
    fn lump_convenience_matches_quotient() {
        let c = Ctmc::from_rates(3, 0, [(0, 1, 1.0), (0, 2, 1.0)]);
        let l = lump(&c, &[0, 1, 1]);
        assert_eq!(l.num_states(), 2);
        assert_close!(l.rate(0, 1), 2.0, 1e-12);
    }

    #[test]
    fn uniform_chain_stays_uniform_after_lumping() {
        let c = Ctmc::from_rates(
            4,
            0,
            [
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 0, 2.0),
                (2, 0, 2.0),
                (3, 3, 2.0),
            ],
        );
        assert!(c.is_uniform());
        let l = lump(&c, &[0, 1, 1, 2]);
        assert!(l.is_uniform());
    }

    #[test]
    fn quantize_distinguishes_far_rates_not_near_ones() {
        assert_eq!(quantize(1.0), quantize(1.0 + 1e-12));
        assert_ne!(quantize(1.0), quantize(1.001));
        assert_ne!(quantize(0.5), quantize(2.0));
        assert_eq!(quantize(0.0), 0);
    }

    #[test]
    fn frexp_reconstructs() {
        for x in [1.0, 0.3, 123.456, 1e-12, 7e20] {
            let (m, e) = frexp(x);
            assert!((0.5..1.0).contains(&m.abs()), "m = {m}");
            assert_close!(m * 2f64.powi(e), x, x * 1e-15);
        }
    }
}
