//! Transient analysis and timed reachability for CTMCs via uniformization.
//!
//! Both analyses run on the uniformized jump chain with Fox–Glynn Poisson
//! weights:
//!
//! * [`distribution`] computes the state distribution `π(t)` by forward
//!   vector–matrix iteration,
//! * [`reachability`] computes `Pr(s ⤳≤t B)` for *every* state by the
//!   backward value iteration that the uniform-CTMDP algorithm of the paper
//!   degenerates to when each state has exactly one transition — this is the
//!   CTMC oracle the CTMDP implementation is cross-validated against.

use unicon_numeric::FoxGlynn;
use unicon_sparse::CsrMatrix;

use crate::Ctmc;

/// Options controlling the uniformization analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Truncation precision ε (the paper uses 1e-6).
    pub epsilon: f64,
    /// Optional uniformization rate override; must dominate every exit rate.
    /// `None` selects the maximal exit rate.
    pub uniformization_rate: Option<f64>,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-9,
            uniformization_rate: None,
        }
    }
}

impl TransientOptions {
    /// Sets the truncation precision.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        self.epsilon = epsilon;
        self
    }

    /// Forces a particular uniformization rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.uniformization_rate = Some(rate);
        self
    }

    fn rate_for(&self, ctmc: &Ctmc) -> f64 {
        let max = ctmc.max_exit_rate();
        let rate = self.uniformization_rate.unwrap_or(max);
        // A zero rate only happens for chains with no transitions at all;
        // use 1.0 so the Poisson machinery stays well-defined.
        if rate <= 0.0 {
            1.0
        } else {
            rate
        }
    }
}

/// Result of a reachability analysis: one probability per state, plus the
/// iteration count (the Fox–Glynn right truncation point `k(ε, E, t)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityResult {
    /// `values[s] = Pr(s ⤳≤t B)`.
    pub values: Vec<f64>,
    /// Number of value-iteration steps performed.
    pub iterations: usize,
    /// The uniformization rate used.
    pub rate: f64,
}

impl ReachabilityResult {
    /// The probability from a particular state.
    pub fn from_state(&self, s: u32) -> f64 {
        self.values[s as usize]
    }
}

/// Transient state distribution `π(t)` starting from the initial state.
///
/// # Panics
///
/// Panics if `t` is negative or not finite.
pub fn distribution(ctmc: &Ctmc, t: f64, opts: &TransientOptions) -> Vec<f64> {
    let mut init = vec![0.0; ctmc.num_states()];
    init[ctmc.initial() as usize] = 1.0;
    distribution_from(ctmc, &init, t, opts)
}

/// Transient distribution from an arbitrary initial distribution.
///
/// # Panics
///
/// Panics if `t < 0`, `t` is not finite, or `init` has the wrong length.
pub fn distribution_from(ctmc: &Ctmc, init: &[f64], t: f64, opts: &TransientOptions) -> Vec<f64> {
    assert!(
        t.is_finite() && t >= 0.0,
        "time bound must be finite and >= 0"
    );
    assert_eq!(
        init.len(),
        ctmc.num_states(),
        "initial vector length mismatch"
    );
    if t == 0.0 {
        return init.to_vec();
    }
    let rate = opts.rate_for(ctmc);
    let p = ctmc.uniformized_jump_matrix(rate);
    let fg = FoxGlynn::new(rate * t);
    let k = fg.right_truncation(opts.epsilon);

    let mut pi = init.to_vec();
    let mut acc = vec![0.0; pi.len()];
    for n in 0..=k {
        let w = fg.psi(n);
        if w > 0.0 {
            for (a, &x) in acc.iter_mut().zip(&pi) {
                *a += w * x;
            }
        }
        if n < k {
            pi = p.matvec_transposed(&pi);
        }
    }
    acc
}

/// Timed reachability `Pr(s ⤳≤t B)` for every state, by backward value
/// iteration on the uniformized chain with goal states made absorbing.
///
/// This is Algorithm 1 of the paper specialized to a single transition per
/// state, and serves as the cross-validation oracle for the CTMDP engine.
///
/// # Panics
///
/// Panics if `goal.len()` does not match, or `t` is negative/not finite.
pub fn reachability(
    ctmc: &Ctmc,
    goal: &[bool],
    t: f64,
    opts: &TransientOptions,
) -> ReachabilityResult {
    assert_eq!(goal.len(), ctmc.num_states(), "goal vector length mismatch");
    assert!(
        t.is_finite() && t >= 0.0,
        "time bound must be finite and >= 0"
    );
    let n = ctmc.num_states();
    if t == 0.0 {
        return ReachabilityResult {
            values: goal.iter().map(|&g| f64::from(u8::from(g))).collect(),
            iterations: 0,
            rate: opts.rate_for(ctmc),
        };
    }
    let rate = opts.rate_for(ctmc);
    let p = ctmc.uniformized_jump_matrix(rate);
    let fg = FoxGlynn::new(rate * t);
    let k = fg.right_truncation(opts.epsilon);

    let mut q_next = vec![0.0; n]; // q_{i+1}
    let mut q = vec![0.0; n];
    for i in (1..=k).rev() {
        let psi = fg.psi(i);
        backward_step(&p, goal, psi, &q_next, &mut q);
        std::mem::swap(&mut q, &mut q_next);
    }
    // q_next now holds q_1.
    let values = (0..n)
        .map(|s| {
            if goal[s] {
                1.0
            } else {
                q_next[s].clamp(0.0, 1.0)
            }
        })
        .collect();
    ReachabilityResult {
        values,
        iterations: k,
        rate,
    }
}

/// One backward step: `q_i` from `q_{i+1}`.
fn backward_step(p: &CsrMatrix, goal: &[bool], psi: f64, q_next: &[f64], q: &mut [f64]) {
    for s in 0..p.rows() {
        if goal[s] {
            q[s] = psi + q_next[s];
        } else {
            let mut v = 0.0;
            let mut to_goal = 0.0;
            for (t, pr) in p.row(s) {
                if goal[t] {
                    to_goal += pr;
                }
                v += pr * q_next[t];
            }
            q[s] = psi * to_goal + v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::assert_close;
    use unicon_numeric::special::{erlang_cdf, exponential_cdf};

    fn opts() -> TransientOptions {
        TransientOptions::default().with_epsilon(1e-12)
    }

    #[test]
    fn distribution_at_time_zero() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0)]);
        let pi = distribution(&c, 0.0, &opts());
        assert_eq!(pi, vec![1.0, 0.0]);
    }

    #[test]
    fn two_state_birth_death_matches_closed_form() {
        // 0 -> 1 at rate a, 1 -> 0 at rate b: closed-form transient solution.
        let (a, b) = (2.0, 3.0);
        let c = Ctmc::from_rates(2, 0, [(0, 1, a), (1, 0, b)]);
        for t in [0.1, 0.5, 1.0, 4.0] {
            let pi = distribution(&c, t, &opts());
            let p1 = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert_close!(pi[1], p1, 1e-10);
            assert_close!(pi[0] + pi[1], 1.0, 1e-10);
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        let c = Ctmc::from_rates(
            4,
            0,
            [
                (0, 1, 1.0),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (3, 0, 1.5),
                (0, 2, 0.3),
            ],
        );
        for t in [0.0, 0.7, 3.0, 25.0] {
            let pi = distribution(&c, t, &opts());
            assert_close!(pi.iter().sum::<f64>(), 1.0, 1e-9);
        }
    }

    #[test]
    fn uniformization_rate_override_is_equivalent() {
        let c = Ctmc::from_rates(3, 0, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 0.1)]);
        let a = distribution(&c, 1.3, &opts());
        let b = distribution(&c, 1.3, &opts().with_rate(10.0));
        for (x, y) in a.iter().zip(&b) {
            assert_close!(*x, *y, 1e-9);
        }
    }

    #[test]
    fn reachability_exponential_closed_form() {
        // 0 -> 1 at rate λ, 1 absorbing; Pr(0 ⤳≤t {1}) = 1 - e^{-λt}.
        let lambda = 0.8;
        let c = Ctmc::from_rates(2, 0, [(0, 1, lambda)]);
        for t in [0.2, 1.0, 5.0] {
            let r = reachability(&c, &[false, true], t, &opts());
            assert_close!(r.from_state(0), exponential_cdf(lambda, t), 1e-10);
            assert_eq!(r.from_state(1), 1.0);
        }
    }

    #[test]
    fn reachability_erlang_chain() {
        // 0 -> 1 -> 2 each at rate λ; reaching state 2 is an Erlang-2 delay.
        let lambda = 1.7;
        let c = Ctmc::from_rates(3, 0, [(0, 1, lambda), (1, 2, lambda)]);
        for t in [0.3, 1.0, 2.5] {
            let r = reachability(&c, &[false, false, true], t, &opts());
            assert_close!(r.from_state(0), erlang_cdf(2, lambda, t), 1e-10);
            assert_close!(r.from_state(1), erlang_cdf(1, lambda, t), 1e-10);
        }
    }

    #[test]
    fn reachability_agrees_with_forward_transient_on_absorbing_goal() {
        // When goal states are absorbing, Pr(init ⤳≤t B) equals the transient
        // mass on B at time t.
        let c = Ctmc::from_rates(4, 0, [(0, 1, 1.0), (0, 2, 0.5), (1, 3, 2.0), (2, 3, 0.7)]);
        let goal = [false, false, false, true];
        for t in [0.5, 2.0] {
            let back = reachability(&c, &goal, t, &opts()).from_state(0);
            let forward = distribution(&c, t, &opts())[3];
            assert_close!(back, forward, 1e-9);
        }
    }

    #[test]
    fn reachability_monotone_in_time() {
        let c = Ctmc::from_rates(3, 0, [(0, 1, 0.4), (1, 0, 1.0), (1, 2, 0.2)]);
        let goal = [false, false, true];
        let mut prev = 0.0;
        for i in 1..10 {
            let t = i as f64;
            let v = reachability(&c, &goal, t, &opts()).from_state(0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn iteration_count_is_foxglynn_truncation() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 2.0), (1, 0, 2.0)]);
        let r = reachability(
            &c,
            &[false, true],
            100.0,
            &TransientOptions::default().with_epsilon(1e-6),
        );
        let fg = FoxGlynn::new(200.0);
        assert_eq!(r.iterations, fg.right_truncation(1e-6));
    }

    #[test]
    fn no_transition_chain_stays_put() {
        let c = Ctmc::from_rates(2, 1, []);
        let pi = distribution(&c, 5.0, &opts());
        assert_eq!(pi[0], 0.0);
        assert_close!(pi[1], 1.0, 1e-9); // short of 1 by the ε truncation
        let r = reachability(&c, &[true, false], 5.0, &opts());
        assert_eq!(r.from_state(1), 0.0);
        assert_eq!(r.from_state(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_negative_time() {
        let c = Ctmc::from_rates(1, 0, []);
        distribution(&c, -1.0, &opts());
    }
}
