//! Long-run (steady-state) analysis for CTMCs.
//!
//! Not needed for the paper's timed-reachability trajectory, but a natural
//! companion: the classic FTWC studies also report steady-state premium
//! availability. We solve `π Q = 0, Σπ = 1` by power iteration on the
//! uniformized jump chain `P = I + Q/Λ` — for an irreducible chain `π` is
//! also `P`'s stationary vector, and uniformization keeps `P` aperiodic
//! (every state has a self-loop when `Λ` exceeds the maximal exit rate).

use unicon_numeric::NeumaierSum;

use crate::Ctmc;

/// Options for [`stationary_distribution`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateOptions {
    /// Convergence threshold on the L∞ distance of successive iterates.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-12,
            max_iterations: 2_000_000,
        }
    }
}

/// Error: the power iteration did not converge (e.g. the chain is
/// reducible with several closed classes, where the limit depends on the
/// start vector but the iteration itself still converges — failures here
/// indicate an extreme stiffness or a too-small iteration cap).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceError {
    /// Residual after the last iteration.
    pub residual: f64,
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steady-state iteration did not converge (residual {:.3e})",
            self.residual
        )
    }
}

impl std::error::Error for ConvergenceError {}

/// Computes the stationary distribution reached from the initial state.
///
/// For an irreducible chain this is *the* steady-state distribution; for a
/// reducible chain it is the limit distribution of the embedded uniformized
/// chain started at the initial state.
///
/// # Errors
///
/// [`ConvergenceError`] if the iteration cap is hit first.
///
/// # Examples
///
/// ```
/// use unicon_ctmc::{steady, Ctmc};
///
/// // failure/repair: π = (μ, λ) / (λ + μ)
/// let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (1, 0, 4.0)]);
/// let pi = steady::stationary_distribution(&c, &Default::default()).unwrap();
/// assert!((pi[0] - 0.8).abs() < 1e-9);
/// assert!((pi[1] - 0.2).abs() < 1e-9);
/// ```
pub fn stationary_distribution(
    ctmc: &Ctmc,
    opts: &SteadyStateOptions,
) -> Result<Vec<f64>, ConvergenceError> {
    let n = ctmc.num_states();
    // Strictly dominate the maximal exit rate so P has self-loops
    // everywhere (aperiodicity).
    let lambda = 1.05 * ctmc.max_exit_rate().max(1e-9) + 0.01;
    let p = ctmc.uniformized_jump_matrix(lambda);
    let mut pi = vec![0.0; n];
    pi[ctmc.initial() as usize] = 1.0;
    let mut residual = f64::INFINITY;
    for _ in 0..opts.max_iterations {
        let next = p.matvec_transposed(&pi);
        residual = pi
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        pi = next;
        if residual < opts.tolerance {
            // renormalize against drift
            let mut total = NeumaierSum::new();
            total.extend(pi.iter().copied());
            let total = total.value();
            for x in &mut pi {
                *x /= total;
            }
            return Ok(pi);
        }
    }
    Err(ConvergenceError { residual })
}

/// Long-run fraction of time spent in the states marked by `set`.
///
/// # Errors
///
/// See [`stationary_distribution`].
///
/// # Panics
///
/// Panics if `set.len()` does not match the state count.
pub fn long_run_availability(
    ctmc: &Ctmc,
    set: &[bool],
    opts: &SteadyStateOptions,
) -> Result<f64, ConvergenceError> {
    assert_eq!(set.len(), ctmc.num_states(), "set length mismatch");
    let pi = stationary_distribution(ctmc, opts)?;
    let mut acc = NeumaierSum::new();
    for (p, &m) in pi.iter().zip(set) {
        if m {
            acc.add(*p);
        }
    }
    Ok(acc.value().clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::assert_close;

    #[test]
    fn two_state_closed_form() {
        let (lambda, mu) = (0.3, 1.7);
        let c = Ctmc::from_rates(2, 0, [(0, 1, lambda), (1, 0, mu)]);
        let pi = stationary_distribution(&c, &Default::default()).unwrap();
        assert_close!(pi[0], mu / (lambda + mu), 1e-9);
        assert_close!(pi[1], lambda / (lambda + mu), 1e-9);
    }

    #[test]
    fn birth_death_chain_detailed_balance() {
        // M/M/1/3 queue: arrival 1.0, service 2.0 → π_k ∝ (1/2)^k
        let c = Ctmc::from_rates(
            4,
            0,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (1, 0, 2.0),
                (2, 1, 2.0),
                (3, 2, 2.0),
            ],
        );
        let pi = stationary_distribution(&c, &Default::default()).unwrap();
        let z: f64 = (0..4).map(|k| 0.5f64.powi(k)).sum();
        for (k, &p) in pi.iter().enumerate() {
            assert_close!(p, 0.5f64.powi(k as i32) / z, 1e-8);
        }
    }

    #[test]
    fn absorbing_chain_concentrates() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0)]);
        let pi = stationary_distribution(&c, &Default::default()).unwrap();
        assert_close!(pi[1], 1.0, 1e-9);
    }

    #[test]
    fn distribution_is_stochastic_and_invariant() {
        let c = Ctmc::from_rates(3, 0, [(0, 1, 0.5), (1, 2, 1.0), (2, 0, 0.25), (2, 1, 0.5)]);
        let pi = stationary_distribution(&c, &Default::default()).unwrap();
        assert_close!(pi.iter().sum::<f64>(), 1.0, 1e-9);
        // invariance: flow balance per state
        for s in 0..3 {
            let outflow = pi[s] * c.exit_rate(s);
            let inflow: f64 = (0..3).map(|u| pi[u] * c.rate(u, s)).sum();
            assert_close!(outflow, inflow, 1e-8);
        }
    }

    #[test]
    fn availability_helper() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (1, 0, 3.0)]);
        let a = long_run_availability(&c, &[true, false], &Default::default()).unwrap();
        assert_close!(a, 0.75, 1e-9);
    }

    #[test]
    fn iteration_cap_reports_error() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (1, 0, 1.0)]);
        let opts = SteadyStateOptions {
            tolerance: 0.0, // unreachable
            max_iterations: 10,
        };
        let e = stationary_distribution(&c, &opts).unwrap_err();
        assert!(e.to_string().contains("did not converge"));
    }
}
