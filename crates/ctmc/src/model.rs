//! The [`Ctmc`] model and its builder.

use unicon_sparse::{CooBuilder, CsrMatrix};

/// A finite continuous-time Markov chain.
///
/// Stored as a sparse matrix of transition rates `R(s, s') > 0`; self-loops
/// are permitted (they arise from uniformization and are probabilistically
/// irrelevant for transient measures but structurally meaningful for the
/// uniform-IMC construction). The *exit rate* of a state is its row sum.
///
/// # Examples
///
/// ```
/// use unicon_ctmc::Ctmc;
///
/// let c = Ctmc::from_rates(2, 0, [(0, 1, 3.0), (1, 0, 1.0)]);
/// assert_eq!(c.exit_rate(0), 3.0);
/// assert_eq!(c.rate(0, 1), 3.0);
/// assert!(!c.is_uniform());
/// assert!(c.uniformize(3.0).is_uniform());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    rates: CsrMatrix,
    initial: u32,
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Builds a CTMC from `(source, target, rate)` triplets.
    ///
    /// Parallel transitions between the same pair of states are merged by
    /// adding their rates (rates form a relation in the IMC setting, but a
    /// CTMC's behaviour only depends on the cumulative rate).
    ///
    /// # Panics
    ///
    /// Panics if a rate is not strictly positive, or a state is out of
    /// bounds.
    pub fn from_rates<I>(num_states: usize, initial: u32, rates: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut b = CooBuilder::new(num_states, num_states);
        for (s, t, r) in rates {
            assert!(r > 0.0, "rates must be strictly positive, got {r}");
            b.push(s, t, r);
        }
        Self::from_matrix(b.build(), initial)
    }

    /// Wraps an existing rate matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, contains negative entries, or the
    /// initial state is out of bounds.
    pub fn from_matrix(rates: CsrMatrix, initial: u32) -> Self {
        assert_eq!(rates.rows(), rates.cols(), "rate matrix must be square");
        assert!(
            (initial as usize) < rates.rows(),
            "initial state out of bounds"
        );
        let exit_rates: Vec<f64> = (0..rates.rows()).map(|s| rates.row_sum(s)).collect();
        for (r, c, v) in rates.triplets() {
            assert!(v > 0.0, "rate R({r},{c}) = {v} must be positive");
        }
        Self {
            rates,
            initial,
            exit_rates,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rates.rows()
    }

    /// Number of stored transitions.
    pub fn num_transitions(&self) -> usize {
        self.rates.nnz()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The sparse rate matrix.
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// Cumulative rate from `s` to `t` (0 if absent).
    pub fn rate(&self, s: usize, t: usize) -> f64 {
        self.rates.get(s, t)
    }

    /// Exit rate `E_s` of state `s`.
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.exit_rates[s]
    }

    /// A structural fingerprint: FNV-1a over the state count, the initial
    /// state and the sorted `(source, rate, target)` triplets (rates by bit
    /// pattern). Two CTMCs with equal fingerprints are structurally
    /// identical for certification purposes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = unicon_numeric::fnv::Fnv64::new();
        h.write(b"ctmc-v1");
        h.write_u64(self.num_states() as u64);
        h.write_u32(self.initial);
        h.write_u64(self.rates.nnz() as u64);
        for (s, t, r) in self.rates.triplets() {
            h.write_u32(s as u32);
            h.write_f64(r);
            h.write_u32(t as u32);
        }
        h.finish()
    }

    /// The maximal exit rate over all states.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Whether `s` is absorbing (no outgoing rate).
    pub fn is_absorbing(&self, s: usize) -> bool {
        self.exit_rates[s] == 0.0
    }

    /// Whether all exit rates are equal (to each other; the common value may
    /// be 0 only in the degenerate one-state case).
    pub fn is_uniform(&self) -> bool {
        self.uniform_rate().is_some()
    }

    /// The common exit rate if the CTMC is uniform (rates compared with the
    /// workspace-wide policy [`unicon_numeric::rates_approx_eq`]).
    pub fn uniform_rate(&self) -> Option<f64> {
        let first = self.exit_rates.first().copied()?;
        self.exit_rates
            .iter()
            .all(|&e| unicon_numeric::rates_approx_eq(e, first))
            .then_some(first)
    }

    /// Jensen's uniformization: every state is padded with a self-loop so
    /// that all exit rates equal `rate`.
    ///
    /// The transient behaviour (state probabilities at every time point) is
    /// unchanged; the resulting chain is uniform.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is smaller than the maximal exit rate (within
    /// rounding), or not strictly positive.
    pub fn uniformize(&self, rate: f64) -> Ctmc {
        assert!(rate > 0.0, "uniformization rate must be positive");
        let max = self.max_exit_rate();
        assert!(
            rate >= max - 1e-12 * max.max(1.0),
            "uniformization rate {rate} below maximal exit rate {max}"
        );
        let n = self.num_states();
        let mut b = CooBuilder::new(n, n);
        for (s, t, v) in self.rates.triplets() {
            b.push(s, t, v);
        }
        for s in 0..n {
            let pad = rate - self.exit_rates[s];
            if pad > 1e-12 * rate {
                b.push(s, s, pad);
            }
        }
        Ctmc::from_matrix(b.build(), self.initial)
    }

    /// The uniformized jump-probability matrix `P = R / rate` with
    /// `P(s,s) += 1 − E_s / rate`: the DTMC stepped by the Poisson process
    /// of uniformization.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Ctmc::uniformize`].
    pub fn uniformized_jump_matrix(&self, rate: f64) -> CsrMatrix {
        assert!(rate > 0.0, "uniformization rate must be positive");
        let max = self.max_exit_rate();
        assert!(
            rate >= max - 1e-12 * max.max(1.0),
            "uniformization rate {rate} below maximal exit rate {max}"
        );
        let n = self.num_states();
        let mut b = CooBuilder::new(n, n);
        for (s, t, v) in self.rates.triplets() {
            b.push(s, t, v / rate);
        }
        for s in 0..n {
            let stay = 1.0 - self.exit_rates[s] / rate;
            if stay > 1e-15 {
                b.push(s, s, stay);
            }
        }
        b.build()
    }

    /// The embedded jump chain: `P(s,s') = R(s,s') / E_s` (absorbing states
    /// keep a self-loop with probability 1).
    pub fn embedded_dtmc(&self) -> CsrMatrix {
        let n = self.num_states();
        let mut b = CooBuilder::new(n, n);
        for s in 0..n {
            if self.is_absorbing(s) {
                b.push(s, s, 1.0);
            } else {
                for (t, v) in self.rates.row(s) {
                    b.push(s, t, v / self.exit_rates[s]);
                }
            }
        }
        b.build()
    }

    /// Returns a copy with a different initial state (useful when studying
    /// reachability from several starting points).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of bounds.
    pub fn with_initial(mut self, initial: u32) -> Self {
        assert!(
            (initial as usize) < self.num_states(),
            "initial state out of bounds"
        );
        self.initial = initial;
        self
    }
}

/// Incremental builder for [`Ctmc`].
///
/// # Examples
///
/// ```
/// use unicon_ctmc::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new(3, 0);
/// b.rate(0, 1, 1.0).rate(1, 2, 2.0).rate(2, 0, 3.0);
/// let c = b.build();
/// assert_eq!(c.num_transitions(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    num_states: usize,
    initial: u32,
    triplets: Vec<(usize, usize, f64)>,
}

impl CtmcBuilder {
    /// Starts a builder with the given state count and initial state.
    pub fn new(num_states: usize, initial: u32) -> Self {
        Self {
            num_states,
            initial,
            triplets: Vec::new(),
        }
    }

    /// Adds a transition rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn rate(&mut self, source: usize, target: usize, rate: f64) -> &mut Self {
        assert!(rate > 0.0, "rates must be strictly positive");
        self.triplets.push((source, target, rate));
        self
    }

    /// Finalizes the CTMC.
    pub fn build(self) -> Ctmc {
        Ctmc::from_rates(self.num_states, self.initial, self.triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::assert_close;

    fn two_state() -> Ctmc {
        Ctmc::from_rates(2, 0, [(0, 1, 2.0), (1, 0, 0.5)])
    }

    #[test]
    fn basic_queries() {
        let c = two_state();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.exit_rate(0), 2.0);
        assert_eq!(c.exit_rate(1), 0.5);
        assert_eq!(c.max_exit_rate(), 2.0);
        assert!(!c.is_absorbing(0));
        assert!(!c.is_uniform());
    }

    #[test]
    fn parallel_rates_merge() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(c.rate(0, 1), 3.5);
        assert_eq!(c.num_transitions(), 1);
    }

    #[test]
    fn uniformize_pads_self_loops() {
        let u = two_state().uniformize(4.0);
        assert!(u.is_uniform());
        assert_close!(u.uniform_rate().unwrap(), 4.0, 1e-12);
        assert_close!(u.rate(0, 0), 2.0, 1e-12);
        assert_close!(u.rate(1, 1), 3.5, 1e-12);
        // original rates untouched
        assert_close!(u.rate(0, 1), 2.0, 1e-12);
    }

    #[test]
    fn uniformize_at_exact_max_rate() {
        let u = two_state().uniformize(2.0);
        assert!(u.is_uniform());
        assert_eq!(u.rate(0, 0), 0.0);
        assert_close!(u.rate(1, 1), 1.5, 1e-12);
    }

    #[test]
    #[should_panic(expected = "below maximal exit rate")]
    fn uniformize_rejects_small_rate() {
        two_state().uniformize(1.0);
    }

    #[test]
    fn jump_matrix_rows_are_stochastic() {
        let p = two_state().uniformized_jump_matrix(5.0);
        for s in 0..2 {
            assert_close!(p.row_sum(s), 1.0, 1e-12);
        }
        assert_close!(p.get(0, 1), 0.4, 1e-12);
        assert_close!(p.get(0, 0), 0.6, 1e-12);
    }

    #[test]
    fn embedded_dtmc_is_stochastic() {
        let mut b = CtmcBuilder::new(3, 0);
        b.rate(0, 1, 1.0).rate(0, 2, 3.0);
        let c = b.build(); // states 1 and 2 absorbing
        let p = c.embedded_dtmc();
        for s in 0..3 {
            assert_close!(p.row_sum(s), 1.0, 1e-12);
        }
        assert_close!(p.get(0, 2), 0.75, 1e-12);
        assert_eq!(p.get(1, 1), 1.0);
    }

    #[test]
    fn absorbing_state_detected() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0)]);
        assert!(c.is_absorbing(1));
        assert!(!c.is_uniform()); // exit rates 1 and 0
    }

    #[test]
    fn degenerate_single_state_is_uniform() {
        let c = Ctmc::from_rates(1, 0, []);
        assert!(c.is_uniform());
        assert_eq!(c.uniform_rate(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn rejects_zero_rate() {
        Ctmc::from_rates(2, 0, [(0, 1, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_initial() {
        Ctmc::from_rates(1, 3, []);
    }
}
