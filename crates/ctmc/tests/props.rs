//! Property-based tests for CTMC analyses: uniformization invariance,
//! lumping correctness, phase-type identities.

use proptest::prelude::*;
use unicon_ctmc::transient::{self, TransientOptions};
use unicon_ctmc::{lumping, Ctmc, PhaseType};

/// Random CTMC on up to 8 states with rates in a benign range.
fn raw_ctmc() -> impl Strategy<Value = (usize, Vec<(u8, u8, f64)>)> {
    (2usize..=8).prop_flat_map(|n| {
        let nn = n as u8;
        (
            Just(n),
            prop::collection::vec((0..nn, 0..nn, 0.05f64..4.0), 1..20),
        )
    })
}

fn build(n: usize, triplets: &[(u8, u8, f64)]) -> Ctmc {
    Ctmc::from_rates(
        n,
        0,
        triplets
            .iter()
            .map(|&(s, t, r)| (s as usize, t as usize, r)),
    )
}

fn opts() -> TransientOptions {
    TransientOptions::default().with_epsilon(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Jensen: uniformization does not change transient probabilities.
    #[test]
    fn uniformization_is_transient_invariant(
        (n, ts) in raw_ctmc(),
        extra in 0.0f64..5.0,
        t in 0.1f64..10.0
    ) {
        let c = build(n, &ts);
        let u = c.uniformize(c.max_exit_rate() + extra);
        let a = transient::distribution(&c, t, &opts());
        let b = transient::distribution(&u, t, &opts());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    /// Transient distributions stay stochastic.
    #[test]
    fn transient_is_stochastic((n, ts) in raw_ctmc(), t in 0.0f64..20.0) {
        let c = build(n, &ts);
        let pi = transient::distribution(&c, t, &opts());
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8);
        prop_assert!(pi.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
    }

    /// Backward reachability agrees with forward transient mass when the
    /// goal is absorbing.
    #[test]
    fn backward_forward_consistency((n, ts) in raw_ctmc(), t in 0.1f64..10.0) {
        // make state n-1 the absorbing goal
        let filtered: Vec<(u8, u8, f64)> = ts
            .iter()
            .copied()
            .filter(|&(s, _, _)| (s as usize) != n - 1)
            .collect();
        prop_assume!(!filtered.is_empty());
        let goal: Vec<bool> = (0..n).map(|s| s == n - 1).collect();
        let cc = build(n, &filtered);
        let back = transient::reachability(&cc, &goal, t, &opts());
        let forward = transient::distribution(&cc, t, &opts());
        prop_assert!((back.from_state(0) - forward[n - 1]).abs() < 1e-8);
    }

    /// Reachability is monotone in the horizon.
    #[test]
    fn reachability_monotone((n, ts) in raw_ctmc(), t in 0.1f64..5.0) {
        let c = build(n, &ts);
        let goal: Vec<bool> = (0..n).map(|s| s % 2 == 1).collect();
        let p1 = transient::reachability(&c, &goal, t, &opts()).from_state(0);
        let p2 = transient::reachability(&c, &goal, 2.0 * t, &opts()).from_state(0);
        prop_assert!(p2 >= p1 - 1e-9);
    }

    /// Lumping preserves label-aggregated transient probabilities.
    #[test]
    fn lumping_preserves_transients(
        (n, ts) in raw_ctmc(),
        labels in prop::collection::vec(0u32..2, 8),
        t in 0.1f64..5.0
    ) {
        let c = build(n, &ts);
        let labels = &labels[..n];
        let part = lumping::coarsest_lumping(&c, labels);
        let q = lumping::quotient(&c, &part);
        let pi = transient::distribution(&c, t, &opts());
        let qi = transient::distribution(&q, t, &opts());
        // aggregate per block
        let mut agg = vec![0.0; part.num_blocks];
        for (s, &p) in pi.iter().enumerate() {
            agg[part.block[s] as usize] += p;
        }
        for (b, (&x, &y)) in agg.iter().zip(qi.iter()).enumerate() {
            prop_assert!((x - y).abs() < 1e-7, "block {b}: {x} vs {y}");
        }
    }

    /// Lumping never merges differently labeled states and is idempotent.
    #[test]
    fn lumping_respects_labels((n, ts) in raw_ctmc(), labels in prop::collection::vec(0u32..3, 8)) {
        let c = build(n, &ts);
        let labels = &labels[..n];
        let part = lumping::coarsest_lumping(&c, labels);
        for s in 0..n {
            for t2 in 0..n {
                if part.block[s] == part.block[t2] {
                    prop_assert_eq!(labels[s], labels[t2]);
                }
            }
        }
        // idempotence: lumping the quotient with block labels changes nothing
        let q = lumping::quotient(&c, &part);
        let block_labels: Vec<u32> = (0..part.num_blocks as u32).collect();
        let part2 = lumping::coarsest_lumping(&q, &block_labels);
        prop_assert_eq!(part2.num_blocks, part.num_blocks);
    }

    /// Phase-type cdfs are monotone, bounded, and the uniformized chain
    /// keeps the distribution.
    #[test]
    fn phase_type_cdf_properties(rates in prop::collection::vec(0.2f64..5.0, 1..5), t in 0.01f64..10.0) {
        let ph = PhaseType::hypoexponential(&rates);
        let c1 = ph.cdf(t);
        let c2 = ph.cdf(t * 1.5);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-10);
        let u = ph.uniformize_at_max();
        let pi = transient::distribution(u.ctmc(), t, &opts());
        prop_assert!((pi[u.absorbing() as usize] - c1).abs() < 1e-8);
    }

    /// Mean of a hypoexponential is the sum of phase means.
    #[test]
    fn hypoexponential_mean(rates in prop::collection::vec(0.2f64..5.0, 1..5)) {
        let ph = PhaseType::hypoexponential(&rates);
        let expect: f64 = rates.iter().map(|r| 1.0 / r).sum();
        prop_assert!((ph.mean() - expect).abs() < 1e-6 * expect);
    }

    /// The embedded DTMC and the uniformized jump matrix are stochastic.
    #[test]
    fn jump_matrices_are_stochastic((n, ts) in raw_ctmc()) {
        let c = build(n, &ts);
        let p = c.embedded_dtmc();
        let u = c.uniformized_jump_matrix(c.max_exit_rate() + 1.0);
        for s in 0..n {
            prop_assert!((p.row_sum(s) - 1.0).abs() < 1e-9);
            prop_assert!((u.row_sum(s) - 1.0).abs() < 1e-9);
        }
    }
}
