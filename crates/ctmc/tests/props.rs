//! Randomized tests for CTMC analyses: uniformization invariance, lumping
//! correctness, phase-type identities. Driven by the in-tree deterministic
//! [`XorShift64`] generator (fixed seeds, no external PRNG).

use unicon_ctmc::transient::{self, TransientOptions};
use unicon_ctmc::{lumping, Ctmc, PhaseType};
use unicon_numeric::rng::{Rng, XorShift64};

const CASES: u64 = 96;

fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.random_f64() * (hi - lo)
}

/// Random CTMC on up to 8 states with rates in a benign range.
fn raw_ctmc(rng: &mut XorShift64) -> (usize, Vec<(u8, u8, f64)>) {
    let n = 2 + rng.random_range(7);
    let len = 1 + rng.random_range(19);
    let ts = (0..len)
        .map(|_| {
            (
                rng.random_range(n) as u8,
                rng.random_range(n) as u8,
                uniform(rng, 0.05, 4.0),
            )
        })
        .collect();
    (n, ts)
}

fn labels(rng: &mut XorShift64, n: usize, num: u32) -> Vec<u32> {
    (0..n)
        .map(|_| rng.random_range(num as usize) as u32)
        .collect()
}

fn build(n: usize, triplets: &[(u8, u8, f64)]) -> Ctmc {
    Ctmc::from_rates(
        n,
        0,
        triplets
            .iter()
            .map(|&(s, t, r)| (s as usize, t as usize, r)),
    )
}

fn opts() -> TransientOptions {
    TransientOptions::default().with_epsilon(1e-12)
}

/// Jensen: uniformization does not change transient probabilities.
#[test]
fn uniformization_is_transient_invariant() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x0F14 + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let extra = uniform(&mut rng, 0.0, 5.0);
        let t = uniform(&mut rng, 0.1, 10.0);
        let c = build(n, &ts);
        let u = c.uniformize(c.max_exit_rate() + extra);
        let a = transient::distribution(&c, t, &opts());
        let b = transient::distribution(&u, t, &opts());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }
}

/// Transient distributions stay stochastic.
#[test]
fn transient_is_stochastic() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5702 + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let t = uniform(&mut rng, 0.0, 20.0);
        let c = build(n, &ts);
        let pi = transient::distribution(&c, t, &opts());
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
        assert!(pi.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
    }
}

/// Backward reachability agrees with forward transient mass when the
/// goal is absorbing.
#[test]
fn backward_forward_consistency() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xBF0C + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let t = uniform(&mut rng, 0.1, 10.0);
        // make state n-1 the absorbing goal
        let filtered: Vec<(u8, u8, f64)> = ts
            .iter()
            .copied()
            .filter(|&(s, _, _)| (s as usize) != n - 1)
            .collect();
        if filtered.is_empty() {
            continue;
        }
        let goal: Vec<bool> = (0..n).map(|s| s == n - 1).collect();
        let cc = build(n, &filtered);
        let back = transient::reachability(&cc, &goal, t, &opts());
        let forward = transient::distribution(&cc, t, &opts());
        assert!((back.from_state(0) - forward[n - 1]).abs() < 1e-8);
    }
}

/// Reachability is monotone in the horizon.
#[test]
fn reachability_monotone() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x7EAC + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let t = uniform(&mut rng, 0.1, 5.0);
        let c = build(n, &ts);
        let goal: Vec<bool> = (0..n).map(|s| s % 2 == 1).collect();
        let p1 = transient::reachability(&c, &goal, t, &opts()).from_state(0);
        let p2 = transient::reachability(&c, &goal, 2.0 * t, &opts()).from_state(0);
        assert!(p2 >= p1 - 1e-9);
    }
}

/// Lumping preserves label-aggregated transient probabilities.
#[test]
fn lumping_preserves_transients() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x10B8 + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let labels = labels(&mut rng, n, 2);
        let t = uniform(&mut rng, 0.1, 5.0);
        let c = build(n, &ts);
        let part = lumping::coarsest_lumping(&c, &labels);
        let q = lumping::quotient(&c, &part);
        let pi = transient::distribution(&c, t, &opts());
        let qi = transient::distribution(&q, t, &opts());
        // aggregate per block
        let mut agg = vec![0.0; part.num_blocks];
        for (s, &p) in pi.iter().enumerate() {
            agg[part.block[s] as usize] += p;
        }
        for (b, (&x, &y)) in agg.iter().zip(qi.iter()).enumerate() {
            assert!((x - y).abs() < 1e-7, "block {b}: {x} vs {y}");
        }
    }
}

/// Lumping never merges differently labeled states and is idempotent.
#[test]
fn lumping_respects_labels() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x10BE + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let labels = labels(&mut rng, n, 3);
        let c = build(n, &ts);
        let part = lumping::coarsest_lumping(&c, &labels);
        for s in 0..n {
            for t2 in 0..n {
                if part.block[s] == part.block[t2] {
                    assert_eq!(labels[s], labels[t2]);
                }
            }
        }
        // idempotence: lumping the quotient with block labels changes nothing
        let q = lumping::quotient(&c, &part);
        let block_labels: Vec<u32> = (0..part.num_blocks as u32).collect();
        let part2 = lumping::coarsest_lumping(&q, &block_labels);
        assert_eq!(part2.num_blocks, part.num_blocks);
    }
}

/// Phase-type cdfs are monotone, bounded, and the uniformized chain
/// keeps the distribution.
#[test]
fn phase_type_cdf_properties() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x9ACD + case);
        let num_phases = 1 + rng.random_range(4);
        let rates: Vec<f64> = (0..num_phases)
            .map(|_| uniform(&mut rng, 0.2, 5.0))
            .collect();
        let t = uniform(&mut rng, 0.01, 10.0);
        let ph = PhaseType::hypoexponential(&rates);
        let c1 = ph.cdf(t);
        let c2 = ph.cdf(t * 1.5);
        assert!((0.0..=1.0).contains(&c1));
        assert!(c2 >= c1 - 1e-10);
        let u = ph.uniformize_at_max();
        let pi = transient::distribution(u.ctmc(), t, &opts());
        assert!((pi[u.absorbing() as usize] - c1).abs() < 1e-8);
    }
}

/// Mean of a hypoexponential is the sum of phase means.
#[test]
fn hypoexponential_mean() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x4EA2 + case);
        let num_phases = 1 + rng.random_range(4);
        let rates: Vec<f64> = (0..num_phases)
            .map(|_| uniform(&mut rng, 0.2, 5.0))
            .collect();
        let ph = PhaseType::hypoexponential(&rates);
        let expect: f64 = rates.iter().map(|r| 1.0 / r).sum();
        assert!((ph.mean() - expect).abs() < 1e-6 * expect);
    }
}

/// The embedded DTMC and the uniformized jump matrix are stochastic.
#[test]
fn jump_matrices_are_stochastic() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x70CA + case);
        let (n, ts) = raw_ctmc(&mut rng);
        let c = build(n, &ts);
        let p = c.embedded_dtmc();
        let u = c.uniformized_jump_matrix(c.max_exit_rate() + 1.0);
        for s in 0..n {
            assert!((p.row_sum(s) - 1.0).abs() < 1e-9);
            assert!((u.row_sum(s) - 1.0).abs() < 1e-9);
        }
    }
}
