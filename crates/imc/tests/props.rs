//! Property-based tests of the paper's lemmas on randomly generated
//! uniform IMCs.
//!
//! The generator produces Definition-4-uniform models: every *stable* state
//! (no outgoing τ) carries Markov transitions summing to exactly the chosen
//! uniform rate `E`; unstable states get arbitrary junk rates — the
//! definition does not constrain them, and the operators must not be
//! confused by them.

use proptest::prelude::*;
use unicon_imc::{bisim, Imc, ImcBuilder, Uniformity, View};

const ACTIONS: [&str; 4] = ["tau", "a", "b", "c"];

#[derive(Debug, Clone)]
struct RawImc {
    n: usize,
    /// (action index, source, target)
    interactive: Vec<(u8, u8, u8)>,
    /// per-state candidate Markov targets with weights
    markov: Vec<Vec<(u8, f64)>>,
    rate: f64,
}

fn raw_imc(max_states: usize) -> impl Strategy<Value = RawImc> {
    (2..=max_states).prop_flat_map(move |n| {
        let nn = n as u8;
        let interactive =
            prop::collection::vec((0u8..4, 0..nn, 0..nn), 0..(2 * n));
        let markov = prop::collection::vec(
            prop::collection::vec((0..nn, 0.05f64..1.0), 1..3),
            n,
        );
        let rate = 0.5f64..8.0;
        (interactive, markov, rate).prop_map(move |(interactive, markov, rate)| RawImc {
            n,
            interactive,
            markov,
            rate,
        })
    })
}

/// Builds a uniform IMC from raw data.
fn build_uniform(raw: &RawImc) -> Imc {
    let mut b = ImcBuilder::new(raw.n, 0);
    let mut has_tau = vec![false; raw.n];
    for &(a, s, t) in &raw.interactive {
        // τ transitions only go "forward" (s < t): τ-divergence is Zeno
        // behaviour, which the paper's trajectory excludes — and branching
        // bisimulation does not preserve divergence.
        if a == 0 && s >= t {
            continue;
        }
        b.interactive(ACTIONS[a as usize], u32::from(s), u32::from(t));
        if a == 0 {
            has_tau[s as usize] = true;
        }
    }
    for (s, targets) in raw.markov.iter().enumerate() {
        let total: f64 = targets.iter().map(|&(_, w)| w).sum();
        // Stable states get exactly `rate`; unstable states get junk
        // (scaled by an arbitrary factor) to stress the "rates of unstable
        // states do not matter" property.
        let scale = if has_tau[s] { 0.3 } else { 1.0 };
        for &(t, w) in targets {
            b.markov(
                s as u32,
                raw.rate * scale * w / total,
                u32::from(t),
            );
        }
    }
    b.build()
}

fn rate_of(u: Uniformity) -> Option<f64> {
    match u {
        Uniformity::Uniform(e) => Some(e),
        Uniformity::Vacuous => Some(0.0),
        Uniformity::NonUniform { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_models_are_uniform(raw in raw_imc(7)) {
        let m = build_uniform(&raw);
        prop_assert!(m.is_uniform(View::Open), "{:?}", m.uniformity(View::Open));
    }

    /// Lemma 1: hiding preserves uniformity.
    #[test]
    fn lemma1_hiding_preserves_uniformity(raw in raw_imc(7), subset in 0u8..8) {
        let m = build_uniform(&raw);
        let mut hidden: Vec<&str> = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            if subset & (1 << i) != 0 {
                hidden.push(name);
            }
        }
        let h = m.hide(&hidden);
        prop_assert!(h.is_uniform(View::Open), "{:?}", h.uniformity(View::Open));
    }

    /// Lemma 2: parallel composition preserves uniformity; rates add.
    #[test]
    fn lemma2_parallel_preserves_uniformity(
        raw1 in raw_imc(5),
        raw2 in raw_imc(5),
        sync_mask in 0u8..8
    ) {
        let m = build_uniform(&raw1);
        let n = build_uniform(&raw2);
        let mut sync: Vec<&str> = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            if sync_mask & (1 << i) != 0 {
                sync.push(name);
            }
        }
        let p = m.parallel(&n, &sync);
        let u = p.uniformity(View::Open);
        prop_assert!(u.is_uniform(), "{u:?}");
        // When the composition has stable states at all, the rate is the sum.
        if let Uniformity::Uniform(e) = u {
            let (e1, e2) = (
                rate_of(m.uniformity(View::Open)).unwrap(),
                rate_of(n.uniformity(View::Open)).unwrap(),
            );
            prop_assert!((e - (e1 + e2)).abs() < 1e-9 * (e1 + e2).max(1.0),
                "composite rate {e} vs {e1} + {e2}");
        }
    }

    /// Lemma 3 / Corollary 1: the StoBraBi quotient is uniform iff the
    /// original is, with the same rate.
    #[test]
    fn lemma3_quotient_preserves_uniformity(raw in raw_imc(7)) {
        let m = build_uniform(&raw);
        let q = bisim::minimize(&m, View::Open);
        prop_assert!(q.is_uniform(View::Open), "{:?}", q.uniformity(View::Open));
        let e_m = rate_of(m.uniformity(View::Open)).unwrap();
        match q.uniformity(View::Open) {
            Uniformity::Uniform(e_q) =>
                prop_assert!((e_m - e_q).abs() < 1e-9 * e_m.max(1.0)),
            Uniformity::Vacuous => {}
            u @ Uniformity::NonUniform { .. } => prop_assert!(false, "{u:?}"),
        }
    }

    /// Minimization never grows the model and is idempotent.
    #[test]
    fn minimization_shrinks_and_is_idempotent(raw in raw_imc(7)) {
        let m = build_uniform(&raw).restrict_to_reachable();
        let q = bisim::minimize(&m, View::Open);
        prop_assert!(q.num_states() <= m.num_states());
        let qq = bisim::minimize(&q, View::Open);
        prop_assert_eq!(q.num_states(), qq.num_states());
        prop_assert_eq!(q.num_interactive(), qq.num_interactive());
    }

    /// The strong relation refines the branching relation.
    #[test]
    fn strong_refines_branching(raw in raw_imc(6)) {
        let m = build_uniform(&raw);
        let strong = bisim::strong_stochastic_bisimulation(&m, View::Open);
        let branching = bisim::stochastic_branching_bisimulation(&m, View::Open);
        prop_assert!(strong.num_blocks >= branching.num_blocks);
        // and strong-equivalent states are branching-equivalent
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if strong.block[s] == strong.block[t] {
                    prop_assert_eq!(branching.block[s], branching.block[t]);
                }
            }
        }
    }

    /// The relation hierarchy: strong refines branching refines weak.
    #[test]
    fn weak_is_coarsest(raw in raw_imc(6)) {
        let m = build_uniform(&raw);
        let strong = bisim::strong_stochastic_bisimulation(&m, View::Open);
        let branching = bisim::stochastic_branching_bisimulation(&m, View::Open);
        let weak = bisim::stochastic_weak_bisimulation(&m, View::Open);
        prop_assert!(weak.num_blocks <= branching.num_blocks);
        prop_assert!(branching.num_blocks <= strong.num_blocks);
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if branching.block[s] == branching.block[t] {
                    prop_assert_eq!(weak.block[s], weak.block[t]);
                }
            }
        }
    }

    /// Weak quotienting preserves uniformity (the paper's remark that
    /// Lemma 3 holds for weak bisimulation too).
    #[test]
    fn weak_quotient_preserves_uniformity(raw in raw_imc(6)) {
        let m = build_uniform(&raw);
        let q = bisim::minimize_weak(&m, View::Open);
        prop_assert!(q.is_uniform(View::Open), "{:?}", q.uniformity(View::Open));
    }

    /// Labeled minimization never merges across labels.
    #[test]
    fn labeled_minimization_respects_labels(
        raw in raw_imc(6),
        labels in prop::collection::vec(0u32..3, 6)
    ) {
        let m = build_uniform(&raw);
        let labels = &labels[..m.num_states().min(labels.len())];
        prop_assume!(labels.len() == m.num_states());
        let part = bisim::stochastic_branching_bisimulation_labeled(&m, View::Open, labels);
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if part.block[s] == part.block[t] {
                    prop_assert_eq!(labels[s], labels[t]);
                }
            }
        }
    }

    /// Hiding everything commutes with uniformity (closed view).
    #[test]
    fn closing_after_hiding_is_uniform(raw in raw_imc(6)) {
        let m = build_uniform(&raw).hide_all();
        // all interactive transitions are tau now: open and closed stability
        // coincide
        prop_assert_eq!(
            m.is_uniform(View::Open),
            m.is_uniform(View::Closed)
        );
        prop_assert!(m.is_uniform(View::Closed));
    }

    /// The extended-AUT serialization round-trips structure and rates.
    #[test]
    fn aut_roundtrip(raw in raw_imc(7)) {
        let m = build_uniform(&raw);
        let text = unicon_imc::io::to_aut(&m);
        let back = unicon_imc::io::from_aut(&text).expect("own output parses");
        prop_assert_eq!(back.num_states(), m.num_states());
        prop_assert_eq!(back.num_interactive(), m.num_interactive());
        prop_assert_eq!(back.num_markov(), m.num_markov());
        prop_assert_eq!(back.initial(), m.initial());
        for s in 0..m.num_states() as u32 {
            prop_assert!((back.exit_rate(s) - m.exit_rate(s)).abs() < 1e-9);
            prop_assert_eq!(back.has_tau(s), m.has_tau(s));
        }
        prop_assert_eq!(
            back.uniformity(View::Open).is_uniform(),
            m.uniformity(View::Open).is_uniform()
        );
    }

    /// Pre-emption cuts exactly the unstable states' Markov transitions.
    #[test]
    fn pre_emption_cut_is_exact(raw in raw_imc(6)) {
        let m = build_uniform(&raw);
        let cut = m.apply_pre_emption(View::Open);
        for s in 0..m.num_states() as u32 {
            if m.is_stable(s, View::Open) {
                prop_assert_eq!(cut.markov_from(s).len(), m.markov_from(s).len());
            } else {
                prop_assert_eq!(cut.markov_from(s).len(), 0);
            }
        }
    }
}
