//! Randomized tests of the paper's lemmas on randomly generated uniform
//! IMCs, driven by the in-tree deterministic [`XorShift64`] generator
//! (fixed seeds, no external PRNG).
//!
//! The generator produces Definition-4-uniform models: every *stable* state
//! (no outgoing τ) carries Markov transitions summing to exactly the chosen
//! uniform rate `E`; unstable states get arbitrary junk rates — the
//! definition does not constrain them, and the operators must not be
//! confused by them.

use unicon_imc::{bisim, Imc, ImcBuilder, Uniformity, View};
use unicon_numeric::rng::{Rng, XorShift64};

const ACTIONS: [&str; 4] = ["tau", "a", "b", "c"];
const CASES: u64 = 128;

#[derive(Debug, Clone)]
struct RawImc {
    n: usize,
    /// (action index, source, target)
    interactive: Vec<(u8, u8, u8)>,
    /// per-state candidate Markov targets with weights
    markov: Vec<Vec<(u8, f64)>>,
    rate: f64,
}

fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.random_f64() * (hi - lo)
}

fn raw_imc(rng: &mut XorShift64, max_states: usize) -> RawImc {
    let n = 2 + rng.random_range(max_states - 1);
    let num_interactive = rng.random_range(2 * n);
    let interactive = (0..num_interactive)
        .map(|_| {
            (
                rng.random_range(4) as u8,
                rng.random_range(n) as u8,
                rng.random_range(n) as u8,
            )
        })
        .collect();
    let markov = (0..n)
        .map(|_| {
            let num_targets = 1 + rng.random_range(2);
            (0..num_targets)
                .map(|_| (rng.random_range(n) as u8, uniform(rng, 0.05, 1.0)))
                .collect()
        })
        .collect();
    let rate = uniform(rng, 0.5, 8.0);
    RawImc {
        n,
        interactive,
        markov,
        rate,
    }
}

/// Builds a uniform IMC from raw data.
fn build_uniform(raw: &RawImc) -> Imc {
    let mut b = ImcBuilder::new(raw.n, 0);
    let mut has_tau = vec![false; raw.n];
    for &(a, s, t) in &raw.interactive {
        // τ transitions only go "forward" (s < t): τ-divergence is Zeno
        // behaviour, which the paper's trajectory excludes — and branching
        // bisimulation does not preserve divergence.
        if a == 0 && s >= t {
            continue;
        }
        b.interactive(ACTIONS[a as usize], u32::from(s), u32::from(t));
        if a == 0 {
            has_tau[s as usize] = true;
        }
    }
    for (s, targets) in raw.markov.iter().enumerate() {
        let total: f64 = targets.iter().map(|&(_, w)| w).sum();
        // Stable states get exactly `rate`; unstable states get junk
        // (scaled by an arbitrary factor) to stress the "rates of unstable
        // states do not matter" property.
        let scale = if has_tau[s] { 0.3 } else { 1.0 };
        for &(t, w) in targets {
            b.markov(s as u32, raw.rate * scale * w / total, u32::from(t));
        }
    }
    b.build()
}

fn rate_of(u: Uniformity) -> Option<f64> {
    match u {
        Uniformity::Uniform(e) => Some(e),
        Uniformity::Vacuous => Some(0.0),
        Uniformity::NonUniform { .. } => None,
    }
}

#[test]
fn generated_models_are_uniform() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x6EE0 + case);
        let m = build_uniform(&raw_imc(&mut rng, 7));
        assert!(m.is_uniform(View::Open), "{:?}", m.uniformity(View::Open));
    }
}

/// Lemma 1: hiding preserves uniformity.
#[test]
fn lemma1_hiding_preserves_uniformity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x1E1A + case);
        let raw = raw_imc(&mut rng, 7);
        let subset = rng.random_range(8) as u8;
        let m = build_uniform(&raw);
        let mut hidden: Vec<&str> = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            if subset & (1 << i) != 0 {
                hidden.push(name);
            }
        }
        let h = m.hide(&hidden);
        assert!(h.is_uniform(View::Open), "{:?}", h.uniformity(View::Open));
    }
}

/// Lemma 2: parallel composition preserves uniformity; rates add.
#[test]
fn lemma2_parallel_preserves_uniformity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x1E2A + case);
        let raw1 = raw_imc(&mut rng, 5);
        let raw2 = raw_imc(&mut rng, 5);
        let sync_mask = rng.random_range(8) as u8;
        let m = build_uniform(&raw1);
        let n = build_uniform(&raw2);
        let mut sync: Vec<&str> = Vec::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            if sync_mask & (1 << i) != 0 {
                sync.push(name);
            }
        }
        let p = m.parallel(&n, &sync);
        let u = p.uniformity(View::Open);
        assert!(u.is_uniform(), "{u:?}");
        // When the composition has stable states at all, the rate is the sum.
        if let Uniformity::Uniform(e) = u {
            let (e1, e2) = (
                rate_of(m.uniformity(View::Open)).unwrap(),
                rate_of(n.uniformity(View::Open)).unwrap(),
            );
            assert!(
                (e - (e1 + e2)).abs() < 1e-9 * (e1 + e2).max(1.0),
                "composite rate {e} vs {e1} + {e2}"
            );
        }
    }
}

/// Lemma 3 / Corollary 1: the StoBraBi quotient is uniform iff the
/// original is, with the same rate.
#[test]
fn lemma3_quotient_preserves_uniformity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x1E3A + case);
        let m = build_uniform(&raw_imc(&mut rng, 7));
        let q = bisim::minimize(&m, View::Open);
        assert!(q.is_uniform(View::Open), "{:?}", q.uniformity(View::Open));
        let e_m = rate_of(m.uniformity(View::Open)).unwrap();
        match q.uniformity(View::Open) {
            Uniformity::Uniform(e_q) => {
                assert!((e_m - e_q).abs() < 1e-9 * e_m.max(1.0))
            }
            Uniformity::Vacuous => {}
            u @ Uniformity::NonUniform { .. } => panic!("{u:?}"),
        }
    }
}

/// Minimization never grows the model and is idempotent.
#[test]
fn minimization_shrinks_and_is_idempotent() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3169 + case);
        let m = build_uniform(&raw_imc(&mut rng, 7)).restrict_to_reachable();
        let q = bisim::minimize(&m, View::Open);
        assert!(q.num_states() <= m.num_states());
        let qq = bisim::minimize(&q, View::Open);
        assert_eq!(q.num_states(), qq.num_states());
        assert_eq!(q.num_interactive(), qq.num_interactive());
    }
}

/// The strong relation refines the branching relation.
#[test]
fn strong_refines_branching() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x57B0 + case);
        let m = build_uniform(&raw_imc(&mut rng, 6));
        let strong = bisim::strong_stochastic_bisimulation(&m, View::Open);
        let branching = bisim::stochastic_branching_bisimulation(&m, View::Open);
        assert!(strong.num_blocks >= branching.num_blocks);
        // and strong-equivalent states are branching-equivalent
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if strong.block[s] == strong.block[t] {
                    assert_eq!(branching.block[s], branching.block[t]);
                }
            }
        }
    }
}

/// The relation hierarchy: strong refines branching refines weak.
#[test]
fn weak_is_coarsest() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3EAC + case);
        let m = build_uniform(&raw_imc(&mut rng, 6));
        let strong = bisim::strong_stochastic_bisimulation(&m, View::Open);
        let branching = bisim::stochastic_branching_bisimulation(&m, View::Open);
        let weak = bisim::stochastic_weak_bisimulation(&m, View::Open);
        assert!(weak.num_blocks <= branching.num_blocks);
        assert!(branching.num_blocks <= strong.num_blocks);
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if branching.block[s] == branching.block[t] {
                    assert_eq!(weak.block[s], weak.block[t]);
                }
            }
        }
    }
}

/// Weak quotienting preserves uniformity (the paper's remark that
/// Lemma 3 holds for weak bisimulation too).
#[test]
fn weak_quotient_preserves_uniformity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3EA2 + case);
        let m = build_uniform(&raw_imc(&mut rng, 6));
        let q = bisim::minimize_weak(&m, View::Open);
        assert!(q.is_uniform(View::Open), "{:?}", q.uniformity(View::Open));
    }
}

/// Labeled minimization never merges across labels.
#[test]
fn labeled_minimization_respects_labels() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x1ABE + case);
        let m = build_uniform(&raw_imc(&mut rng, 6));
        let labels: Vec<u32> = (0..m.num_states())
            .map(|_| rng.random_range(3) as u32)
            .collect();
        let part = bisim::stochastic_branching_bisimulation_labeled(&m, View::Open, &labels);
        for s in 0..m.num_states() {
            for t in 0..m.num_states() {
                if part.block[s] == part.block[t] {
                    assert_eq!(labels[s], labels[t]);
                }
            }
        }
    }
}

/// Hiding everything commutes with uniformity (closed view).
#[test]
fn closing_after_hiding_is_uniform() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xC105 + case);
        let m = build_uniform(&raw_imc(&mut rng, 6)).hide_all();
        // all interactive transitions are tau now: open and closed stability
        // coincide
        assert_eq!(m.is_uniform(View::Open), m.is_uniform(View::Closed));
        assert!(m.is_uniform(View::Closed));
    }
}

/// The extended-AUT serialization round-trips structure and rates.
#[test]
fn aut_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xA073 + case);
        let m = build_uniform(&raw_imc(&mut rng, 7));
        let text = unicon_imc::io::to_aut(&m);
        let back = unicon_imc::io::from_aut(&text).expect("own output parses");
        assert_eq!(back.num_states(), m.num_states());
        assert_eq!(back.num_interactive(), m.num_interactive());
        assert_eq!(back.num_markov(), m.num_markov());
        assert_eq!(back.initial(), m.initial());
        for s in 0..m.num_states() as u32 {
            assert!((back.exit_rate(s) - m.exit_rate(s)).abs() < 1e-9);
            assert_eq!(back.has_tau(s), m.has_tau(s));
        }
        assert_eq!(
            back.uniformity(View::Open).is_uniform(),
            m.uniformity(View::Open).is_uniform()
        );
    }
}

/// Pre-emption cuts exactly the unstable states' Markov transitions.
#[test]
fn pre_emption_cut_is_exact() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x9CE7 + case);
        let m = build_uniform(&raw_imc(&mut rng, 6));
        let cut = m.apply_pre_emption(View::Open);
        for s in 0..m.num_states() as u32 {
            if m.is_stable(s, View::Open) {
                assert_eq!(cut.markov_from(s).len(), m.markov_from(s).len());
            } else {
                assert_eq!(cut.markov_from(s).len(), 0);
            }
        }
    }
}
