//! The original full-resweep signature refiner, kept verbatim.
//!
//! Every refinement round recomputes the `BTreeSet` signature of **every**
//! state from scratch and regroups by `(old block, signature)` with fresh
//! dense block ids in first-occurrence state order. This is the seed
//! implementation of the repo; it stays alive for two reasons:
//!
//! * **Oracle** — differential tests assert that the worklist refiner in
//!   [`super`] produces bitwise-identical partitions on random IMCs and on
//!   the FTWC case study.
//! * **Baseline** — `unicon bench-build` times this refiner against the
//!   worklist refiner on the same models, so `BENCH_build.json` always
//!   records an honest before/after pair.
//!
//! Do not optimize this module; that is what [`super::Refiner::Worklist`]
//! is for.

use std::collections::{BTreeSet, HashMap};

use unicon_ctmc::lumping::quantize;
use unicon_numeric::NeumaierSum;

use super::Partition;
use crate::model::{Imc, View};

/// A state signature: visible/non-inert moves plus the set of stable rate
/// profiles reachable through inert internal steps.
type Signature = (BTreeSet<(u32, u32)>, BTreeSet<Vec<(u32, u64)>>);

/// Reference implementation of
/// [`super::stochastic_branching_bisimulation`].
pub fn stochastic_branching_bisimulation(imc: &Imc, view: View) -> Partition {
    stochastic_branching_bisimulation_from(imc, view, Partition::universal(imc.num_states()))
}

/// Reference implementation of
/// [`super::stochastic_branching_bisimulation_labeled`].
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_branching_bisimulation_labeled(
    imc: &Imc,
    view: View,
    labels: &[u32],
) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    stochastic_branching_bisimulation_from(imc, view, Partition::from_labels(labels))
}

fn stochastic_branching_bisimulation_from(imc: &Imc, view: View, init: Partition) -> Partition {
    // Rates of unstable states are semantically irrelevant: cut them first.
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    let mut part = init;
    loop {
        let sigs: Vec<Signature> = (0..n as u32)
            .map(|s| signature(&m, view, &part, s))
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Reference implementation of [`super::strong_stochastic_bisimulation`].
pub fn strong_stochastic_bisimulation(imc: &Imc, view: View) -> Partition {
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    let mut part = Partition::universal(n);
    loop {
        let sigs: Vec<Signature> = (0..n as u32)
            .map(|s| {
                let mut moves = BTreeSet::new();
                for t in m.interactive_from(s) {
                    moves.insert((t.action.0, part.block[t.target as usize]));
                }
                let mut profiles = BTreeSet::new();
                profiles.insert(rate_profile(&m, &part, s));
                (moves, profiles)
            })
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Reference implementation of [`super::stochastic_weak_bisimulation`].
pub fn stochastic_weak_bisimulation(imc: &Imc, view: View) -> Partition {
    stochastic_weak_bisimulation_from(imc, view, Partition::universal(imc.num_states()))
}

/// Reference implementation of
/// [`super::stochastic_weak_bisimulation_labeled`].
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_weak_bisimulation_labeled(imc: &Imc, view: View, labels: &[u32]) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    stochastic_weak_bisimulation_from(imc, view, Partition::from_labels(labels))
}

fn stochastic_weak_bisimulation_from(imc: &Imc, view: View, init: Partition) -> Partition {
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    // Full τ*-closure, independent of the partition: compute once.
    let closure: Vec<Vec<u32>> = (0..n as u32).map(|s| tau_closure(&m, s)).collect();
    let mut part = init;
    loop {
        let sigs: Vec<Signature> = (0..n)
            .map(|s| {
                let my_block = part.block[s];
                let mut moves = BTreeSet::new();
                let mut profiles = BTreeSet::new();
                for &s1 in &closure[s] {
                    // τ moves that change block (weak: s ⇒τ* t).
                    let b1 = part.block[s1 as usize];
                    if b1 != my_block {
                        moves.insert((unicon_lts::ActionId::TAU.0, b1));
                    }
                    // visible moves with τ*-closure on the target side.
                    for t in m.interactive_from(s1) {
                        if t.action.is_tau() {
                            continue;
                        }
                        for &t2 in &closure[t.target as usize] {
                            moves.insert((t.action.0, part.block[t2 as usize]));
                        }
                    }
                    if m.is_stable(s1, view) {
                        profiles.insert(rate_profile(&m, &part, s1));
                    }
                }
                (moves, profiles)
            })
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Reflexive-transitive closure over τ transitions (all of them, not just
/// inert ones), including `s` itself.
fn tau_closure(m: &Imc, s: u32) -> Vec<u32> {
    let mut seen = vec![s];
    let mut stack = vec![s];
    while let Some(x) = stack.pop() {
        for t in m.interactive_from(x) {
            if t.action.is_tau() && !seen.contains(&t.target) {
                seen.push(t.target);
                stack.push(t.target);
            }
        }
    }
    seen
}

/// Splits every block by signature; returns the new partition and whether
/// the block count grew.
fn refine(part: &Partition, sigs: &[Signature]) -> (Partition, bool) {
    let mut keys: HashMap<(u32, &Signature), u32> = HashMap::new();
    let mut block = Vec::with_capacity(sigs.len());
    for (s, sig) in sigs.iter().enumerate() {
        let fresh = keys.len() as u32;
        block.push(*keys.entry((part.block[s], sig)).or_insert(fresh));
    }
    let num_blocks = keys.len();
    let changed = num_blocks != part.num_blocks;
    (Partition { block, num_blocks }, changed)
}

/// Branching signature of `s` under the current partition: all non-inert
/// moves reachable via inert τ steps, plus the rate profiles of the stable
/// states reachable via inert τ steps.
fn signature(m: &Imc, view: View, part: &Partition, s: u32) -> Signature {
    let closure = inert_closure(m, part, s);
    let my_block = part.block[s as usize];
    let mut moves = BTreeSet::new();
    let mut profiles = BTreeSet::new();
    for &s2 in &closure {
        for t in m.interactive_from(s2) {
            let tgt_block = part.block[t.target as usize];
            if !(t.action.is_tau() && tgt_block == my_block) {
                moves.insert((t.action.0, tgt_block));
            }
        }
        if m.is_stable(s2, view) {
            profiles.insert(rate_profile(m, part, s2));
        }
    }
    (moves, profiles)
}

/// The τ-closure of `s` within its own block (inert steps only), including
/// `s` itself.
fn inert_closure(m: &Imc, part: &Partition, s: u32) -> Vec<u32> {
    let my_block = part.block[s as usize];
    let mut seen = vec![s];
    let mut stack = vec![s];
    while let Some(x) = stack.pop() {
        for t in m.interactive_from(x) {
            if t.action.is_tau()
                && part.block[t.target as usize] == my_block
                && !seen.contains(&t.target)
            {
                seen.push(t.target);
                stack.push(t.target);
            }
        }
    }
    seen
}

/// Per-block cumulative rate vector of one state, quantized for hashing.
fn rate_profile(m: &Imc, part: &Partition, s: u32) -> Vec<(u32, u64)> {
    let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
    for t in m.markov_from(s) {
        per_block
            .entry(part.block[t.target as usize])
            .or_default()
            .add(t.rate);
    }
    let mut v: Vec<(u32, u64)> = per_block
        .into_iter() // det-lint: allow(hash-iter): collected and sorted below.
        .map(|(b, r)| (b, quantize(r.value())))
        .collect();
    v.sort_unstable();
    v
}
