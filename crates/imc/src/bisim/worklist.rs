//! Dirty-block worklist signature refinement.
//!
//! Runs the *same* synchronous refinement rounds as [`super::reference`],
//! but skips all provably redundant work:
//!
//! * **Stable block ids.** Splitting a block keeps the old id for the
//!   subgroup containing the block's first member (in state order) and
//!   hands fresh ids to the rest. Renaming block ids consistently cannot
//!   change signature *equality*, so the per-round equivalence relations
//!   are exactly those of the reference refiner, which renumbers from
//!   scratch each round.
//! * **Dirty tracking.** A state's signature value can only change between
//!   rounds if the block id of one of its *dependency states* changed. The
//!   dependency set `D(s)` is partition-independent (τ-closures and
//!   transition targets), so a reverse-dependency CSR is built once; after
//!   each round, only the states hit by an actual block change are
//!   re-signed, and only blocks containing such a state are re-grouped. A
//!   block whose members are all clean kept equal signatures, so it cannot
//!   split — skipping it is lossless, not an approximation.
//! * **Flat interned signatures.** Signatures live in reusable
//!   `Vec<(u32, u32)>` / `Vec<Vec<(u32, u64)>>` scratch buffers (sorted and
//!   deduplicated, which is exactly the `BTreeSet` equality the reference
//!   uses), hashed with FNV-1a into an interner; states then carry a single
//!   `u32` signature id and grouping is integer equality.
//! * **Stamped visited buffers.** τ- and inert closures reuse a stamped
//!   `VisitBuf` instead of `Vec::contains` linear scans.
//!
//! The converged partition is canonicalized by first-occurrence state
//! order, which is precisely the numbering the reference's final
//! no-change round produces — hence bitwise-identical output.

use std::collections::HashMap;

use unicon_ctmc::lumping::quantize;
use unicon_lts::ActionId;
use unicon_numeric::NeumaierSum;

use super::Partition;
use crate::model::{Imc, View};

/// Which bisimulation relation the signatures encode.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(super) enum Mode {
    Branching,
    Weak,
    Strong,
}

/// A reusable visited set with O(1) reset: membership is "stamp matches
/// the current round", so clearing is a single counter bump.
struct VisitBuf {
    stamp: Vec<u32>,
    cur: u32,
}

impl VisitBuf {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            cur: 0,
        }
    }

    fn begin(&mut self) {
        self.cur += 1;
        if self.cur == u32::MAX {
            self.stamp.fill(0);
            self.cur = 1;
        }
    }

    /// Marks `x`; returns `true` when it was not yet marked this round.
    fn insert(&mut self, x: u32) -> bool {
        let slot = &mut self.stamp[x as usize];
        if *slot == self.cur {
            false
        } else {
            *slot = self.cur;
            true
        }
    }
}

/// Compressed row storage for per-state u32 lists.
struct Csr {
    off: Vec<u32>,
    dat: Vec<u32>,
}

impl Csr {
    fn row(&self, s: u32) -> &[u32] {
        &self.dat[self.off[s as usize] as usize..self.off[s as usize + 1] as usize]
    }
}

/// τ*-closure of every state (reflexive, all τ transitions), as a CSR.
fn tau_closures(m: &Imc, visit: &mut VisitBuf) -> Csr {
    let n = m.num_states();
    let mut off = Vec::with_capacity(n + 1);
    off.push(0u32);
    let mut dat: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for s in 0..n as u32 {
        visit.begin();
        visit.insert(s);
        dat.push(s);
        stack.push(s);
        while let Some(x) = stack.pop() {
            for t in m.interactive_from(x) {
                if t.action.is_tau() && visit.insert(t.target) {
                    dat.push(t.target);
                    stack.push(t.target);
                }
            }
        }
        off.push(dat.len() as u32);
    }
    Csr { off, dat }
}

/// Reverse-dependency CSR: `rdep.row(x)` lists every state `s` whose
/// signature reads `block[x]`. Partition-independent by construction (the
/// forward sets are conservative supersets of what any round's signature
/// actually touches).
fn reverse_deps(m: &Imc, mode: Mode, closure: Option<&Csr>, visit: &mut VisitBuf) -> Csr {
    let n = m.num_states();
    let mut fwd_off = Vec::with_capacity(n + 1);
    fwd_off.push(0u32);
    let mut fwd: Vec<u32> = Vec::new();
    let push = |fwd: &mut Vec<u32>, visit: &mut VisitBuf, x: u32| {
        if visit.insert(x) {
            fwd.push(x);
        }
    };
    for s in 0..n as u32 {
        visit.begin();
        match mode {
            Mode::Strong => {
                push(&mut fwd, visit, s);
                for t in m.interactive_from(s) {
                    push(&mut fwd, visit, t.target);
                }
                for t in m.markov_from(s) {
                    push(&mut fwd, visit, t.target);
                }
            }
            Mode::Branching => {
                // Inert closures are subsets of the τ-closure, whatever the
                // partition: cover every member and all its targets.
                for &x in closure.expect("branching needs closures").row(s) {
                    push(&mut fwd, visit, x);
                    for t in m.interactive_from(x) {
                        push(&mut fwd, visit, t.target);
                    }
                    for t in m.markov_from(x) {
                        push(&mut fwd, visit, t.target);
                    }
                }
            }
            Mode::Weak => {
                let cl = closure.expect("weak needs closures");
                for &x in cl.row(s) {
                    push(&mut fwd, visit, x);
                    for t in m.interactive_from(x) {
                        if t.action.is_tau() {
                            continue; // τ targets are already in cl(s)
                        }
                        for &y in cl.row(t.target) {
                            push(&mut fwd, visit, y);
                        }
                    }
                    for t in m.markov_from(x) {
                        push(&mut fwd, visit, t.target);
                    }
                }
            }
        }
        fwd_off.push(fwd.len() as u32);
    }
    // Invert: count in-degrees, prefix-sum, scatter.
    let mut off = vec![0u32; n + 1];
    for &x in &fwd {
        off[x as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut cursor = off.clone();
    let mut dat = vec![0u32; fwd.len()];
    for s in 0..n {
        for &x in &fwd[fwd_off[s] as usize..fwd_off[s + 1] as usize] {
            dat[cursor[x as usize] as usize] = s as u32;
            cursor[x as usize] += 1;
        }
    }
    Csr { off, dat }
}

/// A flat signature: sorted/deduplicated moves and stable rate profiles —
/// the `Vec` mirror of the reference's `(BTreeSet, BTreeSet)` pair.
#[derive(Clone, Default, PartialEq, Eq)]
struct SigData {
    moves: Vec<(u32, u32)>,
    profiles: Vec<Vec<(u32, u64)>>,
}

impl SigData {
    fn clear(&mut self) {
        self.moves.clear();
        self.profiles.clear();
    }

    fn normalize(&mut self) {
        self.moves.sort_unstable();
        self.moves.dedup();
        self.profiles.sort_unstable();
        self.profiles.dedup();
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

fn fnv_sig(sig: &SigData) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_word(h, sig.moves.len() as u64);
    for &(a, b) in &sig.moves {
        h = fnv_word(h, (u64::from(a) << 32) | u64::from(b));
    }
    h = fnv_word(h, sig.profiles.len() as u64);
    for p in &sig.profiles {
        h = fnv_word(h, p.len() as u64);
        for &(b, q) in p {
            h = fnv_word(h, u64::from(b));
            h = fnv_word(h, q);
        }
    }
    h
}

/// Interns signatures so that equal signatures share one id; grouping then
/// compares a single `u32` per state instead of whole tree sets.
#[derive(Default)]
struct Interner {
    by_hash: HashMap<u64, Vec<u32>>,
    sigs: Vec<SigData>,
}

impl Interner {
    fn intern(&mut self, scratch: &SigData) -> u32 {
        let h = fnv_sig(scratch);
        let bucket = self.by_hash.entry(h).or_default();
        for &id in bucket.iter() {
            if self.sigs[id as usize] == *scratch {
                return id;
            }
        }
        let id = self.sigs.len() as u32;
        self.sigs.push(scratch.clone());
        bucket.push(id);
        id
    }
}

/// Stamped per-block rate accumulator: Neumaier-sums Markov rates per
/// target block in transition order (identical to the reference's
/// accumulation order), then emits the sorted quantized profile.
struct RateAcc {
    stamp: Vec<u32>,
    cur: u32,
    sum: Vec<NeumaierSum>,
    touched: Vec<u32>,
}

impl RateAcc {
    fn new(max_blocks: usize) -> Self {
        Self {
            stamp: vec![0; max_blocks],
            cur: 0,
            sum: vec![NeumaierSum::default(); max_blocks],
            touched: Vec::new(),
        }
    }

    fn profile(&mut self, m: &Imc, block: &[u32], s: u32) -> Vec<(u32, u64)> {
        self.cur += 1;
        if self.cur == u32::MAX {
            self.stamp.fill(0);
            self.cur = 1;
        }
        self.touched.clear();
        for t in m.markov_from(s) {
            let b = block[t.target as usize];
            let slot = b as usize;
            if self.stamp[slot] != self.cur {
                self.stamp[slot] = self.cur;
                self.sum[slot] = NeumaierSum::default();
                self.touched.push(b);
            }
            self.sum[slot].add(t.rate);
        }
        let mut v: Vec<(u32, u64)> = self
            .touched
            .iter()
            .map(|&b| (b, quantize(self.sum[b as usize].value())))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Everything a per-state signature computation needs.
struct SigCtx<'a> {
    m: &'a Imc,
    mode: Mode,
    stable: &'a [bool],
    closure: Option<&'a Csr>,
}

// The argument list is the set of reusable scratch buffers — bundling
// them into a struct would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn compute_sig(
    ctx: &SigCtx<'_>,
    block: &[u32],
    s: u32,
    visit: &mut VisitBuf,
    stack: &mut Vec<u32>,
    inert: &mut Vec<u32>,
    acc: &mut RateAcc,
    scratch: &mut SigData,
) {
    scratch.clear();
    let my = block[s as usize];
    match ctx.mode {
        Mode::Strong => {
            for t in ctx.m.interactive_from(s) {
                scratch.moves.push((t.action.0, block[t.target as usize]));
            }
            scratch.profiles.push(acc.profile(ctx.m, block, s));
        }
        Mode::Branching => {
            // Inert closure of s under the current partition.
            inert.clear();
            stack.clear();
            visit.begin();
            visit.insert(s);
            inert.push(s);
            stack.push(s);
            while let Some(x) = stack.pop() {
                for t in ctx.m.interactive_from(x) {
                    if t.action.is_tau() && block[t.target as usize] == my && visit.insert(t.target)
                    {
                        inert.push(t.target);
                        stack.push(t.target);
                    }
                }
            }
            for &x in inert.iter() {
                for t in ctx.m.interactive_from(x) {
                    let tb = block[t.target as usize];
                    if !(t.action.is_tau() && tb == my) {
                        scratch.moves.push((t.action.0, tb));
                    }
                }
                if ctx.stable[x as usize] {
                    scratch.profiles.push(acc.profile(ctx.m, block, x));
                }
            }
        }
        Mode::Weak => {
            let cl = ctx.closure.expect("weak needs closures");
            for &s1 in cl.row(s) {
                let b1 = block[s1 as usize];
                if b1 != my {
                    scratch.moves.push((ActionId::TAU.0, b1));
                }
                for t in ctx.m.interactive_from(s1) {
                    if t.action.is_tau() {
                        continue;
                    }
                    for &t2 in cl.row(t.target) {
                        scratch.moves.push((t.action.0, block[t2 as usize]));
                    }
                }
                if ctx.stable[s1 as usize] {
                    scratch.profiles.push(acc.profile(ctx.m, block, s1));
                }
            }
        }
    }
    scratch.normalize();
}

/// Renumbers block ids densely by first-occurrence state order — the
/// numbering the reference refiner's final round produces.
fn canonicalize(mut block: Vec<u32>, num_blocks: usize) -> Partition {
    let mut remap = vec![u32::MAX; num_blocks];
    let mut next = 0u32;
    for b in &mut block {
        let slot = &mut remap[*b as usize];
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
        *b = *slot;
    }
    Partition {
        block,
        num_blocks: next as usize,
    }
}

/// Worklist signature refinement: computes the same fixpoint partition as
/// the corresponding `super::reference` function, bitwise.
pub(super) fn refine(imc: &Imc, view: View, init: Partition, mode: Mode) -> Partition {
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    if n == 0 {
        return init;
    }

    let mut visit = VisitBuf::new(n);
    let stable: Vec<bool> = (0..n as u32).map(|s| m.is_stable(s, view)).collect();
    let closure = match mode {
        Mode::Branching | Mode::Weak => Some(tau_closures(&m, &mut visit)),
        Mode::Strong => None,
    };
    let rdep = reverse_deps(&m, mode, closure.as_ref(), &mut visit);

    let Partition {
        mut block,
        mut num_blocks,
    } = init;
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_blocks];
    for (s, &b) in block.iter().enumerate() {
        members[b as usize].push(s as u32);
    }

    let ctx = SigCtx {
        m: &m,
        mode,
        stable: &stable,
        closure: closure.as_ref(),
    };
    let mut interner = Interner::default();
    let mut sig_id: Vec<u32> = vec![u32::MAX; n];
    let mut acc = RateAcc::new(n);
    let mut scratch = SigData::default();
    let mut stack: Vec<u32> = Vec::new();
    let mut inert: Vec<u32> = Vec::new();

    let mut dirty: Vec<u32> = (0..n as u32).collect();
    let mut dirty_mark = VisitBuf::new(n);
    let mut block_mark = VisitBuf::new(n);
    let mut group_of: HashMap<u32, usize> = HashMap::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();

    let mut round = 0usize;
    while !dirty.is_empty() {
        round += 1;
        let dirty_states = dirty.len();
        // Re-sign the states whose dependencies moved; everyone else keeps
        // the signature value from the previous round (stable ids make it
        // literally unchanged).
        for &s in &dirty {
            compute_sig(
                &ctx,
                &block,
                s,
                &mut visit,
                &mut stack,
                &mut inert,
                &mut acc,
                &mut scratch,
            );
            sig_id[s as usize] = interner.intern(&scratch);
        }

        // Only blocks holding a dirty state can split.
        block_mark.begin();
        let mut dirty_blocks: Vec<u32> = Vec::new();
        for &s in &dirty {
            let b = block[s as usize];
            if block_mark.insert(b) {
                dirty_blocks.push(b);
            }
        }
        dirty_blocks.sort_unstable();

        let mut moved: Vec<u32> = Vec::new();
        for &b in &dirty_blocks {
            let mem = std::mem::take(&mut members[b as usize]);
            if mem.len() == 1 {
                members[b as usize] = mem;
                continue;
            }
            group_of.clear();
            groups.clear();
            for &s in &mem {
                let sid = sig_id[s as usize];
                let idx = *group_of.entry(sid).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[idx].push(s);
            }
            if groups.len() == 1 {
                members[b as usize] = mem;
                continue;
            }
            // Member lists are kept in ascending state order, so group 0
            // holds the block's first member and keeps the old id.
            for (i, g) in groups.iter_mut().enumerate() {
                if i == 0 {
                    members[b as usize] = std::mem::take(g);
                } else {
                    let fresh = num_blocks as u32;
                    num_blocks += 1;
                    for &s in g.iter() {
                        block[s as usize] = fresh;
                        moved.push(s);
                    }
                    members.push(std::mem::take(g));
                }
            }
        }

        // Next round's dirty set: everyone whose signature reads a moved
        // state's block id.
        dirty.clear();
        if !moved.is_empty() {
            dirty_mark.begin();
            moved.sort_unstable();
            for &x in &moved {
                for &s in rdep.row(x) {
                    if dirty_mark.insert(s) {
                        dirty.push(s);
                    }
                }
            }
            dirty.sort_unstable();
        }

        unicon_obs::emit(unicon_obs::Class::Metric, || {
            unicon_obs::Event::RefineRound {
                round,
                dirty_states,
                dirty_blocks: dirty_blocks.len(),
                moved: moved.len(),
                num_blocks,
            }
        });
    }

    canonicalize(block, num_blocks)
}
