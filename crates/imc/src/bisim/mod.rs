//! Stochastic branching bisimulation and strong stochastic bisimulation.
//!
//! The minimization equivalence of the paper (Definition 6) must
//!
//! 1. abstract from internal computation (branching-style τ treatment),
//! 2. lump Markov transitions (Kemeny–Snell style),
//! 3. leave the branching structure otherwise untouched.
//!
//! We implement both relations by Blom–Orzan-style *signature refinement*:
//! the partition is repeatedly split by a per-state signature until it
//! stabilizes, then the quotient IMC is read off. For the branching variant
//! the signature closes over *inert* τ steps (τ transitions that stay
//! inside the current block).
//!
//! The computed partition is a **sound** stochastic branching bisimulation —
//! every pair of merged states satisfies Definition 6 — and on the
//! divergence-free models of the modelling trajectory (Zenoness is excluded
//! before analysis) it is the coarsest one in all our test cases. Lemma 3 /
//! Corollary 1 (quotienting preserves uniformity, in both directions) is
//! exercised by the property tests.
//!
//! # Two refiners, one partition
//!
//! Two interchangeable refiner backends compute the fixpoint:
//!
//! * [`worklist`](Refiner::Worklist) (the default) — a dirty-block worklist
//!   refiner that re-computes a state's signature only when the block of one
//!   of its dependency states changed in the previous round. Signatures are
//!   interned into flat `Vec` scratch buffers hashed with FNV-1a instead of
//!   per-state `BTreeSet`s, and closures reuse stamp-based visited buffers.
//! * [`reference`] — the original full-resweep refiner, kept verbatim as a
//!   correctness oracle and as the honest baseline timed by `bench-build`.
//!
//! Both run the *same synchronous refinement rounds* (the worklist variant
//! merely skips blocks whose members' signatures provably did not change),
//! and the final partition is canonicalized by first-occurrence state order
//! — so the resulting [`Partition`], and therefore the quotient IMC, is
//! **bitwise identical** between the two. Differential tests on random IMCs
//! and the FTWC case study pin this down.

use std::collections::HashMap;

use unicon_lts::Transition;
use unicon_numeric::NeumaierSum;

use crate::model::{Imc, MarkovTransition, View};

pub mod reference;
mod worklist;

/// A partition of IMC states into dense blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block[s]` is the block of state `s`.
    pub block: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
}

impl Partition {
    fn universal(n: usize) -> Self {
        Self {
            block: vec![0; n],
            num_blocks: usize::from(n > 0),
        }
    }

    /// Builds an initial partition from arbitrary per-state labels (states
    /// with different labels are never merged), renumbering densely.
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let block: Vec<u32> = labels
            .iter()
            .map(|&l| {
                let fresh = remap.len() as u32;
                *remap.entry(l).or_insert(fresh)
            })
            .collect();
        Self {
            num_blocks: remap.len(),
            block,
        }
    }
}

/// Selects the partition-refinement backend.
///
/// Both backends produce bitwise-identical partitions; they differ only in
/// how much work they redo per refinement round. [`Refiner::Worklist`] is
/// the default everywhere; [`Refiner::Reference`] exists so benchmarks can
/// time the seed algorithm and tests can cross-check the quotients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Refiner {
    /// Dirty-block worklist refinement with interned FNV-hashed signatures.
    #[default]
    Worklist,
    /// The original full-resweep refiner (see [`reference`]).
    Reference,
}

/// Computes a stochastic branching bisimulation partition of `imc`.
///
/// `view` selects which actions pre-empt Markov transitions (τ only under
/// [`View::Open`]; every interactive transition under [`View::Closed`]) and
/// which transitions can be inert (always τ).
pub fn stochastic_branching_bisimulation(imc: &Imc, view: View) -> Partition {
    worklist::refine(
        imc,
        view,
        Partition::universal(imc.num_states()),
        worklist::Mode::Branching,
    )
}

/// Like [`stochastic_branching_bisimulation`] but refining an initial
/// partition given by per-state labels: states with different labels are
/// never merged, so any label-defined measure (e.g. a goal set) survives
/// quotienting.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_branching_bisimulation_labeled(
    imc: &Imc,
    view: View,
    labels: &[u32],
) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    worklist::refine(
        imc,
        view,
        Partition::from_labels(labels),
        worklist::Mode::Branching,
    )
}

/// Computes a strong stochastic bisimulation partition (no τ abstraction).
pub fn strong_stochastic_bisimulation(imc: &Imc, view: View) -> Partition {
    worklist::refine(
        imc,
        view,
        Partition::universal(imc.num_states()),
        worklist::Mode::Strong,
    )
}

/// Computes a stochastic **weak** bisimulation partition.
///
/// Weak bisimulation abstracts more aggressively than the branching
/// variant: a visible move may be matched by `τ* a τ*`, so e.g.
/// `a.(b + τ.c) + a.c` and `a.(b + τ.c)` are weakly but not branching
/// bisimilar. The paper remarks that the uniformity-preservation result
/// (Lemma 3) equally holds for this relation.
///
/// Implemented by signature refinement over the full τ*-closure (computed
/// once); like the branching variant, the result is a sound bisimulation —
/// every merged pair is weakly bisimilar — intended for divergence-free
/// (non-Zeno) models.
pub fn stochastic_weak_bisimulation(imc: &Imc, view: View) -> Partition {
    worklist::refine(
        imc,
        view,
        Partition::universal(imc.num_states()),
        worklist::Mode::Weak,
    )
}

/// Label-respecting variant of [`stochastic_weak_bisimulation`].
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_weak_bisimulation_labeled(imc: &Imc, view: View, labels: &[u32]) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    worklist::refine(
        imc,
        view,
        Partition::from_labels(labels),
        worklist::Mode::Weak,
    )
}

/// Minimizes modulo stochastic weak bisimilarity.
pub fn minimize_weak(imc: &Imc, view: View) -> Imc {
    let part = stochastic_weak_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize_weak (Lemma 3)", view, &[imc], &out);
    out
}

/// Builds the quotient IMC of `imc` under `partition`.
///
/// Interactive transitions: `B --a--> C` iff some `s ∈ B` moves `a` to
/// `C`, except inert τ self-loops, which vanish. Markov transitions: the
/// per-block rates of any *stable* member of `B` (all stable members agree
/// once the partition is a bisimulation); blocks without stable members get
/// none — their rates are pre-empted anyway.
///
/// # Panics
///
/// Panics if the partition length does not match the model.
pub fn quotient(imc: &Imc, partition: &Partition, view: View) -> Imc {
    assert_eq!(
        partition.block.len(),
        imc.num_states(),
        "partition does not match the model"
    );
    let m = imc.apply_pre_emption(view);
    let nb = partition.num_blocks;

    let mut interactive: Vec<Transition> = Vec::new();
    for t in m.interactive() {
        let sb = partition.block[t.source as usize];
        let tb = partition.block[t.target as usize];
        if t.action.is_tau() && sb == tb {
            continue; // inert
        }
        interactive.push(Transition {
            source: sb,
            action: t.action,
            target: tb,
        });
    }

    // One stable representative per block.
    let mut rep: Vec<Option<u32>> = vec![None; nb];
    for s in 0..m.num_states() as u32 {
        let b = partition.block[s as usize] as usize;
        if rep[b].is_none() && m.is_stable(s, view) && !m.markov_from(s).is_empty() {
            rep[b] = Some(s);
        }
    }
    let mut markov: Vec<MarkovTransition> = Vec::new();
    for (b, r) in rep.iter().enumerate() {
        if let Some(s) = r {
            let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
            for t in m.markov_from(*s) {
                per_block
                    .entry(partition.block[t.target as usize])
                    .or_default()
                    .add(t.rate);
            }
            // det-lint: allow(hash-iter): `from_raw` sorts the Markov
            // relation, so this iteration order never reaches the output.
            for (c, acc) in per_block {
                let rate = acc.value();
                if rate > 0.0 {
                    markov.push(MarkovTransition {
                        source: b as u32,
                        rate,
                        target: c,
                    });
                }
            }
        }
    }

    Imc::from_raw(
        imc.actions().clone(),
        nb,
        partition.block[imc.initial() as usize],
        interactive,
        markov,
    )
}

/// Minimizes an IMC modulo stochastic branching bisimilarity and restricts
/// to the reachable part (the `StoBraBi` quotient of the paper).
///
/// # Examples
///
/// ```
/// use unicon_imc::{bisim, ImcBuilder, View};
///
/// // A τ step in front of a Markov state collapses into it: the quotient
/// // keeps only {0,1} and the observably different goal state {2}.
/// let mut b = ImcBuilder::new(3, 0);
/// b.tau(0, 1);
/// b.markov(1, 2.0, 2);
/// b.interactive("goal", 2, 2);
/// let min = bisim::minimize(&b.build(), View::Open);
/// assert_eq!(min.num_states(), 2);
/// ```
pub fn minimize(imc: &Imc, view: View) -> Imc {
    let part = stochastic_branching_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize (Lemma 3)", view, &[imc], &out);
    crate::audit::record(
        "minimize",
        crate::audit::lemma::LEMMA3,
        view,
        &[imc],
        &out,
        crate::audit::Witness::Minimize {
            view,
            block: part.block.clone(),
            num_blocks: part.num_blocks,
            labels: None,
        },
    );
    out
}

/// Minimizes modulo strong stochastic bisimilarity.
pub fn minimize_strong(imc: &Imc, view: View) -> Imc {
    let part = strong_stochastic_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize_strong (Lemma 3)", view, &[imc], &out);
    out
}

/// Label-respecting minimization: quotients modulo the coarsest stochastic
/// branching bisimulation refining `labels`, and returns the quotient
/// together with its per-state labels.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn minimize_labeled(imc: &Imc, view: View, labels: &[u32]) -> (Imc, Vec<u32>) {
    minimize_labeled_with(imc, view, labels, Refiner::Worklist)
}

/// Like [`minimize_labeled`], with an explicit refiner backend.
///
/// Both backends yield bitwise-identical results; `bench-build` uses this
/// entry point to time them against each other on the same models.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn minimize_labeled_with(
    imc: &Imc,
    view: View,
    labels: &[u32],
    refiner: Refiner,
) -> (Imc, Vec<u32>) {
    let part = match refiner {
        Refiner::Worklist => stochastic_branching_bisimulation_labeled(imc, view, labels),
        Refiner::Reference => {
            reference::stochastic_branching_bisimulation_labeled(imc, view, labels)
        }
    };
    let q = quotient(imc, &part, view);
    let mut block_labels = vec![0u32; part.num_blocks];
    for (s, &b) in part.block.iter().enumerate() {
        block_labels[b as usize] = labels[s];
    }
    let (reduced, old_of_new) = q.restrict_to_reachable_with_map();
    let new_labels = old_of_new
        .iter()
        .map(|&b| block_labels[b as usize])
        .collect();
    crate::audit::preserves_uniformity("minimize_labeled (Lemma 3)", view, &[imc], &reduced);
    crate::audit::record(
        "minimize_labeled",
        crate::audit::lemma::LEMMA3,
        view,
        &[imc],
        &reduced,
        crate::audit::Witness::Minimize {
            view,
            block: part.block.clone(),
            num_blocks: part.num_blocks,
            labels: Some(labels.to_vec()),
        },
    );
    (reduced, new_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ImcBuilder, Uniformity};
    use unicon_numeric::assert_close;

    #[test]
    fn tau_prefix_collapses() {
        // 0 --τ--> 1 --1.0--> 2 --1.0--> 1: all three states are stochastic
        // branching bisimilar (unlabeled rate-1 ticking into the own class),
        // so the quotient is a single state with a rate-1 self-loop.
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        let min = minimize(&b.build(), View::Open);
        assert_eq!(min.num_states(), 1);
        assert_eq!(min.num_interactive(), 0);
        assert_close!(min.exit_rate(min.initial()), 1.0, 1e-12);
    }

    #[test]
    fn tau_prefix_collapses_with_observable_goal() {
        // Same chain, but state 2 is observably different (offers `goal`),
        // so only the τ prefix merges: blocks {0,1} and {2}.
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        b.interactive("goal", 2, 2);
        let m = b.build();
        let part = stochastic_branching_bisimulation(&m, View::Open);
        assert_eq!(part.num_blocks, 2);
        assert_eq!(part.block[0], part.block[1]);
        let min = minimize(&m, View::Open);
        assert_eq!(min.num_states(), 2);
        assert_close!(min.exit_rate(min.initial()), 1.0, 1e-12);
    }

    #[test]
    fn symmetric_markov_branches_lump() {
        // 0 branches at equal rates into two states with identical behaviour.
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 1.0, 1);
        b.markov(0, 1.0, 2);
        b.interactive("done", 1, 3);
        b.interactive("done", 2, 3);
        let min = minimize(&b.build(), View::Open);
        // blocks: {0}, {1,2}, {3}
        assert_eq!(min.num_states(), 3);
        // rate from {0} into {1,2} lumps to 2.0
        let init = min.initial();
        assert_close!(min.exit_rate(init), 2.0, 1e-12);
    }

    #[test]
    fn different_rates_do_not_merge() {
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 1.0, 2);
        b.markov(1, 2.0, 2);
        b.interactive("x", 2, 0);
        b.interactive("x", 2, 1);
        let part = stochastic_branching_bisimulation(&b.build(), View::Open);
        assert_ne!(part.block[0], part.block[1]);
    }

    #[test]
    fn visible_actions_block_merging() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("a", 0, 0);
        b.interactive("b", 1, 1);
        let part = stochastic_branching_bisimulation(&b.build(), View::Open);
        assert_eq!(part.num_blocks, 2);
    }

    #[test]
    fn quotient_preserves_uniformity_corollary1() {
        // uniform model with redundant states
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 2.0, 1);
        b.markov(0, 1.0, 0);
        b.markov(1, 3.0, 2);
        b.markov(2, 3.0, 1);
        b.tau(3, 0); // unreachable tau state
        let m = b.build();
        assert!(m.is_uniform(View::Open));
        let min = minimize(&m, View::Open);
        assert!(min.is_uniform(View::Open));
        // and the rate is preserved
        assert_eq!(min.uniformity(View::Open), Uniformity::Uniform(3.0));
    }

    #[test]
    fn minimization_is_idempotent() {
        let mut b = ImcBuilder::new(5, 0);
        b.tau(0, 1);
        b.tau(0, 2);
        b.markov(1, 1.0, 3);
        b.markov(2, 1.0, 4);
        b.interactive("end", 3, 3);
        b.interactive("end", 4, 4);
        let once = minimize(&b.build(), View::Open);
        let twice = minimize(&once, View::Open);
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_interactive(), twice.num_interactive());
        assert_eq!(once.num_markov(), twice.num_markov());
    }

    #[test]
    fn strong_is_finer_than_branching() {
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        let m = b.build();
        let strong = strong_stochastic_bisimulation(&m, View::Open);
        let branching = stochastic_branching_bisimulation(&m, View::Open);
        assert!(strong.num_blocks >= branching.num_blocks);
        // strong keeps the tau state separate; branching merges everything
        assert_eq!(strong.num_blocks, 2);
        assert_eq!(branching.num_blocks, 1);
    }

    #[test]
    fn closed_view_pre_emption_changes_result() {
        // Visible self-loop + Markov: hybrid state.
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("v", 0, 1);
        b.markov(0, 5.0, 1); // pre-empted under Closed
        b.interactive("v", 1, 1);
        let m = b.build();
        let closed = minimize(&m, View::Closed);
        // under urgency both states behave identically: only `v` matters
        assert_eq!(closed.num_states(), 1);
        let open = minimize(&m, View::Open);
        assert_eq!(open.num_states(), 2);
    }

    #[test]
    fn quotient_respects_initial_state() {
        let mut b = ImcBuilder::new(3, 2);
        b.tau(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        let m = b.build();
        let min = minimize(&m, View::Open);
        // everything merges into one ticking state; the quotient's initial
        // state must carry the Markov behaviour
        assert_eq!(min.num_states(), 1);
        assert!(min.exit_rate(min.initial()) > 0.0);
    }

    #[test]
    fn weak_is_coarser_than_branching() {
        // a.(b + τ.c) + a.c  vs  a.(b + τ.c): weakly bisimilar initial
        // states, not branching bisimilar.
        let mut b = ImcBuilder::new(12, 0);
        // process A at 0
        b.interactive("a", 0, 1);
        b.interactive("b", 1, 2);
        b.tau(1, 3);
        b.interactive("c", 3, 4);
        // process B at 5 (extra a.c summand)
        b.interactive("a", 5, 6);
        b.interactive("b", 6, 7);
        b.tau(6, 8);
        b.interactive("c", 8, 9);
        b.interactive("a", 5, 10);
        b.interactive("c", 10, 11);
        let m = b.build();
        let weak = stochastic_weak_bisimulation(&m, View::Open);
        assert_eq!(weak.block[0], weak.block[5], "weakly bisimilar");
        let branching = stochastic_branching_bisimulation(&m, View::Open);
        assert_ne!(branching.block[0], branching.block[5], "not branching");
        assert!(weak.num_blocks <= branching.num_blocks);
    }

    #[test]
    fn weak_quotient_preserves_uniformity() {
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 2.0, 1);
        b.tau(1, 2);
        b.markov(2, 2.0, 3);
        b.markov(3, 2.0, 0);
        let m = b.build();
        assert!(m.is_uniform(View::Open));
        let q = minimize_weak(&m, View::Open);
        assert!(q.is_uniform(View::Open));
        assert_eq!(q.uniformity(View::Open).rate(), Some(2.0));
    }

    #[test]
    fn weak_respects_labels() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        let m = b.build();
        let part = stochastic_weak_bisimulation_labeled(&m, View::Open, &[7, 9]);
        assert_eq!(part.num_blocks, 2);
        let part_unlabeled = stochastic_weak_bisimulation(&m, View::Open);
        assert_eq!(part_unlabeled.num_blocks, 1);
    }

    #[test]
    fn interactive_duplicates_dedup_in_quotient() {
        let mut b = ImcBuilder::new(4, 0);
        b.interactive("a", 0, 1);
        b.interactive("a", 0, 2);
        b.markov(1, 1.0, 3);
        b.markov(2, 1.0, 3);
        b.markov(3, 1.0, 1);
        let min = minimize(&b.build(), View::Open);
        // states 1,2,3 merge (rate-1 ticking within the class); the two
        // duplicate a-transitions collapse into one
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.num_interactive(), 1);
    }

    /// Deterministically grows a pseudo-random IMC: a small action alphabet
    /// (τ included), rates drawn from a quantization-friendly set, plus a
    /// sprinkle of τ chains so inert closures are non-trivial. With
    /// `tau_acyclic`, τ transitions only ever go from lower to higher state
    /// ids: quotients of divergent (Zeno) models may deadlock a τ-cycle
    /// block, which the uniformity audit rightly rejects, so quotient-level
    /// differential tests stick to divergence-free inputs.
    fn random_imc(seed: u64, n: usize, tau_acyclic: bool) -> Imc {
        use unicon_numeric::rng::{Rng, XorShift64};
        let mut rng = XorShift64::seed_from_u64(seed);
        let actions = ["a", "b", "c", "tau"];
        let rates = [0.5, 1.0, 1.0, 2.0, 3.0];
        let mut b = ImcBuilder::new(n, 0);
        let n_int = n + rng.next_u64() as usize % (2 * n);
        for _ in 0..n_int {
            let src = (rng.next_u64() % n as u64) as u32;
            let tgt = (rng.next_u64() % n as u64) as u32;
            let act = actions[rng.next_u64() as usize % actions.len()];
            if act == "tau" {
                if tau_acyclic {
                    if src != tgt {
                        b.tau(src.min(tgt), src.max(tgt));
                    }
                } else {
                    b.tau(src, tgt);
                }
            } else {
                b.interactive(act, src, tgt);
            }
        }
        let n_mkv = n + rng.next_u64() as usize % (2 * n);
        for _ in 0..n_mkv {
            let src = (rng.next_u64() % n as u64) as u32;
            let tgt = (rng.next_u64() % n as u64) as u32;
            let rate = rates[rng.next_u64() as usize % rates.len()];
            b.markov(src, rate, tgt);
        }
        b.build()
    }

    fn random_labels(seed: u64, n: usize, kinds: u32) -> Vec<u32> {
        use unicon_numeric::rng::{Rng, XorShift64};
        let mut rng = XorShift64::seed_from_u64(seed ^ 0x9e37_79b9);
        (0..n)
            .map(|_| (rng.next_u64() % kinds as u64) as u32)
            .collect()
    }

    /// The worklist refiner must agree **bitwise** with the reference
    /// oracle — same block vector, same block count — on random IMCs, for
    /// every relation and view, labeled or not.
    #[test]
    fn worklist_matches_reference_on_random_imcs() {
        for seed in 0..40u64 {
            let n = 2 + (seed as usize * 7) % 29;
            let m = random_imc(seed, n, false);
            for view in [View::Open, View::Closed] {
                assert_eq!(
                    stochastic_branching_bisimulation(&m, view),
                    reference::stochastic_branching_bisimulation(&m, view),
                    "branching mismatch, seed {seed}, {view:?}"
                );
                assert_eq!(
                    stochastic_weak_bisimulation(&m, view),
                    reference::stochastic_weak_bisimulation(&m, view),
                    "weak mismatch, seed {seed}, {view:?}"
                );
                assert_eq!(
                    strong_stochastic_bisimulation(&m, view),
                    reference::strong_stochastic_bisimulation(&m, view),
                    "strong mismatch, seed {seed}, {view:?}"
                );
                let labels = random_labels(seed, n, 3);
                assert_eq!(
                    stochastic_branching_bisimulation_labeled(&m, view, &labels),
                    reference::stochastic_branching_bisimulation_labeled(&m, view, &labels),
                    "labeled branching mismatch, seed {seed}, {view:?}"
                );
                assert_eq!(
                    stochastic_weak_bisimulation_labeled(&m, view, &labels),
                    reference::stochastic_weak_bisimulation_labeled(&m, view, &labels),
                    "labeled weak mismatch, seed {seed}, {view:?}"
                );
            }
        }
    }

    /// Same check at the quotient level: the minimized IMCs (and labels)
    /// must be identical transition-for-transition.
    #[test]
    fn refiner_backends_yield_identical_quotients() {
        for seed in 40..60u64 {
            let n = 3 + (seed as usize * 5) % 23;
            let m = random_imc(seed, n, true);
            let labels = random_labels(seed, n, 4);
            let (qw, lw) = minimize_labeled_with(&m, View::Closed, &labels, Refiner::Worklist);
            let (qr, lr) = minimize_labeled_with(&m, View::Closed, &labels, Refiner::Reference);
            assert_eq!(lw, lr, "label mismatch, seed {seed}");
            assert_eq!(
                qw.num_states(),
                qr.num_states(),
                "state mismatch, seed {seed}"
            );
            assert_eq!(
                qw.interactive(),
                qr.interactive(),
                "interactive mismatch, seed {seed}"
            );
            assert_eq!(
                qw.markov().len(),
                qr.markov().len(),
                "markov count mismatch, seed {seed}"
            );
            for (a, b) in qw.markov().iter().zip(qr.markov()) {
                assert_eq!(a.source, b.source, "seed {seed}");
                assert_eq!(a.target, b.target, "seed {seed}");
                assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "rate bits, seed {seed}");
            }
        }
    }

    /// τ-cycles (Zeno structure) must not hang or diverge the worklist
    /// refiner, and the two backends must still agree on them.
    #[test]
    fn worklist_handles_tau_cycles() {
        let mut b = ImcBuilder::new(6, 0);
        for s in 0..5u32 {
            b.tau(s, s + 1);
        }
        b.tau(5, 0); // τ-cycle through all six states
        b.markov(2, 1.0, 3);
        b.interactive("x", 4, 0);
        let m = b.build();
        for view in [View::Open, View::Closed] {
            assert_eq!(
                stochastic_branching_bisimulation(&m, view),
                reference::stochastic_branching_bisimulation(&m, view)
            );
            assert_eq!(
                stochastic_weak_bisimulation(&m, view),
                reference::stochastic_weak_bisimulation(&m, view)
            );
        }
    }

    #[test]
    fn singleton_model() {
        let single = ImcBuilder::new(1, 0).build();
        let p = stochastic_branching_bisimulation(&single, View::Open);
        assert_eq!(p.num_blocks, 1);
        assert_eq!(
            p,
            reference::stochastic_branching_bisimulation(&single, View::Open)
        );
    }
}
