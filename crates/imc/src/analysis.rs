//! Structural analyses on IMCs: Zenoness (interactive cycles), deadlock
//! queries and DOT export.
//!
//! Under the closed-system view, interactive transitions happen in zero
//! time; a cycle of interactive transitions therefore lets infinitely many
//! actions happen instantaneously ("Zeno behaviour"). The uIMC → uCTMDP
//! transformation requires Zeno-freeness, checked here.

use std::fmt::Write as _;

use crate::model::Imc;

/// Searches for a cycle in the interactive-transition graph.
///
/// Returns a witness cycle (a sequence of states `s₀, …, s_k` with
/// interactive transitions between the consecutive states and from `s_k`
/// back to `s₀`) or `None` if the model is Zeno-free.
///
/// # Examples
///
/// ```
/// use unicon_imc::{analysis, ImcBuilder};
///
/// let mut b = ImcBuilder::new(2, 0);
/// b.interactive("a", 0, 1);
/// b.interactive("b", 1, 0);
/// assert!(analysis::interactive_cycle(&b.build()).is_some());
/// ```
pub fn interactive_cycle(imc: &Imc) -> Option<Vec<u32>> {
    // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
    let n = imc.num_states();
    let mut color = vec![0u8; n];
    let mut parent = vec![u32::MAX; n];
    for root in 0..n as u32 {
        if color[root as usize] != 0 {
            continue;
        }
        // stack of (state, next transition index)
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        color[root as usize] = 1;
        while let Some(&mut (s, ref mut idx)) = stack.last_mut() {
            let trans = imc.interactive_from(s);
            if *idx < trans.len() {
                let t = trans[*idx].target;
                *idx += 1;
                match color[t as usize] {
                    0 => {
                        color[t as usize] = 1;
                        parent[t as usize] = s;
                        stack.push((t, 0));
                    }
                    1 => {
                        // found a cycle t -> ... -> s -> t
                        let mut cycle = vec![s];
                        let mut cur = s;
                        while cur != t {
                            cur = parent[cur as usize];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[s as usize] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Whether the model is free of interactive cycles (no Zeno behaviour under
/// the closed view).
pub fn is_zeno_free(imc: &Imc) -> bool {
    interactive_cycle(imc).is_none()
}

/// States with no outgoing transitions at all (the paper's `S_A`).
pub fn absorbing_states(imc: &Imc) -> Vec<u32> {
    (0..imc.num_states() as u32)
        .filter(|&s| imc.interactive_from(s).is_empty() && imc.markov_from(s).is_empty())
        .collect()
}

/// Renders an IMC as GraphViz DOT: solid edges for interactive transitions,
/// dashed edges for Markov transitions (mirroring the paper's `-->` vs
/// `--->` notation).
pub fn to_dot(imc: &Imc, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").expect("writing to a String cannot fail");
    writeln!(out, "  rankdir=LR;").expect("writing to a String cannot fail");
    writeln!(out, "  {} [style=bold];", imc.initial()).expect("writing to a String cannot fail");
    for t in imc.interactive() {
        writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            t.source,
            t.target,
            imc.actions().name(t.action)
        )
        .expect("writing to a String cannot fail");
    }
    for m in imc.markov() {
        writeln!(
            out,
            "  {} -> {} [label=\"{}\", style=dashed];",
            m.source, m.target, m.rate
        )
        .expect("writing to a String cannot fail");
    }
    writeln!(out, "}}").expect("writing to a String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ImcBuilder;

    #[test]
    fn acyclic_is_zeno_free() {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("a", 0, 1);
        b.interactive("b", 1, 2);
        b.markov(2, 1.0, 0); // markov closes the loop: still zeno-free
        let m = b.build();
        assert!(is_zeno_free(&m));
        assert_eq!(interactive_cycle(&m), None);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut b = ImcBuilder::new(1, 0);
        b.interactive("a", 0, 0);
        let c = interactive_cycle(&b.build()).expect("cycle");
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn two_state_cycle_witness() {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("go", 0, 1);
        b.interactive("a", 1, 2);
        b.interactive("b", 2, 1);
        let c = interactive_cycle(&b.build()).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn absorbing_detection() {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("a", 0, 1);
        b.markov(1, 1.0, 2);
        let m = b.build();
        assert_eq!(absorbing_states(&m), vec![2]);
    }

    #[test]
    fn dot_contains_both_edge_styles() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("act", 0, 1);
        b.markov(1, 2.5, 0);
        let d = to_dot(&b.build(), "m");
        assert!(d.contains("label=\"act\""));
        assert!(d.contains("style=dashed"));
        assert!(d.contains("2.5"));
    }
}
