//! Textual IMC exchange format (CADP-compatible flavour).
//!
//! CADP's BCG graphs represent IMCs as ordinary LTSs whose Markov
//! transitions carry labels of the form `rate <λ>`. We read and write the
//! same convention on top of the Aldebaran (`.aut`) syntax, which makes the
//! models of this workspace exchangeable with the toolbox the paper's
//! experiments were built on.
//!
//! ```text
//! des (0, 3, 2)
//! (0, "fail", 1)
//! (0, "rate 0.002", 0)
//! (1, "rate 2", 0)
//! ```

use std::fmt::Write as _;

use crate::model::{Imc, ImcBuilder};

/// Error raised when parsing an IMC-AUT file fails.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseImcError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseImcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "imc parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseImcError {}

/// Serializes an IMC in extended Aldebaran format (`rate λ` labels for
/// Markov transitions, `i` for τ).
///
/// # Examples
///
/// ```
/// use unicon_imc::{io, ImcBuilder};
///
/// let mut b = ImcBuilder::new(2, 0);
/// b.interactive("fail", 0, 1);
/// b.markov(1, 2.0, 0);
/// let text = io::to_aut(&b.build());
/// assert!(text.contains("\"rate 2\""));
/// ```
pub fn to_aut(imc: &Imc) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "des ({}, {}, {})",
        imc.initial(),
        imc.num_interactive() + imc.num_markov(),
        imc.num_states()
    )
    .expect("writing to a String cannot fail");
    for t in imc.interactive() {
        let name = imc.actions().name(t.action);
        let label = if t.action.is_tau() { "i" } else { name };
        writeln!(out, "({}, \"{}\", {})", t.source, label, t.target)
            .expect("writing to a String cannot fail");
    }
    for m in imc.markov() {
        writeln!(out, "({}, \"rate {}\", {})", m.source, m.rate, m.target)
            .expect("writing to a String cannot fail");
    }
    out
}

/// Parses an IMC from extended Aldebaran format.
///
/// Labels of the form `rate <positive float>` become Markov transitions,
/// `i` becomes τ, everything else is a visible interactive action.
///
/// # Errors
///
/// [`ParseImcError`] on malformed input.
pub fn from_aut(text: &str) -> Result<Imc, ParseImcError> {
    let err = |line: usize, message: String| ParseImcError { line, message };
    let mut lines = text.lines().enumerate();
    let (first_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or_else(|| err(1, "empty input".into()))?;
    let header = header.trim();
    let body = header
        .strip_prefix("des")
        .and_then(|s| s.trim().strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(first_no + 1, "expected 'des (...)' header".into()))?;
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(err(first_no + 1, "des header needs three fields".into()));
    }
    let initial: u32 = parts[0]
        .parse()
        .map_err(|_| err(first_no + 1, "bad initial state".into()))?;
    let declared: usize = parts[1]
        .parse()
        .map_err(|_| err(first_no + 1, "bad transition count".into()))?;
    let num_states: usize = parts[2]
        .parse()
        .map_err(|_| err(first_no + 1, "bad state count".into()))?;
    if num_states == 0 || (initial as usize) >= num_states {
        return Err(err(first_no + 1, "bad state space".into()));
    }

    let mut b = ImcBuilder::new(num_states, initial);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let inner = line
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| err(no + 1, "expected '(from, \"label\", to)'".into()))?;
        let (from_str, rest) = inner
            .split_once(',')
            .ok_or_else(|| err(no + 1, "missing fields".into()))?;
        let (label_part, to_str) = rest
            .rsplit_once(',')
            .ok_or_else(|| err(no + 1, "missing fields".into()))?;
        let from: u32 = from_str
            .trim()
            .parse()
            .map_err(|_| err(no + 1, "bad source state".into()))?;
        let to: u32 = to_str
            .trim()
            .parse()
            .map_err(|_| err(no + 1, "bad target state".into()))?;
        if (from as usize) >= num_states || (to as usize) >= num_states {
            return Err(err(no + 1, "state out of range".into()));
        }
        let label = label_part.trim();
        let label = label
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(label);
        if let Some(rate_str) = label.strip_prefix("rate ") {
            let rate: f64 = rate_str
                .trim()
                .parse()
                .map_err(|_| err(no + 1, format!("bad rate '{rate_str}'")))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(err(no + 1, format!("rate must be positive, got {rate}")));
            }
            b.markov(from, rate, to);
        } else if label == "i" {
            b.tau(from, to);
        } else {
            b.interactive(label, from, to);
        }
        seen += 1;
    }
    if seen != declared {
        return Err(err(
            first_no + 1,
            format!("header promised {declared} transitions, found {seen}"),
        ));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::View;

    fn sample() -> Imc {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("fail", 0, 1);
        b.tau(1, 2);
        b.markov(2, 0.5, 0);
        b.markov(2, 1.5, 1);
        b.markov(0, 2.0, 2);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let m = sample();
        let text = to_aut(&m);
        let back = from_aut(&text).expect("own output parses");
        assert_eq!(back.num_states(), m.num_states());
        assert_eq!(back.num_interactive(), m.num_interactive());
        assert_eq!(back.num_markov(), m.num_markov());
        assert_eq!(back.rate(2, 1), 1.5);
        assert!(back.has_tau(1));
        assert_eq!(back.uniformity(View::Closed), m.uniformity(View::Closed));
    }

    #[test]
    fn rate_labels_are_emitted() {
        let text = to_aut(&sample());
        assert!(text.contains("\"rate 0.5\""));
        assert!(text.contains("\"rate 2\""));
        assert!(text.contains("\"i\""));
        assert!(text.contains("\"fail\""));
    }

    #[test]
    fn parse_rejects_nonpositive_rate() {
        let e = from_aut("des (0, 1, 2)\n(0, \"rate -1\", 1)\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn parse_rejects_wrong_count() {
        assert!(from_aut("des (0, 2, 2)\n(0, \"a\", 1)\n").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_aut("").is_err());
        assert!(from_aut("not a header").is_err());
        assert!(from_aut("des (9, 0, 2)").is_err());
        assert!(from_aut("des (0, 1, 2)\n(0, \"rate abc\", 1)\n").is_err());
    }

    #[test]
    fn action_named_like_rate_prefix_still_works() {
        // "rated" does not start with "rate " followed by a number space
        let m = from_aut("des (0, 1, 2)\n(0, \"rated\", 1)\n").expect("parses");
        assert_eq!(m.num_interactive(), 1);
        assert_eq!(m.num_markov(), 0);
    }

    #[test]
    fn multiset_markov_duplicates_roundtrip() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(0, 1.0, 1);
        b.markov(1, 2.0, 0);
        let m = b.build();
        let back = from_aut(&to_aut(&m)).expect("parses");
        assert_eq!(back.num_markov(), 3);
        assert_eq!(back.rate(0, 1), 2.0);
    }
}
