//! Interactive Markov chains (IMCs) and the uniformity-by-construction
//! toolkit — the heart of the paper's compositional theory.
//!
//! An IMC orthogonally combines a labeled transition system (interactive
//! transitions) with a CTMC (Markov transitions). The paper's central
//! observation is that *uniformity* — all stable states sharing one exit
//! rate `E` — is preserved by every operator of the modelling trajectory:
//!
//! * **hiding** ([`Imc::hide`], Lemma 1),
//! * **parallel composition** ([`Imc::parallel`], Lemma 2 — the uniform
//!   rates of the components *add up*),
//! * **stochastic branching bisimulation minimization**
//!   ([`bisim::minimize`], Lemma 3 / Corollary 1),
//! * and the **elapse operator** ([`elapse::elapse`]), which converts a
//!   uniformized phase-type distribution into a uniform time-constraint IMC.
//!
//! Hence a model composed from uniform parts is uniform *by construction*
//! and ready for the uIMC → uCTMDP transformation of `unicon-transform`.
//!
//! # Examples
//!
//! ```
//! use unicon_ctmc::PhaseType;
//! use unicon_imc::{elapse, Imc, View};
//! use unicon_lts::LtsBuilder;
//!
//! // A component that fails and is repaired (untimed LTS).
//! let mut b = LtsBuilder::new(2, 0);
//! b.add("fail", 0, 1);
//! b.add("repair", 1, 0);
//! let component = Imc::from_lts(&b.build());
//!
//! // Time constraint: `fail` is delayed by Exp(0.01), restarting on `repair`.
//! let delay = PhaseType::exponential(0.01).uniformize_at_max();
//! let constraint = elapse::elapse(&delay, "fail", "repair");
//!
//! let timed = constraint.parallel(&component, &["fail", "repair"]);
//! // Uniform by construction (Lemma 2).
//! assert_eq!(timed.uniformity(View::Open).rate(), Some(0.01));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod bisim;
pub mod elapse;
pub mod io;
mod model;
pub mod ops;

pub use model::{Imc, ImcBuilder, MarkovTransition, StateKind, Uniformity, View};
