//! Composition operators on IMCs: hiding, relabelling, parallel composition
//! and the maximal-progress / urgency cuts.
//!
//! These implement the structural operational semantics rules of Section 3
//! of the paper. Hiding and parallel composition preserve uniformity
//! (Lemmas 1 and 2); the property tests of this crate check both on random
//! uniform IMCs.

use std::collections::HashMap;

use unicon_lts::{ActionId, ActionTable, Transition};

use crate::model::{Imc, MarkovTransition, View};

impl Imc {
    /// Hides (internalizes) the named actions: each becomes τ. Markov
    /// transitions are untouched (third SOS rule of hiding).
    ///
    /// Lemma 1: the result is uniform whenever `self` is (hiding never adds
    /// stable states).
    ///
    /// Unknown action names are ignored.
    pub fn hide(&self, actions: &[&str]) -> Imc {
        let hidden: Vec<ActionId> = actions
            .iter()
            .filter_map(|a| self.actions().lookup(a))
            .collect();
        let out = self.map_actions(|id| if hidden.contains(&id) { None } else { Some(id) });
        crate::audit::preserves_uniformity("hide (Lemma 1)", View::Open, &[self], &out);
        crate::audit::record(
            "hide",
            crate::audit::lemma::LEMMA1,
            View::Open,
            &[self],
            &out,
            crate::audit::Witness::Hide {
                hidden: actions.iter().map(|a| a.to_string()).collect(),
            },
        );
        out
    }

    /// Hides every visible action: the *closed system view* used right
    /// before the transformation to a CTMDP is purely structural, but
    /// closing also makes all interactive transitions internal.
    pub fn hide_all(&self) -> Imc {
        let out = self.map_actions(|_| None);
        crate::audit::preserves_uniformity("hide_all (Lemma 1)", View::Open, &[self], &out);
        crate::audit::record(
            "hide_all",
            crate::audit::lemma::LEMMA1,
            View::Open,
            &[self],
            &out,
            crate::audit::Witness::Hide {
                hidden: self
                    .actions()
                    .visible()
                    .map(|(_, n)| n.to_string())
                    .collect(),
            },
        );
        out
    }

    /// Renames actions according to `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if τ appears as a `from` action.
    pub fn relabel(&self, map: &[(&str, &str)]) -> Imc {
        let rename: HashMap<&str, &str> = map.iter().copied().collect();
        assert!(
            !rename.contains_key(unicon_lts::TAU_NAME),
            "the internal action tau cannot be relabelled"
        );
        let mut new_actions = ActionTable::new();
        let translate: Vec<ActionId> = self
            .actions()
            .iter()
            .map(|(_, name)| new_actions.intern(rename.get(name).copied().unwrap_or(name)))
            .collect();
        let interactive = self
            .interactive()
            .iter()
            .map(|t| Transition {
                source: t.source,
                action: translate[t.action.index()],
                target: t.target,
            })
            .collect();
        let out = Imc::from_raw(
            new_actions,
            self.num_states(),
            self.initial(),
            interactive,
            self.markov().to_vec(),
        );
        crate::audit::record(
            "relabel",
            crate::audit::lemma::RELABEL,
            View::Open,
            &[self],
            &out,
            crate::audit::Witness::Relabel {
                map: map
                    .iter()
                    .map(|(f, t)| (f.to_string(), t.to_string()))
                    .collect(),
            },
        );
        out
    }

    /// Internal helper: re-map every action id; `None` means "becomes τ".
    fn map_actions<F: FnMut(ActionId) -> Option<ActionId>>(&self, mut f: F) -> Imc {
        let mut new_actions = ActionTable::new();
        let translate: Vec<ActionId> = self
            .actions()
            .iter()
            .map(|(id, name)| match f(id) {
                Some(id) if !id.is_tau() => new_actions.intern(name),
                _ => ActionId::TAU,
            })
            .collect();
        let interactive = self
            .interactive()
            .iter()
            .map(|t| Transition {
                source: t.source,
                action: translate[t.action.index()],
                target: t.target,
            })
            .collect();
        Imc::from_raw(
            new_actions,
            self.num_states(),
            self.initial(),
            interactive,
            self.markov().to_vec(),
        )
    }

    /// CSP/LOTOS-style parallel composition `self |[sync]| other`.
    ///
    /// Interactive transitions synchronize on the actions of `sync` and
    /// interleave otherwise; Markov transitions always interleave (justified
    /// by the memoryless property). Only the reachable product is built.
    ///
    /// Lemma 2: if both operands are uniform with rates `E₁` and `E₂`, the
    /// composition is uniform with rate `E₁ + E₂` — provided each operand
    /// carries its full exit rate in every state that can appear inside a
    /// stable product state (the elapse construction guarantees this).
    ///
    /// # Panics
    ///
    /// Panics if `sync` contains τ.
    pub fn parallel(&self, other: &Imc, sync: &[&str]) -> Imc {
        self.parallel_with_map(other, sync).0
    }

    /// Like [`Imc::parallel`], additionally returning, for every product
    /// state, the pair of component states it represents. Needed when state
    /// properties (goal sets) must be evaluated on the composition.
    ///
    /// # Panics
    ///
    /// Panics if `sync` contains τ.
    pub fn parallel_with_map(&self, other: &Imc, sync: &[&str]) -> (Imc, Vec<(u32, u32)>) {
        assert!(
            !sync.contains(&unicon_lts::TAU_NAME),
            "tau cannot be in a synchronization set"
        );
        let mut actions = ActionTable::new();
        let left_tr: Vec<ActionId> = self
            .actions()
            .iter()
            .map(|(_, n)| actions.intern(n))
            .collect();
        let right_tr: Vec<ActionId> = other
            .actions()
            .iter()
            .map(|(_, n)| actions.intern(n))
            .collect();
        let sync_ids: Vec<ActionId> = sync.iter().map(|a| actions.intern(a)).collect();
        // Per-action lookup table over the union alphabet: O(1) sync tests
        // instead of a linear scan per transition.
        let mut is_sync = vec![false; actions.len()];
        for &a in &sync_ids {
            is_sync[a.index()] = true;
        }
        // Union action id -> right-local action id, so synchronized matches
        // can binary-search the sorted per-state slice of `other` instead of
        // filtering it transition by transition. Interning is injective, so
        // at most one right-local id maps to each union id.
        let mut right_of_union: Vec<Option<ActionId>> = vec![None; actions.len()];
        for (local, &union) in right_tr.iter().enumerate() {
            right_of_union[union.index()] = Some(ActionId(local as u32));
        }

        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut states: Vec<(u32, u32)> = Vec::new();
        let mut interactive: Vec<Transition> = Vec::new();
        let mut markov: Vec<MarkovTransition> = Vec::new();
        let start = (self.initial(), other.initial());
        index.insert(start, 0);
        states.push(start);
        let mut frontier = vec![start];

        // Note on closures: `alloc` needs mutable access to the shared
        // exploration state, so it is a small fn-style helper instead.
        fn alloc(
            index: &mut HashMap<(u32, u32), u32>,
            states: &mut Vec<(u32, u32)>,
            frontier: &mut Vec<(u32, u32)>,
            tgt: (u32, u32),
        ) -> u32 {
            *index.entry(tgt).or_insert_with(|| {
                states.push(tgt);
                frontier.push(tgt);
                (states.len() - 1) as u32
            })
        }

        while let Some((ls, rs)) = frontier.pop() {
            let src = index[&(ls, rs)];
            // Per-state adjacency slices, hoisted once per product state.
            let left_int = self.interactive_from(ls);
            let right_int = other.interactive_from(rs);
            // Interleaved interactive moves.
            for t in left_int {
                let a = left_tr[t.action.index()];
                if !is_sync[a.index()] {
                    let id = alloc(&mut index, &mut states, &mut frontier, (t.target, rs));
                    interactive.push(Transition {
                        source: src,
                        action: a,
                        target: id,
                    });
                }
            }
            for t in right_int {
                let a = right_tr[t.action.index()];
                if !is_sync[a.index()] {
                    let id = alloc(&mut index, &mut states, &mut frontier, (ls, t.target));
                    interactive.push(Transition {
                        source: src,
                        action: a,
                        target: id,
                    });
                }
            }
            // Synchronized interactive moves. Right matches for one action
            // form a contiguous run of the (action, target)-sorted slice,
            // found by binary search — same transitions, same order, so the
            // product state numbering is untouched.
            for lt in left_int {
                let a = left_tr[lt.action.index()];
                if is_sync[a.index()] {
                    let Some(ra) = right_of_union[a.index()] else {
                        continue;
                    };
                    let lo = right_int.partition_point(|t| t.action < ra);
                    let hi = lo + right_int[lo..].partition_point(|t| t.action == ra);
                    for rt in &right_int[lo..hi] {
                        let id = alloc(
                            &mut index,
                            &mut states,
                            &mut frontier,
                            (lt.target, rt.target),
                        );
                        interactive.push(Transition {
                            source: src,
                            action: a,
                            target: id,
                        });
                    }
                }
            }
            // Markov moves: plain interleaving.
            for m in self.markov_from(ls) {
                let id = alloc(&mut index, &mut states, &mut frontier, (m.target, rs));
                markov.push(MarkovTransition {
                    source: src,
                    rate: m.rate,
                    target: id,
                });
            }
            for m in other.markov_from(rs) {
                let id = alloc(&mut index, &mut states, &mut frontier, (ls, m.target));
                markov.push(MarkovTransition {
                    source: src,
                    rate: m.rate,
                    target: id,
                });
            }
        }
        let n = states.len();
        let out = Imc::from_raw(actions, n, 0, interactive, markov);
        crate::audit::preserves_uniformity("parallel (Lemma 2)", View::Open, &[self, other], &out);
        crate::audit::record(
            "parallel",
            crate::audit::lemma::LEMMA2,
            View::Open,
            &[self, other],
            &out,
            crate::audit::Witness::Parallel {
                sync: sync.iter().map(|a| a.to_string()).collect(),
            },
        );
        (out, states)
    }

    /// The visible action names occurring in both models' alphabets.
    pub fn shared_alphabet<'a>(&'a self, other: &'a Imc) -> Vec<&'a str> {
        self.actions()
            .visible()
            .filter_map(|(_, n)| other.actions().lookup(n).map(|_| n))
            .collect()
    }

    /// Restricts to the reachable states, renumbering in state order.
    pub fn restrict_to_reachable(&self) -> Imc {
        self.restrict_to_reachable_with_map().0
    }

    /// Like [`Imc::restrict_to_reachable`], additionally returning, for
    /// every new state, the old state it came from.
    pub fn restrict_to_reachable_with_map(&self) -> (Imc, Vec<u32>) {
        let reach = self.reachable_states();
        let mut map = vec![u32::MAX; self.num_states()];
        let mut next = 0u32;
        for (s, &r) in reach.iter().enumerate() {
            if r {
                map[s] = next;
                next += 1;
            }
        }
        let interactive = self
            .interactive()
            .iter()
            .filter(|t| reach[t.source as usize])
            .map(|t| Transition {
                source: map[t.source as usize],
                action: t.action,
                target: map[t.target as usize],
            })
            .collect();
        let markov = self
            .markov()
            .iter()
            .filter(|m| reach[m.source as usize])
            .map(|m| MarkovTransition {
                source: map[m.source as usize],
                rate: m.rate,
                target: map[m.target as usize],
            })
            .collect();
        let mut old_of_new = vec![0u32; next as usize];
        for (old, &new) in map.iter().enumerate() {
            if new != u32::MAX {
                old_of_new[new as usize] = old as u32;
            }
        }
        (
            Imc::from_raw(
                self.actions().clone(),
                next as usize,
                map[self.initial() as usize],
                interactive,
                markov,
            ),
            old_of_new,
        )
    }

    /// Applies the pre-emption cut of the given view: removes Markov
    /// transitions from unstable states (τ pre-empts under `Open`; any
    /// interactive transition pre-empts under `Closed`).
    ///
    /// Under `Closed` this is exactly step (1) of the uIMC → uCTMDP
    /// transformation: hybrid states lose their Markov transitions and
    /// become interactive states.
    pub fn apply_pre_emption(&self, view: View) -> Imc {
        let markov = self
            .markov()
            .iter()
            .filter(|m| self.is_stable(m.source, view))
            .copied()
            .collect();
        Imc::from_raw(
            self.actions().clone(),
            self.num_states(),
            self.initial(),
            self.interactive().to_vec(),
            markov,
        )
    }
}

/// Parallel composition of a whole list of IMCs over pairwise-distinct
/// synchronization needs: composes left to right with the given per-step
/// synchronization sets (`parts.len() - 1` entries).
///
/// # Panics
///
/// Panics if `parts` is empty or the number of sync sets does not match.
pub fn compose_chain(parts: &[Imc], syncs: &[&[&str]]) -> Imc {
    assert!(!parts.is_empty(), "need at least one IMC");
    assert_eq!(
        syncs.len(),
        parts.len().saturating_sub(1),
        "need one synchronization set per composition step"
    );
    let mut acc = parts[0].clone();
    for (p, sync) in parts[1..].iter().zip(syncs) {
        acc = acc.parallel(p, sync);
    }
    acc
}

/// Fully interleaves a list of IMCs (no synchronization at all).
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn interleave_all(parts: &[Imc]) -> Imc {
    assert!(!parts.is_empty(), "need at least one IMC");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = acc.parallel(p, &[]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ImcBuilder, StateKind, Uniformity};
    use unicon_numeric::assert_close;

    /// A two-state uniform IMC: ping-pong Markov at rate `e`, with a visible
    /// self-signal `a` on state 0.
    fn uniform_pair(e: f64, action: &str) -> Imc {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, e, 1);
        b.markov(1, e, 0);
        b.interactive(action, 0, 0);
        b.build()
    }

    #[test]
    fn hide_preserves_uniformity_lemma1() {
        let m = uniform_pair(2.0, "a");
        assert_eq!(m.uniformity(View::Open), Uniformity::Uniform(2.0));
        let h = m.hide(&["a"]);
        // state 0 became unstable, so uniformity is checked on state 1 only
        assert!(h.is_uniform(View::Open));
        assert!(h.has_tau(0));
    }

    #[test]
    fn hide_can_make_nonuniform_model_uniform() {
        // Non-uniform: stable states 0 (rate 1) and 1 (rate 2).
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 2.0, 0);
        b.interactive("a", 0, 1);
        let m = b.build();
        assert!(!m.is_uniform(View::Open));
        // Hiding `a` destabilizes state 0 — the converse of Lemma 1 fails.
        assert!(m.hide(&["a"]).is_uniform(View::Open));
    }

    #[test]
    fn hide_all_closes_the_model() {
        let m = uniform_pair(1.0, "a").hide_all();
        assert!(m.actions().lookup("a").is_none());
        assert!(m.has_tau(0));
    }

    #[test]
    fn parallel_rates_add_lemma2() {
        let m = uniform_pair(2.0, "a");
        let n = uniform_pair(3.0, "b");
        let p = m.parallel(&n, &[]);
        match p.uniformity(View::Open) {
            Uniformity::Uniform(e) => assert_close!(e, 5.0, 1e-12),
            other => panic!("expected uniform composition, got {other:?}"),
        }
    }

    #[test]
    fn parallel_synchronizes() {
        let mut a = ImcBuilder::new(2, 0);
        a.interactive("s", 0, 1);
        let a = a.build();
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("s", 0, 1);
        b.markov(1, 1.0, 1);
        let b = b.build();
        let p = a.parallel(&b, &["s"]);
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.num_interactive(), 1);
        assert_eq!(p.num_markov(), 1);
    }

    #[test]
    fn parallel_markov_always_interleaves() {
        let mut a = ImcBuilder::new(2, 0);
        a.markov(0, 1.0, 1);
        let a = a.build();
        let p = a.parallel(&a, &[]);
        // (0,0) -> (1,0), (0,1); then to (1,1): 4 states, 4 markov arrows
        assert_eq!(p.num_states(), 4);
        assert_eq!(p.num_markov(), 4);
    }

    #[test]
    fn relabel_keeps_markov() {
        let m = uniform_pair(1.5, "a").relabel(&[("a", "fail_ws")]);
        assert!(m.actions().lookup("fail_ws").is_some());
        assert_eq!(m.num_markov(), 2);
    }

    #[test]
    fn pre_emption_cut_removes_hybrid_markov() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("v", 0, 1);
        b.markov(0, 1.0, 1); // hybrid under both views? v is visible
        b.markov(1, 1.0, 0);
        let m = b.build();
        // Open view: `v` is delayable, state 0 keeps its Markov transition.
        assert_eq!(m.apply_pre_emption(View::Open).num_markov(), 2);
        // Closed view: urgency removes it.
        let closed = m.apply_pre_emption(View::Closed);
        assert_eq!(closed.num_markov(), 1);
        assert_eq!(closed.kind(0), StateKind::Interactive);
    }

    #[test]
    fn restrict_reachable_drops_garbage() {
        let mut b = ImcBuilder::new(4, 1);
        b.markov(1, 1.0, 2);
        b.interactive("x", 2, 1);
        b.markov(0, 9.0, 3); // unreachable island
        let m = b.build().restrict_to_reachable();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.initial(), 0);
        assert_eq!(m.num_markov(), 1);
    }

    #[test]
    fn compose_chain_and_interleave() {
        let a = uniform_pair(1.0, "a");
        let b = uniform_pair(2.0, "b");
        let c = uniform_pair(4.0, "c");
        let all = interleave_all(&[a.clone(), b.clone(), c.clone()]);
        match all.uniformity(View::Open) {
            Uniformity::Uniform(e) => assert_close!(e, 7.0, 1e-12),
            other => panic!("{other:?}"),
        }
        let chained = compose_chain(&[a, b, c], &[&[], &[]]);
        assert_eq!(chained.num_states(), all.num_states());
    }

    #[test]
    #[should_panic(expected = "tau cannot be in a synchronization set")]
    fn parallel_rejects_tau_sync() {
        let m = uniform_pair(1.0, "a");
        m.parallel(&m, &["tau"]);
    }
}
