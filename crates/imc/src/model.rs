//! The [`Imc`] model: states, interactive and Markov transitions, state
//! partitioning and uniformity checking.

use unicon_lts::{ActionTable, Lts, Transition};
use unicon_numeric::NeumaierSum;

/// One Markov transition `source --rate--> target`.
///
/// Markov transitions form a **multiset**: parallel transitions between the
/// same pair of states coexist even when their rates are equal, and their
/// rates add up in the race. (The paper presents the Markov transitions as
/// a relation, but set semantics would silently halve the exit rate of
/// diagonal states in symmetric parallel compositions — two interleaved
/// rate-λ self-loops must race at 2λ — so, like CADP's BCG graphs, we keep
/// multiplicities.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovTransition {
    /// Source state.
    pub source: u32,
    /// Exponential rate (strictly positive).
    pub rate: f64,
    /// Target state.
    pub target: u32,
}

/// Classification of a state by its outgoing transitions (the paper's
/// `S = S_M ∪ S_I ∪ S_H ∪ S_A` partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// Markov transitions only.
    Markov,
    /// Interactive transitions only.
    Interactive,
    /// Both kinds of outgoing transitions.
    Hybrid,
    /// No outgoing transitions.
    Absorbing,
}

/// Open vs. closed interpretation of an IMC.
///
/// * `Open`: the model may still be composed; *maximal progress* applies —
///   only τ pre-empts Markov transitions, visible actions are delayable.
///   Stability means "no outgoing τ".
/// * `Closed`: the model is complete; *urgency* applies — every interactive
///   transition pre-empts Markov transitions. Stability means "no outgoing
///   interactive transition at all".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum View {
    /// Compositional view with maximal progress.
    Open,
    /// Complete-model view with urgency.
    Closed,
}

/// Result of a uniformity check over the reachable states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Uniformity {
    /// All reachable stable states share this exit rate.
    Uniform(f64),
    /// No reachable stable state exists; the condition holds vacuously.
    Vacuous,
    /// Two reachable stable states with different exit rates.
    NonUniform {
        /// A stable state with exit rate `rate_a`.
        state_a: u32,
        /// Its exit rate.
        rate_a: f64,
        /// A stable state with exit rate `rate_b`.
        state_b: u32,
        /// Its exit rate.
        rate_b: f64,
    },
}

impl Uniformity {
    /// Whether the model is uniform (vacuously or with a common rate).
    pub fn is_uniform(&self) -> bool {
        !matches!(self, Uniformity::NonUniform { .. })
    }

    /// The common rate, if one exists (`None` when vacuous or non-uniform).
    pub fn rate(&self) -> Option<f64> {
        match self {
            Uniformity::Uniform(e) => Some(*e),
            _ => None,
        }
    }
}

/// A finite interactive Markov chain.
///
/// Immutable after construction; build with [`ImcBuilder`] or convert from
/// an [`Lts`] / CTMC. Interactive transitions are sorted by
/// `(source, action, target)`, Markov transitions by `(source, target)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Imc {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    interactive: Vec<Transition>,
    markov: Vec<MarkovTransition>,
    int_offsets: Vec<usize>,
    markov_offsets: Vec<usize>,
}

impl Imc {
    pub(crate) fn from_raw(
        actions: ActionTable,
        num_states: usize,
        initial: u32,
        mut interactive: Vec<Transition>,
        mut markov: Vec<MarkovTransition>,
    ) -> Self {
        assert!(num_states > 0, "an IMC needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state {initial} out of bounds"
        );
        for t in &interactive {
            assert!(
                (t.source as usize) < num_states && (t.target as usize) < num_states,
                "interactive transition {t:?} out of bounds"
            );
        }
        for m in &markov {
            assert!(
                (m.source as usize) < num_states && (m.target as usize) < num_states,
                "Markov transition out of bounds"
            );
            assert!(
                m.rate.is_finite() && m.rate > 0.0,
                "Markov rates must be finite and positive, got {}",
                m.rate
            );
        }
        interactive.sort_unstable();
        interactive.dedup();
        markov.sort_unstable_by(|a, b| {
            (a.source, a.target)
                .cmp(&(b.source, b.target))
                .then(a.rate.partial_cmp(&b.rate).expect("rates are finite"))
        });

        let mut int_offsets = vec![0usize; num_states + 1];
        for t in &interactive {
            int_offsets[t.source as usize + 1] += 1;
        }
        let mut markov_offsets = vec![0usize; num_states + 1];
        for m in &markov {
            markov_offsets[m.source as usize + 1] += 1;
        }
        for s in 0..num_states {
            int_offsets[s + 1] += int_offsets[s];
            markov_offsets[s + 1] += markov_offsets[s];
        }
        Self {
            actions,
            num_states,
            initial,
            interactive,
            markov,
            int_offsets,
            markov_offsets,
        }
    }

    /// Embeds an LTS as an IMC without Markov transitions — uniform with
    /// rate `E = 0` by definition.
    pub fn from_lts(lts: &Lts) -> Self {
        let out = Self::from_raw(
            lts.actions().clone(),
            lts.num_states(),
            lts.initial(),
            lts.transitions().to_vec(),
            Vec::new(),
        );
        crate::audit::record(
            "from_lts",
            crate::audit::lemma::LEAF,
            View::Open,
            &[],
            &out,
            crate::audit::Witness::Lts,
        );
        out
    }

    /// Embeds a CTMC as an IMC without interactive transitions.
    pub fn from_ctmc(ctmc: &unicon_ctmc::Ctmc) -> Self {
        let markov = ctmc
            .rates()
            .triplets()
            .map(|(s, t, r)| MarkovTransition {
                source: s as u32,
                rate: r,
                target: t as u32,
            })
            .collect();
        let out = Self::from_raw(
            ActionTable::new(),
            ctmc.num_states(),
            ctmc.initial(),
            Vec::new(),
            markov,
        );
        crate::audit::record(
            "from_ctmc",
            crate::audit::lemma::LEAF,
            View::Open,
            &[],
            &out,
            crate::audit::Witness::Ctmc {
                ctmc_fingerprint: ctmc.fingerprint(),
            },
        );
        out
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of interactive transitions.
    pub fn num_interactive(&self) -> usize {
        self.interactive.len()
    }

    /// Number of Markov transitions.
    pub fn num_markov(&self) -> usize {
        self.markov.len()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The action table.
    pub fn actions(&self) -> &ActionTable {
        &self.actions
    }

    /// All interactive transitions (sorted).
    pub fn interactive(&self) -> &[Transition] {
        &self.interactive
    }

    /// All Markov transitions (sorted).
    pub fn markov(&self) -> &[MarkovTransition] {
        &self.markov
    }

    /// Interactive transitions emanating from `state`.
    pub fn interactive_from(&self, state: u32) -> &[Transition] {
        let s = state as usize;
        &self.interactive[self.int_offsets[s]..self.int_offsets[s + 1]]
    }

    /// Markov transitions emanating from `state`.
    pub fn markov_from(&self, state: u32) -> &[MarkovTransition] {
        let s = state as usize;
        &self.markov[self.markov_offsets[s]..self.markov_offsets[s + 1]]
    }

    /// Cumulative rate `Rate(s, t)` (sum over parallel Markov transitions).
    pub fn rate(&self, s: u32, t: u32) -> f64 {
        self.markov_from(s)
            .iter()
            .filter(|m| m.target == t)
            .map(|m| m.rate)
            .sum()
    }

    /// Exit rate `E_s = Rate(s, S)`.
    pub fn exit_rate(&self, s: u32) -> f64 {
        let mut acc = NeumaierSum::new();
        for m in self.markov_from(s) {
            acc.add(m.rate);
        }
        acc.value()
    }

    /// Whether `state` has an outgoing τ transition.
    pub fn has_tau(&self, state: u32) -> bool {
        self.interactive_from(state)
            .iter()
            .any(|t| t.action.is_tau())
    }

    /// The paper's `S_M / S_I / S_H / S_A` classification of one state.
    pub fn kind(&self, state: u32) -> StateKind {
        let has_int = !self.interactive_from(state).is_empty();
        let has_markov = !self.markov_from(state).is_empty();
        match (has_int, has_markov) {
            (false, true) => StateKind::Markov,
            (true, false) => StateKind::Interactive,
            (true, true) => StateKind::Hybrid,
            (false, false) => StateKind::Absorbing,
        }
    }

    /// Counts states of each kind, in the order
    /// (Markov, interactive, hybrid, absorbing).
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in 0..self.num_states as u32 {
            match self.kind(s) {
                StateKind::Markov => c.0 += 1,
                StateKind::Interactive => c.1 += 1,
                StateKind::Hybrid => c.2 += 1,
                StateKind::Absorbing => c.3 += 1,
            }
        }
        c
    }

    /// Whether `state` is *stable* under the given view: no outgoing τ
    /// (open) or no outgoing interactive transition at all (closed).
    pub fn is_stable(&self, state: u32, view: View) -> bool {
        match view {
            View::Open => !self.has_tau(state),
            View::Closed => self.interactive_from(state).is_empty(),
        }
    }

    /// States reachable from the initial state (over both transition kinds).
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states];
        seen[self.initial as usize] = true;
        let mut stack = vec![self.initial];
        while let Some(s) = stack.pop() {
            for t in self.interactive_from(s) {
                if !seen[t.target as usize] {
                    seen[t.target as usize] = true;
                    stack.push(t.target);
                }
            }
            for m in self.markov_from(s) {
                if !seen[m.target as usize] {
                    seen[m.target as usize] = true;
                    stack.push(m.target);
                }
            }
        }
        seen
    }

    /// Checks Definition 4 over the *reachable* states: does a rate `E`
    /// exist such that every reachable stable state has exit rate `E`?
    ///
    /// Rates are compared with the workspace-wide tolerance policy
    /// [`unicon_numeric::rates_approx_eq`], so this check can never
    /// disagree with the CTMC/CTMDP uniformity checks or the
    /// `unicon-verify` lints.
    ///
    /// # Examples
    ///
    /// ```
    /// use unicon_imc::{ImcBuilder, View, Uniformity};
    ///
    /// let mut b = ImcBuilder::new(2, 0);
    /// b.markov(0, 3.0, 1);
    /// b.markov(1, 3.0, 0);
    /// assert_eq!(b.build().uniformity(View::Open), Uniformity::Uniform(3.0));
    /// ```
    pub fn uniformity(&self, view: View) -> Uniformity {
        let reachable = self.reachable_states();
        let mut witness: Option<(u32, f64)> = None;
        for s in 0..self.num_states as u32 {
            if !reachable[s as usize] || !self.is_stable(s, view) {
                continue;
            }
            let e = self.exit_rate(s);
            match witness {
                None => witness = Some((s, e)),
                Some((w, ew)) => {
                    if !unicon_numeric::rates_approx_eq(e, ew) {
                        return Uniformity::NonUniform {
                            state_a: w,
                            rate_a: ew,
                            state_b: s,
                            rate_b: e,
                        };
                    }
                }
            }
        }
        match witness {
            Some((_, e)) => Uniformity::Uniform(e),
            None => Uniformity::Vacuous,
        }
    }

    /// Shorthand: is the model uniform (Definition 4) under `view`?
    pub fn is_uniform(&self, view: View) -> bool {
        self.uniformity(view).is_uniform()
    }

    /// A reproducible 64-bit structural fingerprint (FNV-1a) over the state
    /// count, initial state, action names and both transition relations in
    /// their canonical sorted order, with rates hashed bit-exactly.
    ///
    /// Two IMCs have equal fingerprints exactly when they are structurally
    /// identical (up to hash collisions); the certificate chain of
    /// `unicon-verify::certify` uses fingerprints to link each construction
    /// step's output to the next step's input.
    pub fn fingerprint(&self) -> u64 {
        let mut h = unicon_numeric::fnv::Fnv64::new();
        h.write(b"imc-v1");
        h.write_u64(self.num_states as u64);
        h.write_u32(self.initial);
        h.write_u64(self.actions.len() as u64);
        for (_, name) in self.actions.iter() {
            h.write(name.as_bytes());
            h.write(&[0xff]);
        }
        h.write_u64(self.interactive.len() as u64);
        for t in &self.interactive {
            h.write_u32(t.source);
            h.write_u32(t.action.0);
            h.write_u32(t.target);
        }
        h.write_u64(self.markov.len() as u64);
        for m in &self.markov {
            h.write_u32(m.source);
            h.write_f64(m.rate);
            h.write_u32(m.target);
        }
        h.finish()
    }
}

/// Builder for [`Imc`].
///
/// # Examples
///
/// ```
/// use unicon_imc::{ImcBuilder, StateKind};
///
/// let mut b = ImcBuilder::new(3, 0);
/// b.interactive("go", 0, 1);
/// b.markov(1, 2.5, 2);
/// b.markov(1, 0.5, 0);
/// let imc = b.build();
/// assert_eq!(imc.kind(0), StateKind::Interactive);
/// assert_eq!(imc.kind(1), StateKind::Markov);
/// assert_eq!(imc.exit_rate(1), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct ImcBuilder {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    interactive: Vec<Transition>,
    markov: Vec<MarkovTransition>,
}

impl ImcBuilder {
    /// Starts a builder for an IMC with `num_states` states.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` or the initial state is out of bounds.
    pub fn new(num_states: usize, initial: u32) -> Self {
        assert!(num_states > 0, "an IMC needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of bounds"
        );
        Self {
            actions: ActionTable::new(),
            num_states,
            initial,
            interactive: Vec::new(),
            markov: Vec::new(),
        }
    }

    /// Adds an interactive transition, interning the action name.
    pub fn interactive(&mut self, action: &str, source: u32, target: u32) -> &mut Self {
        let action = self.actions.intern(action);
        self.interactive.push(Transition {
            source,
            action,
            target,
        });
        self
    }

    /// Adds an internal (τ) transition.
    pub fn tau(&mut self, source: u32, target: u32) -> &mut Self {
        self.interactive(unicon_lts::TAU_NAME, source, target)
    }

    /// Adds a Markov transition.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn markov(&mut self, source: u32, rate: f64, target: u32) -> &mut Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Markov rates must be finite and positive"
        );
        self.markov.push(MarkovTransition {
            source,
            rate,
            target,
        });
        self
    }

    /// Finalizes the IMC.
    pub fn build(self) -> Imc {
        Imc::from_raw(
            self.actions,
            self.num_states,
            self.initial,
            self.interactive,
            self.markov,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_lts::LtsBuilder;

    fn hybrid_sample() -> Imc {
        let mut b = ImcBuilder::new(4, 0);
        b.interactive("a", 0, 1);
        b.markov(0, 1.0, 2); // state 0 is hybrid
        b.markov(1, 2.0, 2);
        b.interactive("b", 2, 3);
        // state 3 absorbing
        b.build()
    }

    #[test]
    fn kinds_are_classified() {
        let m = hybrid_sample();
        assert_eq!(m.kind(0), StateKind::Hybrid);
        assert_eq!(m.kind(1), StateKind::Markov);
        assert_eq!(m.kind(2), StateKind::Interactive);
        assert_eq!(m.kind(3), StateKind::Absorbing);
        assert_eq!(m.kind_counts(), (1, 1, 1, 1));
    }

    #[test]
    fn rates_accumulate() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(0, 2.0, 1); // parallel transition, different rate
        let m = b.build();
        assert_eq!(m.num_markov(), 2);
        assert_eq!(m.rate(0, 1), 3.0);
        assert_eq!(m.exit_rate(0), 3.0);
    }

    #[test]
    fn equal_rate_duplicates_race_multiset_semantics() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.5, 1);
        b.markov(0, 1.5, 1); // same rate — still two racing transitions
        let m = b.build();
        assert_eq!(m.num_markov(), 2);
        assert_eq!(m.rate(0, 1), 3.0);
    }

    #[test]
    fn stability_depends_on_view() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("v", 0, 1); // visible action only
        b.markov(0, 1.0, 1);
        let m = b.build();
        assert!(m.is_stable(0, View::Open)); // no tau
        assert!(!m.is_stable(0, View::Closed)); // has interactive
    }

    #[test]
    fn uniformity_ignores_unstable_states() {
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(0, 99.0, 2); // unstable state: rate irrelevant (open view)
        b.markov(1, 2.0, 2);
        b.markov(2, 2.0, 1);
        let m = b.build();
        assert_eq!(m.uniformity(View::Open), Uniformity::Uniform(2.0));
    }

    #[test]
    fn uniformity_ignores_unreachable_states() {
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 1.0, 0);
        b.markov(2, 77.0, 2); // unreachable
        let m = b.build();
        assert_eq!(m.uniformity(View::Open), Uniformity::Uniform(1.0));
    }

    #[test]
    fn non_uniform_reports_witnesses() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 2.0, 0);
        match b.build().uniformity(View::Open) {
            Uniformity::NonUniform {
                state_a,
                rate_a,
                state_b,
                rate_b,
            } => {
                assert_eq!((state_a, state_b), (0, 1));
                assert_eq!((rate_a, rate_b), (1.0, 2.0));
            }
            other => panic!("expected NonUniform, got {other:?}"),
        }
    }

    #[test]
    fn all_interactive_model_is_vacuously_uniform_closed() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("x", 0, 1);
        b.interactive("y", 1, 0);
        let m = b.build();
        assert_eq!(m.uniformity(View::Closed), Uniformity::Vacuous);
        assert!(m.is_uniform(View::Closed));
    }

    #[test]
    fn lts_embedding_is_uniform_rate_zero() {
        let mut b = LtsBuilder::new(2, 0);
        b.add("a", 0, 1);
        b.add("b", 1, 0);
        let m = Imc::from_lts(&b.build());
        assert_eq!(m.num_markov(), 0);
        // An LTS is uniform with E = 0 under the open view: every state is
        // stable (no tau) with exit rate 0.
        assert_eq!(m.uniformity(View::Open), Uniformity::Uniform(0.0));
    }

    #[test]
    fn ctmc_embedding_keeps_rates() {
        let c = unicon_ctmc::Ctmc::from_rates(2, 0, [(0, 1, 4.0), (1, 0, 4.0)]);
        let m = Imc::from_ctmc(&c);
        assert_eq!(m.num_interactive(), 0);
        assert_eq!(m.rate(0, 1), 4.0);
        assert_eq!(m.uniformity(View::Closed), Uniformity::Uniform(4.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_rate() {
        ImcBuilder::new(1, 0).markov(0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_transition() {
        let mut b = ImcBuilder::new(1, 0);
        b.interactive("a", 0, 7);
        b.build();
    }
}
