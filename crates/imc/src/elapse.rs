//! The *elapse* operator: phase-type time constraints as uniform IMCs.
//!
//! `El(Ph, f, r)` enriches a **uniformized** phase-type distribution `Ph`
//! with the synchronization potential needed to impose "between an
//! occurrence of `r` and the next occurrence of `f` there must be a
//! `Ph`-distributed delay" on a system by parallel composition:
//!
//! * the states are the states of the uniformized chain of `Ph` — every one
//!   of them, including the (formerly absorbing) completion state, has
//!   Markov exit rate exactly `E`, which is what makes the operator preserve
//!   uniformity *and* lets parallel composition add rates deterministically
//!   (Lemma 2);
//! * the completion state offers `f` as a self-loop — the constraint keeps
//!   offering `f` until the environment takes it, and the gating of when `f`
//!   actually happens is left to the synchronized partner;
//! * **every** state offers `r` back to the initial phase — an occurrence of
//!   `r` (re)starts the delay, wherever the chain currently is. Thanks to
//!   memorylessness, a delay that "keeps running while nobody watches" is
//!   statistically indistinguishable from one started on demand.

use unicon_ctmc::phase_type::UniformPhaseType;
use unicon_lts::{ActionTable, Transition};

use crate::model::{Imc, MarkovTransition};

/// Builds the time-constraint IMC `El(Ph, f, r)`.
///
/// `f` is the action whose occurrence the delay gates; `r` is the action
/// that (re)starts the delay.
///
/// # Panics
///
/// Panics if `f` or `r` is the internal action τ, or if `f == r`.
///
/// # Examples
///
/// ```
/// use unicon_ctmc::PhaseType;
/// use unicon_imc::{elapse, View};
///
/// let ph = PhaseType::erlang(2, 4.0).uniformize_at_max();
/// let tc = elapse::elapse(&ph, "fail", "repair");
/// // Uniform with the phase-type's uniformization rate.
/// assert_eq!(tc.uniformity(View::Open).rate(), Some(4.0));
/// // Three states: two phases plus the completion state.
/// assert_eq!(tc.num_states(), 3);
/// ```
pub fn elapse(ph: &UniformPhaseType, f: &str, r: &str) -> Imc {
    assert_ne!(f, unicon_lts::TAU_NAME, "f must be a visible action");
    assert_ne!(r, unicon_lts::TAU_NAME, "r must be a visible action");
    assert_ne!(f, r, "the gated action and the restart action must differ");

    let chain = ph.ctmc();
    let n = chain.num_states();
    let mut actions = ActionTable::new();
    let f_id = actions.intern(f);
    let r_id = actions.intern(r);

    let markov: Vec<MarkovTransition> = chain
        .rates()
        .triplets()
        .map(|(s, t, rate)| MarkovTransition {
            source: s as u32,
            rate,
            target: t as u32,
        })
        .collect();

    let mut interactive = Vec::with_capacity(n + 1);
    // The completion state offers `f` (self-loop: the constraint stays
    // "elapsed" until restarted).
    interactive.push(Transition {
        source: ph.absorbing(),
        action: f_id,
        target: ph.absorbing(),
    });
    // Every state offers `r`, restarting the delay.
    for s in 0..n as u32 {
        interactive.push(Transition {
            source: s,
            action: r_id,
            target: ph.initial(),
        });
    }
    let out = Imc::from_raw(actions, n, ph.initial(), interactive, markov);
    debug_assert!(
        out.uniformity(crate::model::View::Open)
            .rate()
            .is_some_and(|r| unicon_numeric::rates_approx_eq(r, ph.rate())),
        "elapse must be uniform at the phase-type's uniformization rate"
    );
    crate::audit::record(
        "elapse",
        crate::audit::lemma::ELAPSE,
        crate::model::View::Open,
        &[],
        &out,
        crate::audit::Witness::Elapse {
            rate: ph.rate(),
            gate: f.to_string(),
            restart: r.to_string(),
            phase_fingerprint: chain.fingerprint(),
        },
    );
    out
}

/// A multi-way elapse: one shared timer serving several `(f_i, r_i)` pairs
/// at once, used when a mutually exclusive resource (the paper's single
/// repair unit) means at most one of the delays can be running.
///
/// Given `branches = [(f_1, r_1, Ph_1), …]` where all `Ph_i` are uniformized
/// at the *same* rate `E`, the constraint starts in an idle state whose
/// Markov behaviour is a rate-`E` self-loop; `r_i` moves it into the chain
/// of `Ph_i`; the completion state of `Ph_i` offers `f_i` and returns to
/// idle when `f_i` is taken.
///
/// This contributes a constant rate `E` to the composition — instead of
/// `Σ E_i` for independent per-branch constraints — which is how the paper's
/// FTWC model keeps its uniform rate (and hence its iteration counts) small.
///
/// # Panics
///
/// Panics if `branches` is empty, the rates disagree (under the shared
/// tolerance policy [`unicon_numeric::rates_approx_eq`]), τ is used, or
/// some `f_i == r_i`.
pub fn shared_elapse(branches: &[(&str, &str, &UniformPhaseType)]) -> Imc {
    assert!(!branches.is_empty(), "need at least one branch");
    let e = branches[0].2.rate();
    for (f, r, ph) in branches {
        assert_ne!(*f, unicon_lts::TAU_NAME, "f must be a visible action");
        assert_ne!(*r, unicon_lts::TAU_NAME, "r must be a visible action");
        assert_ne!(f, r, "the gated action and the start action must differ");
        assert!(
            unicon_numeric::rates_approx_eq(ph.rate(), e),
            "all branches must be uniformized at the same rate"
        );
    }

    let mut actions = ActionTable::new();
    // State numbering: 0 = idle; then the chains of the branches in order.
    let mut markov: Vec<MarkovTransition> = vec![MarkovTransition {
        source: 0,
        rate: e,
        target: 0,
    }];
    let mut interactive: Vec<Transition> = Vec::new();
    let mut offset = 1u32;
    for (f, r, ph) in branches {
        let f_id = actions.intern(f);
        let r_id = actions.intern(r);
        let chain = ph.ctmc();
        for (s, t, rate) in chain.rates().triplets() {
            markov.push(MarkovTransition {
                source: offset + s as u32,
                rate,
                target: offset + t as u32,
            });
        }
        // Start the delay: from idle (and only idle — the resource is
        // exclusive) on r_i.
        interactive.push(Transition {
            source: 0,
            action: r_id,
            target: offset + ph.initial(),
        });
        // Completion offers f_i and returns to idle.
        interactive.push(Transition {
            source: offset + ph.absorbing(),
            action: f_id,
            target: 0,
        });
        offset += chain.num_states() as u32;
    }
    let out = Imc::from_raw(actions, offset as usize, 0, interactive, markov);
    debug_assert!(
        out.uniformity(crate::model::View::Open)
            .rate()
            .is_some_and(|r| unicon_numeric::rates_approx_eq(r, e)),
        "shared_elapse must be uniform at the branches' shared rate"
    );
    crate::audit::record(
        "shared_elapse",
        crate::audit::lemma::ELAPSE,
        crate::model::View::Open,
        &[],
        &out,
        crate::audit::Witness::SharedElapse { rate: e },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::View;
    use unicon_ctmc::PhaseType;
    use unicon_lts::LtsBuilder;
    use unicon_numeric::assert_close;

    #[test]
    fn elapse_exponential_shape() {
        let ph = PhaseType::exponential(0.5).uniformize_at_max();
        let tc = elapse(&ph, "f", "r");
        assert_eq!(tc.num_states(), 2);
        // Markov: 0 -> 1 at 0.5 and completion self-loop 1 -> 1 at 0.5.
        assert_close!(tc.rate(0, 1), 0.5, 1e-12);
        assert_close!(tc.rate(1, 1), 0.5, 1e-12);
        // f offered exactly at the completion state.
        let f = tc.actions().lookup("f").unwrap();
        let offering: Vec<u32> = tc
            .interactive()
            .iter()
            .filter(|t| t.action == f)
            .map(|t| t.source)
            .collect();
        assert_eq!(offering, vec![1]);
        // r offered everywhere, leading back to the initial phase.
        let r = tc.actions().lookup("r").unwrap();
        let restarts: Vec<(u32, u32)> = tc
            .interactive()
            .iter()
            .filter(|t| t.action == r)
            .map(|t| (t.source, t.target))
            .collect();
        assert_eq!(restarts, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn elapse_is_uniform_every_state_full_rate() {
        for ph in [
            PhaseType::exponential(2.0).uniformize_at_max(),
            PhaseType::erlang(3, 1.0).uniformize_at_max(),
            PhaseType::hypoexponential(&[1.0, 4.0]).uniformize(4.0),
        ] {
            let e = ph.rate();
            let tc = elapse(&ph, "f", "r");
            for s in 0..tc.num_states() as u32 {
                assert_close!(tc.exit_rate(s), e, 1e-9);
            }
            assert_eq!(tc.uniformity(View::Open).rate(), Some(e));
        }
    }

    #[test]
    fn composed_constraint_gates_the_action() {
        // LTS: work -> done via "f"; constraint delays f by Exp(1).
        let mut b = LtsBuilder::new(2, 0);
        b.add("f", 0, 1);
        let sys = Imc::from_lts(&b.build());
        let ph = PhaseType::exponential(1.0).uniformize_at_max();
        let tc = elapse(&ph, "f", "r");
        let timed = tc.parallel(&sys, &["f", "r"]);
        // Initial product state must NOT offer f (delay still running).
        let f = timed.actions().lookup("f").unwrap();
        assert!(timed
            .interactive_from(timed.initial())
            .iter()
            .all(|t| t.action != f));
        // But after the Markov step the action becomes available somewhere.
        assert!(timed.interactive().iter().any(|t| t.action == f));
        // Uniform with rate 1 by construction.
        assert_eq!(timed.uniformity(View::Open).rate(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn elapse_rejects_equal_actions() {
        let ph = PhaseType::exponential(1.0).uniformize_at_max();
        elapse(&ph, "x", "x");
    }

    #[test]
    #[should_panic(expected = "visible action")]
    fn elapse_rejects_tau() {
        let ph = PhaseType::exponential(1.0).uniformize_at_max();
        elapse(&ph, "tau", "r");
    }

    #[test]
    fn shared_elapse_has_constant_rate() {
        let fast = PhaseType::exponential(2.0).uniformize(2.0);
        let slow = PhaseType::exponential(0.25).uniformize(2.0);
        let tc = shared_elapse(&[("rep_ws", "go_ws", &fast), ("rep_sw", "go_sw", &slow)]);
        for s in 0..tc.num_states() as u32 {
            assert_close!(tc.exit_rate(s), 2.0, 1e-9);
        }
        assert_eq!(tc.uniformity(View::Open).rate(), Some(2.0));
        // idle state offers both start actions
        assert_eq!(tc.interactive_from(0).len(), 2);
    }

    #[test]
    fn shared_elapse_serializes_delays() {
        let a = PhaseType::exponential(1.0).uniformize(1.0);
        let b = PhaseType::exponential(1.0).uniformize(1.0);
        let tc = shared_elapse(&[("fa", "ra", &a), ("fb", "rb", &b)]);
        // After starting branch a, rb is not offered until fa returns to idle.
        let ra = tc.actions().lookup("ra").unwrap();
        let start_a = tc
            .interactive_from(0)
            .iter()
            .find(|t| t.action == ra)
            .unwrap()
            .target;
        let rb = tc.actions().lookup("rb").unwrap();
        assert!(tc.interactive_from(start_a).iter().all(|t| t.action != rb));
    }

    #[test]
    #[should_panic(expected = "same rate")]
    fn shared_elapse_rejects_mismatched_rates() {
        let a = PhaseType::exponential(1.0).uniformize(1.0);
        let b = PhaseType::exponential(1.0).uniformize(2.0);
        shared_elapse(&[("fa", "ra", &a), ("fb", "rb", &b)]);
    }
}
