//! Stochastic branching bisimulation and strong stochastic bisimulation.
//!
//! The minimization equivalence of the paper (Definition 6) must
//!
//! 1. abstract from internal computation (branching-style τ treatment),
//! 2. lump Markov transitions (Kemeny–Snell style),
//! 3. leave the branching structure otherwise untouched.
//!
//! We implement both relations by Blom–Orzan-style *signature refinement*:
//! the partition is repeatedly split by a per-state signature until it
//! stabilizes, then the quotient IMC is read off. For the branching variant
//! the signature closes over *inert* τ steps (τ transitions that stay
//! inside the current block).
//!
//! The computed partition is a **sound** stochastic branching bisimulation —
//! every pair of merged states satisfies Definition 6 — and on the
//! divergence-free models of the modelling trajectory (Zenoness is excluded
//! before analysis) it is the coarsest one in all our test cases. Lemma 3 /
//! Corollary 1 (quotienting preserves uniformity, in both directions) is
//! exercised by the property tests.

use std::collections::{BTreeSet, HashMap};

use unicon_ctmc::lumping::quantize;
use unicon_lts::Transition;
use unicon_numeric::NeumaierSum;

use crate::model::{Imc, MarkovTransition, View};

/// A partition of IMC states into dense blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block[s]` is the block of state `s`.
    pub block: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
}

impl Partition {
    fn universal(n: usize) -> Self {
        Self {
            block: vec![0; n],
            num_blocks: usize::from(n > 0),
        }
    }

    /// Builds an initial partition from arbitrary per-state labels (states
    /// with different labels are never merged), renumbering densely.
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let block: Vec<u32> = labels
            .iter()
            .map(|&l| {
                let fresh = remap.len() as u32;
                *remap.entry(l).or_insert(fresh)
            })
            .collect();
        Self {
            num_blocks: remap.len(),
            block,
        }
    }
}

/// A state signature: visible/non-inert moves plus the set of stable rate
/// profiles reachable through inert internal steps.
type Signature = (BTreeSet<(u32, u32)>, BTreeSet<Vec<(u32, u64)>>);

/// Computes a stochastic branching bisimulation partition of `imc`.
///
/// `view` selects which actions pre-empt Markov transitions (τ only under
/// [`View::Open`]; every interactive transition under [`View::Closed`]) and
/// which transitions can be inert (always τ).
pub fn stochastic_branching_bisimulation(imc: &Imc, view: View) -> Partition {
    stochastic_branching_bisimulation_from(imc, view, Partition::universal(imc.num_states()))
}

/// Like [`stochastic_branching_bisimulation`] but refining an initial
/// partition given by per-state labels: states with different labels are
/// never merged, so any label-defined measure (e.g. a goal set) survives
/// quotienting.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_branching_bisimulation_labeled(
    imc: &Imc,
    view: View,
    labels: &[u32],
) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    stochastic_branching_bisimulation_from(imc, view, Partition::from_labels(labels))
}

fn stochastic_branching_bisimulation_from(imc: &Imc, view: View, init: Partition) -> Partition {
    // Rates of unstable states are semantically irrelevant: cut them first.
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    let mut part = init;
    loop {
        let sigs: Vec<Signature> = (0..n as u32)
            .map(|s| signature(&m, view, &part, s))
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Computes a strong stochastic bisimulation partition (no τ abstraction).
pub fn strong_stochastic_bisimulation(imc: &Imc, view: View) -> Partition {
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    let mut part = Partition::universal(n);
    loop {
        let sigs: Vec<Signature> = (0..n as u32)
            .map(|s| {
                let mut moves = BTreeSet::new();
                for t in m.interactive_from(s) {
                    moves.insert((t.action.0, part.block[t.target as usize]));
                }
                let mut profiles = BTreeSet::new();
                profiles.insert(rate_profile(&m, &part, s));
                (moves, profiles)
            })
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Computes a stochastic **weak** bisimulation partition.
///
/// Weak bisimulation abstracts more aggressively than the branching
/// variant: a visible move may be matched by `τ* a τ*`, so e.g.
/// `a.(b + τ.c) + a.c` and `a.(b + τ.c)` are weakly but not branching
/// bisimilar. The paper remarks that the uniformity-preservation result
/// (Lemma 3) equally holds for this relation.
///
/// Implemented by signature refinement over the full τ*-closure (computed
/// once); like the branching variant, the result is a sound bisimulation —
/// every merged pair is weakly bisimilar — intended for divergence-free
/// (non-Zeno) models.
pub fn stochastic_weak_bisimulation(imc: &Imc, view: View) -> Partition {
    stochastic_weak_bisimulation_from(imc, view, Partition::universal(imc.num_states()))
}

/// Label-respecting variant of [`stochastic_weak_bisimulation`].
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn stochastic_weak_bisimulation_labeled(imc: &Imc, view: View, labels: &[u32]) -> Partition {
    assert_eq!(
        labels.len(),
        imc.num_states(),
        "label vector length mismatch"
    );
    stochastic_weak_bisimulation_from(imc, view, Partition::from_labels(labels))
}

fn stochastic_weak_bisimulation_from(imc: &Imc, view: View, init: Partition) -> Partition {
    let m = imc.apply_pre_emption(view);
    let n = m.num_states();
    // Full τ*-closure, independent of the partition: compute once.
    let closure: Vec<Vec<u32>> = (0..n as u32).map(|s| tau_closure(&m, s)).collect();
    let mut part = init;
    loop {
        let sigs: Vec<Signature> = (0..n)
            .map(|s| {
                let my_block = part.block[s];
                let mut moves = BTreeSet::new();
                let mut profiles = BTreeSet::new();
                for &s1 in &closure[s] {
                    // τ moves that change block (weak: s ⇒τ* t).
                    let b1 = part.block[s1 as usize];
                    if b1 != my_block {
                        moves.insert((unicon_lts::ActionId::TAU.0, b1));
                    }
                    // visible moves with τ*-closure on the target side.
                    for t in m.interactive_from(s1) {
                        if t.action.is_tau() {
                            continue;
                        }
                        for &t2 in &closure[t.target as usize] {
                            moves.insert((t.action.0, part.block[t2 as usize]));
                        }
                    }
                    if m.is_stable(s1, view) {
                        profiles.insert(rate_profile(&m, &part, s1));
                    }
                }
                (moves, profiles)
            })
            .collect();
        let (next, changed) = refine(&part, &sigs);
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Minimizes modulo stochastic weak bisimilarity.
pub fn minimize_weak(imc: &Imc, view: View) -> Imc {
    let part = stochastic_weak_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize_weak (Lemma 3)", view, &[imc], &out);
    out
}

/// Reflexive-transitive closure over τ transitions (all of them, not just
/// inert ones), including `s` itself.
fn tau_closure(m: &Imc, s: u32) -> Vec<u32> {
    let mut seen = vec![s];
    let mut stack = vec![s];
    while let Some(x) = stack.pop() {
        for t in m.interactive_from(x) {
            if t.action.is_tau() && !seen.contains(&t.target) {
                seen.push(t.target);
                stack.push(t.target);
            }
        }
    }
    seen
}

/// Splits every block by signature; returns the new partition and whether
/// the block count grew.
fn refine(part: &Partition, sigs: &[Signature]) -> (Partition, bool) {
    let mut keys: HashMap<(u32, &Signature), u32> = HashMap::new();
    let mut block = Vec::with_capacity(sigs.len());
    for (s, sig) in sigs.iter().enumerate() {
        let fresh = keys.len() as u32;
        block.push(*keys.entry((part.block[s], sig)).or_insert(fresh));
    }
    let num_blocks = keys.len();
    let changed = num_blocks != part.num_blocks;
    (Partition { block, num_blocks }, changed)
}

/// Branching signature of `s` under the current partition: all non-inert
/// moves reachable via inert τ steps, plus the rate profiles of the stable
/// states reachable via inert τ steps.
fn signature(m: &Imc, view: View, part: &Partition, s: u32) -> Signature {
    let closure = inert_closure(m, part, s);
    let my_block = part.block[s as usize];
    let mut moves = BTreeSet::new();
    let mut profiles = BTreeSet::new();
    for &s2 in &closure {
        for t in m.interactive_from(s2) {
            let tgt_block = part.block[t.target as usize];
            if !(t.action.is_tau() && tgt_block == my_block) {
                moves.insert((t.action.0, tgt_block));
            }
        }
        if m.is_stable(s2, view) {
            profiles.insert(rate_profile(m, part, s2));
        }
    }
    (moves, profiles)
}

/// The τ-closure of `s` within its own block (inert steps only), including
/// `s` itself.
fn inert_closure(m: &Imc, part: &Partition, s: u32) -> Vec<u32> {
    let my_block = part.block[s as usize];
    let mut seen = vec![s];
    let mut stack = vec![s];
    while let Some(x) = stack.pop() {
        for t in m.interactive_from(x) {
            if t.action.is_tau()
                && part.block[t.target as usize] == my_block
                && !seen.contains(&t.target)
            {
                seen.push(t.target);
                stack.push(t.target);
            }
        }
    }
    seen
}

/// Per-block cumulative rate vector of one state, quantized for hashing.
fn rate_profile(m: &Imc, part: &Partition, s: u32) -> Vec<(u32, u64)> {
    let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
    for t in m.markov_from(s) {
        per_block
            .entry(part.block[t.target as usize])
            .or_default()
            .add(t.rate);
    }
    let mut v: Vec<(u32, u64)> = per_block
        .into_iter()
        .map(|(b, r)| (b, quantize(r.value())))
        .collect();
    v.sort_unstable();
    v
}

/// Builds the quotient IMC of `imc` under `partition`.
///
/// Interactive transitions: `B --a--> C` iff some `s ∈ B` moves `a` to
/// `C`, except inert τ self-loops, which vanish. Markov transitions: the
/// per-block rates of any *stable* member of `B` (all stable members agree
/// once the partition is a bisimulation); blocks without stable members get
/// none — their rates are pre-empted anyway.
///
/// # Panics
///
/// Panics if the partition length does not match the model.
pub fn quotient(imc: &Imc, partition: &Partition, view: View) -> Imc {
    assert_eq!(
        partition.block.len(),
        imc.num_states(),
        "partition does not match the model"
    );
    let m = imc.apply_pre_emption(view);
    let nb = partition.num_blocks;

    let mut interactive: Vec<Transition> = Vec::new();
    for t in m.interactive() {
        let sb = partition.block[t.source as usize];
        let tb = partition.block[t.target as usize];
        if t.action.is_tau() && sb == tb {
            continue; // inert
        }
        interactive.push(Transition {
            source: sb,
            action: t.action,
            target: tb,
        });
    }

    // One stable representative per block.
    let mut rep: Vec<Option<u32>> = vec![None; nb];
    for s in 0..m.num_states() as u32 {
        let b = partition.block[s as usize] as usize;
        if rep[b].is_none() && m.is_stable(s, view) && !m.markov_from(s).is_empty() {
            rep[b] = Some(s);
        }
    }
    let mut markov: Vec<MarkovTransition> = Vec::new();
    for (b, r) in rep.iter().enumerate() {
        if let Some(s) = r {
            let mut per_block: HashMap<u32, NeumaierSum> = HashMap::new();
            for t in m.markov_from(*s) {
                per_block
                    .entry(partition.block[t.target as usize])
                    .or_default()
                    .add(t.rate);
            }
            for (c, acc) in per_block {
                let rate = acc.value();
                if rate > 0.0 {
                    markov.push(MarkovTransition {
                        source: b as u32,
                        rate,
                        target: c,
                    });
                }
            }
        }
    }

    Imc::from_raw(
        imc.actions().clone(),
        nb,
        partition.block[imc.initial() as usize],
        interactive,
        markov,
    )
}

/// Minimizes an IMC modulo stochastic branching bisimilarity and restricts
/// to the reachable part (the `StoBraBi` quotient of the paper).
///
/// # Examples
///
/// ```
/// use unicon_imc::{bisim, ImcBuilder, View};
///
/// // A τ step in front of a Markov state collapses into it: the quotient
/// // keeps only {0,1} and the observably different goal state {2}.
/// let mut b = ImcBuilder::new(3, 0);
/// b.tau(0, 1);
/// b.markov(1, 2.0, 2);
/// b.interactive("goal", 2, 2);
/// let min = bisim::minimize(&b.build(), View::Open);
/// assert_eq!(min.num_states(), 2);
/// ```
pub fn minimize(imc: &Imc, view: View) -> Imc {
    let part = stochastic_branching_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize (Lemma 3)", view, &[imc], &out);
    out
}

/// Minimizes modulo strong stochastic bisimilarity.
pub fn minimize_strong(imc: &Imc, view: View) -> Imc {
    let part = strong_stochastic_bisimulation(imc, view);
    let out = quotient(imc, &part, view).restrict_to_reachable();
    crate::audit::preserves_uniformity("minimize_strong (Lemma 3)", view, &[imc], &out);
    out
}

/// Label-respecting minimization: quotients modulo the coarsest stochastic
/// branching bisimulation refining `labels`, and returns the quotient
/// together with its per-state labels.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the number of states.
pub fn minimize_labeled(imc: &Imc, view: View, labels: &[u32]) -> (Imc, Vec<u32>) {
    let part = stochastic_branching_bisimulation_labeled(imc, view, labels);
    let q = quotient(imc, &part, view);
    let mut block_labels = vec![0u32; part.num_blocks];
    for (s, &b) in part.block.iter().enumerate() {
        block_labels[b as usize] = labels[s];
    }
    let (reduced, old_of_new) = q.restrict_to_reachable_with_map();
    let new_labels = old_of_new
        .iter()
        .map(|&b| block_labels[b as usize])
        .collect();
    crate::audit::preserves_uniformity("minimize_labeled (Lemma 3)", view, &[imc], &reduced);
    (reduced, new_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ImcBuilder, Uniformity};
    use unicon_numeric::assert_close;

    #[test]
    fn tau_prefix_collapses() {
        // 0 --τ--> 1 --1.0--> 2 --1.0--> 1: all three states are stochastic
        // branching bisimilar (unlabeled rate-1 ticking into the own class),
        // so the quotient is a single state with a rate-1 self-loop.
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        let min = minimize(&b.build(), View::Open);
        assert_eq!(min.num_states(), 1);
        assert_eq!(min.num_interactive(), 0);
        assert_close!(min.exit_rate(min.initial()), 1.0, 1e-12);
    }

    #[test]
    fn tau_prefix_collapses_with_observable_goal() {
        // Same chain, but state 2 is observably different (offers `goal`),
        // so only the τ prefix merges: blocks {0,1} and {2}.
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        b.interactive("goal", 2, 2);
        let m = b.build();
        let part = stochastic_branching_bisimulation(&m, View::Open);
        assert_eq!(part.num_blocks, 2);
        assert_eq!(part.block[0], part.block[1]);
        let min = minimize(&m, View::Open);
        assert_eq!(min.num_states(), 2);
        assert_close!(min.exit_rate(min.initial()), 1.0, 1e-12);
    }

    #[test]
    fn symmetric_markov_branches_lump() {
        // 0 branches at equal rates into two states with identical behaviour.
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 1.0, 1);
        b.markov(0, 1.0, 2);
        b.interactive("done", 1, 3);
        b.interactive("done", 2, 3);
        let min = minimize(&b.build(), View::Open);
        // blocks: {0}, {1,2}, {3}
        assert_eq!(min.num_states(), 3);
        // rate from {0} into {1,2} lumps to 2.0
        let init = min.initial();
        assert_close!(min.exit_rate(init), 2.0, 1e-12);
    }

    #[test]
    fn different_rates_do_not_merge() {
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 1.0, 2);
        b.markov(1, 2.0, 2);
        b.interactive("x", 2, 0);
        b.interactive("x", 2, 1);
        let part = stochastic_branching_bisimulation(&b.build(), View::Open);
        assert_ne!(part.block[0], part.block[1]);
    }

    #[test]
    fn visible_actions_block_merging() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("a", 0, 0);
        b.interactive("b", 1, 1);
        let part = stochastic_branching_bisimulation(&b.build(), View::Open);
        assert_eq!(part.num_blocks, 2);
    }

    #[test]
    fn quotient_preserves_uniformity_corollary1() {
        // uniform model with redundant states
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 2.0, 1);
        b.markov(0, 1.0, 0);
        b.markov(1, 3.0, 2);
        b.markov(2, 3.0, 1);
        b.tau(3, 0); // unreachable tau state
        let m = b.build();
        assert!(m.is_uniform(View::Open));
        let min = minimize(&m, View::Open);
        assert!(min.is_uniform(View::Open));
        // and the rate is preserved
        assert_eq!(min.uniformity(View::Open), Uniformity::Uniform(3.0));
    }

    #[test]
    fn minimization_is_idempotent() {
        let mut b = ImcBuilder::new(5, 0);
        b.tau(0, 1);
        b.tau(0, 2);
        b.markov(1, 1.0, 3);
        b.markov(2, 1.0, 4);
        b.interactive("end", 3, 3);
        b.interactive("end", 4, 4);
        let once = minimize(&b.build(), View::Open);
        let twice = minimize(&once, View::Open);
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_interactive(), twice.num_interactive());
        assert_eq!(once.num_markov(), twice.num_markov());
    }

    #[test]
    fn strong_is_finer_than_branching() {
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        let m = b.build();
        let strong = strong_stochastic_bisimulation(&m, View::Open);
        let branching = stochastic_branching_bisimulation(&m, View::Open);
        assert!(strong.num_blocks >= branching.num_blocks);
        // strong keeps the tau state separate; branching merges everything
        assert_eq!(strong.num_blocks, 2);
        assert_eq!(branching.num_blocks, 1);
    }

    #[test]
    fn closed_view_pre_emption_changes_result() {
        // Visible self-loop + Markov: hybrid state.
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("v", 0, 1);
        b.markov(0, 5.0, 1); // pre-empted under Closed
        b.interactive("v", 1, 1);
        let m = b.build();
        let closed = minimize(&m, View::Closed);
        // under urgency both states behave identically: only `v` matters
        assert_eq!(closed.num_states(), 1);
        let open = minimize(&m, View::Open);
        assert_eq!(open.num_states(), 2);
    }

    #[test]
    fn quotient_respects_initial_state() {
        let mut b = ImcBuilder::new(3, 2);
        b.tau(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        let m = b.build();
        let min = minimize(&m, View::Open);
        // everything merges into one ticking state; the quotient's initial
        // state must carry the Markov behaviour
        assert_eq!(min.num_states(), 1);
        assert!(min.exit_rate(min.initial()) > 0.0);
    }

    #[test]
    fn weak_is_coarser_than_branching() {
        // a.(b + τ.c) + a.c  vs  a.(b + τ.c): weakly bisimilar initial
        // states, not branching bisimilar.
        let mut b = ImcBuilder::new(12, 0);
        // process A at 0
        b.interactive("a", 0, 1);
        b.interactive("b", 1, 2);
        b.tau(1, 3);
        b.interactive("c", 3, 4);
        // process B at 5 (extra a.c summand)
        b.interactive("a", 5, 6);
        b.interactive("b", 6, 7);
        b.tau(6, 8);
        b.interactive("c", 8, 9);
        b.interactive("a", 5, 10);
        b.interactive("c", 10, 11);
        let m = b.build();
        let weak = stochastic_weak_bisimulation(&m, View::Open);
        assert_eq!(weak.block[0], weak.block[5], "weakly bisimilar");
        let branching = stochastic_branching_bisimulation(&m, View::Open);
        assert_ne!(branching.block[0], branching.block[5], "not branching");
        assert!(weak.num_blocks <= branching.num_blocks);
    }

    #[test]
    fn weak_quotient_preserves_uniformity() {
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 2.0, 1);
        b.tau(1, 2);
        b.markov(2, 2.0, 3);
        b.markov(3, 2.0, 0);
        let m = b.build();
        assert!(m.is_uniform(View::Open));
        let q = minimize_weak(&m, View::Open);
        assert!(q.is_uniform(View::Open));
        assert_eq!(q.uniformity(View::Open).rate(), Some(2.0));
    }

    #[test]
    fn weak_respects_labels() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        let m = b.build();
        let part = stochastic_weak_bisimulation_labeled(&m, View::Open, &[7, 9]);
        assert_eq!(part.num_blocks, 2);
        let part_unlabeled = stochastic_weak_bisimulation(&m, View::Open);
        assert_eq!(part_unlabeled.num_blocks, 1);
    }

    #[test]
    fn interactive_duplicates_dedup_in_quotient() {
        let mut b = ImcBuilder::new(4, 0);
        b.interactive("a", 0, 1);
        b.interactive("a", 0, 2);
        b.markov(1, 1.0, 3);
        b.markov(2, 1.0, 3);
        b.markov(3, 1.0, 1);
        let min = minimize(&b.build(), View::Open);
        // states 1,2,3 merge (rate-1 ticking within the class); the two
        // duplicate a-transitions collapse into one
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.num_interactive(), 1);
    }
}
