//! Debug-build construction audits: the paper's uniformity-preservation
//! lemmas (Lemma 1 for hiding, Lemma 2 for parallel composition, Lemma 3
//! for bisimulation minimization) restated as executable post-conditions.
//!
//! Every uniformity-preserving operator calls [`preserves_uniformity`] on
//! its result. In release builds the call compiles to nothing; in debug
//! builds (including all tests) a violated lemma panics immediately at the
//! operator that broke it, instead of surfacing later as a mysterious
//! `NotUniformError` in the analysis backend.

use crate::model::{Imc, View};

/// Asserts the lemma "if every input is uniform under `view`, so is the
/// output — and the output rate (when definite) is the sum of the definite
/// input rates" (a sum with one operand for the unary operators).
///
/// No-op in release builds.
#[inline]
pub(crate) fn preserves_uniformity(op: &str, view: View, inputs: &[&Imc], output: &Imc) {
    if cfg!(debug_assertions) {
        let in_u: Vec<_> = inputs.iter().map(|i| i.uniformity(view)).collect();
        if in_u.iter().all(|u| u.is_uniform()) {
            let out = output.uniformity(view);
            assert!(
                out.is_uniform(),
                "{op} violated uniformity by construction: \
                 inputs {in_u:?}, output {out:?}"
            );
            let expected: Option<f64> = in_u.iter().map(|u| u.rate()).sum();
            if let (Some(expected), Some(actual)) = (expected, out.rate()) {
                assert!(
                    unicon_numeric::rates_approx_eq(expected, actual),
                    "{op} changed the uniform rate: expected {expected}, got {actual}"
                );
            }
        }
    }
}
