//! Construction audits and the proof-obligation ledger.
//!
//! Two layers share this module:
//!
//! 1. **Debug assertions** ([`preserves_uniformity`]): the paper's
//!    uniformity-preservation lemmas (Lemma 1 for hiding, Lemma 2 for
//!    parallel composition, Lemma 3 for bisimulation minimization) restated
//!    as executable post-conditions. In release builds they compile to
//!    nothing; in debug builds a violated lemma panics at the operator that
//!    broke it.
//! 2. **The obligation ledger** ([`with_recording`], [`Obligation`]): an
//!    always-available, release-mode promotion of the same claims. While a
//!    recording session is active, every certified construction operation —
//!    `from_lts`/`from_ctmc`, `elapse`/`shared_elapse`, `hide`/`hide_all`,
//!    `relabel`, `parallel`, branching-bisimulation `minimize`, and the
//!    uIMC → uCTMDP `transform` — appends a typed [`Obligation`]: the lemma
//!    invoked, clones of the input and output objects, the uniform rates
//!    claimed at record time, and op-specific witness data (hidden-action
//!    sets, synchronization sets, quotient maps, exit rates). The
//!    *independent* checker lives in `unicon-verify::certify`; this module
//!    only records what happened.
//!
//! Operations **not** in the certified set above (e.g. weak or strong
//! minimization, `apply_pre_emption`) record nothing. Running one inside a
//! recorded pipeline therefore leaves a fingerprint gap between consecutive
//! obligations, which the checker reports as a `U015` certificate-gap
//! finding — off-ledger construction steps are detected, not silently
//! trusted.
//!
//! Recording is thread-local and opt-in, so the hot compositional paths pay
//! nothing (one branch per operation) unless an audit is running.

use std::cell::RefCell;

use crate::model::{Imc, View};

/// Lemma tags attached to obligations, as serialized into certificates.
pub mod lemma {
    /// A construction leaf: no inputs, nothing to preserve.
    pub const LEAF: &str = "leaf";
    /// The elapse operator is uniform at the phase-type's uniformization
    /// rate (Section 3.3 of the paper).
    pub const ELAPSE: &str = "elapse-uniform";
    /// Lemma 1: hiding preserves uniformity.
    pub const LEMMA1: &str = "lemma1-hide";
    /// Relabelling does not touch Markov transitions, hence preserves
    /// uniformity trivially (remark after Lemma 1).
    pub const RELABEL: &str = "relabel-invariant";
    /// Lemma 2: parallel composition is uniform at the sum of the rates.
    pub const LEMMA2: &str = "lemma2-parallel";
    /// Lemma 3 / Corollary 1: bisimulation quotients preserve uniformity.
    pub const LEMMA3: &str = "lemma3-minimize";
    /// Theorem 1: the uIMC → uCTMDP transformation preserves
    /// scheduler-indexed path measures (and the uniform rate).
    pub const THEOREM1: &str = "theorem1-transform";
}

/// Op-specific witness data carried by an [`Obligation`].
#[derive(Debug, Clone, PartialEq)]
pub enum Witness {
    /// `from_lts`: an LTS embedding, uniform with rate `E = 0`.
    Lts,
    /// `from_ctmc`: a CTMC embedding (no interactive transitions).
    Ctmc {
        /// Structural fingerprint of the source CTMC.
        ctmc_fingerprint: u64,
    },
    /// `elapse`: the exit-rate witness is the uniformization rate every
    /// state of the constraint must carry.
    Elapse {
        /// The phase-type's uniformization rate `E`.
        rate: f64,
        /// The gated action `f`.
        gate: String,
        /// The restart action `r`.
        restart: String,
        /// Fingerprint of the uniformized phase-type chain.
        phase_fingerprint: u64,
    },
    /// `shared_elapse`: one shared timer, constant exit rate `E`.
    SharedElapse {
        /// The shared uniformization rate `E`.
        rate: f64,
    },
    /// `hide` / `hide_all`: the set of action names internalized.
    Hide {
        /// The hidden action names, exactly as requested.
        hidden: Vec<String>,
    },
    /// `relabel`: the `(from, to)` renaming pairs.
    Relabel {
        /// The renaming map, in call order.
        map: Vec<(String, String)>,
    },
    /// `parallel`: the synchronization set.
    Parallel {
        /// The synchronized action names.
        sync: Vec<String>,
    },
    /// `minimize` / `minimize_labeled`: the quotient map.
    Minimize {
        /// The view the quotient was taken under.
        view: View,
        /// `block[s]` is the block of input state `s`.
        block: Vec<u32>,
        /// Number of blocks.
        num_blocks: usize,
        /// The initial per-state labels the partition had to respect,
        /// `None` for unlabeled minimization.
        labels: Option<Vec<u32>>,
    },
    /// `transform`: Theorem 1, linking the strictly alternating IMC (the
    /// obligation's output) to the extracted CTMDP.
    Transform {
        /// Structural fingerprint of the extracted CTMDP.
        ctmdp_fingerprint: u64,
        /// The CTMDP's uniform rate, if definite.
        rate: Option<f64>,
    },
}

impl Witness {
    /// A short stable tag naming the witness kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Witness::Lts => "lts",
            Witness::Ctmc { .. } => "ctmc",
            Witness::Elapse { .. } => "elapse",
            Witness::SharedElapse { .. } => "shared_elapse",
            Witness::Hide { .. } => "hide",
            Witness::Relabel { .. } => "relabel",
            Witness::Parallel { .. } => "parallel",
            Witness::Minimize { .. } => "minimize",
            Witness::Transform { .. } => "transform",
        }
    }
}

/// One recorded construction step: the operation, the lemma it leans on,
/// clones of the objects involved, the uniform rates claimed at record
/// time, and the op-specific [`Witness`].
///
/// Obligations are *claims*, not proofs: nothing here is trusted until
/// `unicon-verify::certify` replays the step against the recorded objects.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Sequence number within the recording session (0-based).
    pub id: usize,
    /// The operation name (`"hide"`, `"parallel"`, …).
    pub op: &'static str,
    /// The lemma tag (see [`lemma`]).
    pub lemma: &'static str,
    /// The view the lemma's uniformity claim is made under.
    pub view: View,
    /// Clones of the input models (empty for leaves).
    pub inputs: Vec<Imc>,
    /// A clone of the output model.
    pub output: Imc,
    /// The inputs' uniform rates under `view` at record time
    /// (`None` = vacuous or non-uniform).
    pub input_rates: Vec<Option<f64>>,
    /// The output's uniform rate under `view` at record time.
    pub output_rate: Option<f64>,
    /// Op-specific witness data.
    pub witness: Witness,
}

thread_local! {
    static LEDGER: RefCell<Option<Vec<Obligation>>> = const { RefCell::new(None) };
}

/// Whether an obligation-recording session is active on this thread.
pub fn is_recording() -> bool {
    LEDGER.with(|l| l.borrow().is_some())
}

/// Runs `f` with obligation recording enabled on this thread and returns
/// its result together with the recorded obligations, in construction
/// order.
///
/// Sessions nest: an inner `with_recording` records into its own ledger
/// and restores the outer one (untouched) when it finishes — including on
/// unwind.
pub fn with_recording<T>(f: impl FnOnce() -> T) -> (T, Vec<Obligation>) {
    struct Restore(Option<Vec<Obligation>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LEDGER.with(|l| *l.borrow_mut() = self.0.take());
        }
    }
    let prev = LEDGER.with(|l| l.borrow_mut().replace(Vec::new()));
    let guard = Restore(prev);
    let result = f();
    let recorded = LEDGER
        .with(|l| l.borrow_mut().replace(Vec::new()))
        .unwrap_or_default();
    drop(guard);
    (result, recorded)
}

/// Appends an obligation to the active ledger; a no-op (without cloning
/// anything) when no recording session is active.
///
/// Called by the certified construction operators of this crate and by
/// `unicon-transform`; not intended for direct use elsewhere.
pub fn record(
    op: &'static str,
    lemma: &'static str,
    view: View,
    inputs: &[&Imc],
    output: &Imc,
    witness: Witness,
) {
    if !is_recording() {
        return;
    }
    let input_rates = inputs.iter().map(|i| i.uniformity(view).rate()).collect();
    let output_rate = output.uniformity(view).rate();
    LEDGER.with(|l| {
        if let Some(ledger) = l.borrow_mut().as_mut() {
            let id = ledger.len();
            ledger.push(Obligation {
                id,
                op,
                lemma,
                view,
                inputs: inputs.iter().map(|i| (*i).clone()).collect(),
                output: output.clone(),
                input_rates,
                output_rate,
                witness,
            });
        }
    });
}

/// Asserts the lemma "if every input is uniform under `view`, so is the
/// output — and the output rate (when definite) is the sum of the definite
/// input rates" (a sum with one operand for the unary operators).
///
/// No-op in release builds; the release-mode counterpart is the obligation
/// ledger above, checked by `unicon-verify::certify`.
#[inline]
pub(crate) fn preserves_uniformity(op: &str, view: View, inputs: &[&Imc], output: &Imc) {
    if cfg!(debug_assertions) {
        let in_u: Vec<_> = inputs.iter().map(|i| i.uniformity(view)).collect();
        if in_u.iter().all(|u| u.is_uniform()) {
            let out = output.uniformity(view);
            assert!(
                out.is_uniform(),
                "{op} violated uniformity by construction: \
                 inputs {in_u:?}, output {out:?}"
            );
            let expected: Option<f64> = in_u.iter().map(|u| u.rate()).sum();
            if let (Some(expected), Some(actual)) = (expected, out.rate()) {
                assert!(
                    unicon_numeric::rates_approx_eq(expected, actual),
                    "{op} changed the uniform rate: expected {expected}, got {actual}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ImcBuilder;

    fn uniform_pair(e: f64) -> Imc {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, e, 1);
        b.markov(1, e, 0);
        b.interactive("a", 0, 0);
        b.build()
    }

    #[test]
    fn recording_is_off_by_default() {
        assert!(!is_recording());
        let _ = uniform_pair(1.0).hide(&["a"]);
        assert!(!is_recording());
    }

    #[test]
    fn with_recording_captures_ops_in_order() {
        let ((), obligations) = with_recording(|| {
            let m = uniform_pair(2.0);
            let n = uniform_pair(3.0);
            let p = m.parallel(&n, &[]);
            let _ = p.hide(&["a"]);
        });
        let ops: Vec<&str> = obligations.iter().map(|o| o.op).collect();
        assert_eq!(ops, vec!["parallel", "hide"]);
        assert_eq!(obligations[0].id, 0);
        assert_eq!(obligations[1].id, 1);
        // The chain links: hide's input is the parallel output.
        assert_eq!(
            obligations[1].inputs[0].fingerprint(),
            obligations[0].output.fingerprint()
        );
        // Lemma 2's claimed rates were captured.
        assert_eq!(obligations[0].input_rates, vec![Some(2.0), Some(3.0)]);
        assert_eq!(obligations[0].output_rate, Some(5.0));
    }

    #[test]
    fn nested_sessions_restore_the_outer_ledger() {
        let ((), outer) = with_recording(|| {
            let _ = uniform_pair(1.0).hide(&["a"]);
            let ((), inner) = with_recording(|| {
                let _ = uniform_pair(1.0).hide(&["a"]);
            });
            assert_eq!(inner.len(), 1);
            let _ = uniform_pair(1.0).hide(&["a"]);
        });
        // The inner session's obligation did not leak into the outer ledger.
        assert_eq!(outer.len(), 2);
    }
}
