//! Numeric substrate for the `unicon` workspace.
//!
//! This crate hosts the numerical kernels shared by the stochastic-model
//! crates:
//!
//! * [`FoxGlynn`] — stable computation of Poisson probabilities
//!   ψ(n, λ) together with the truncation points used by uniformization-based
//!   transient analysis and by the uniform-CTMDP timed-reachability algorithm,
//! * [`sum`] — compensated (Neumaier) summation,
//! * [`approx`] — tolerance-based floating point comparisons used pervasively
//!   in tests,
//! * [`special`] — the few special functions needed (`ln_gamma`, Poisson pmf
//!   and cdf in log space, Erlang cdf),
//! * [`fnv`] — seedless FNV-1a 64 hashing for reproducible structural
//!   fingerprints and checksum trailers.
//!
//! # Examples
//!
//! ```
//! use unicon_numeric::FoxGlynn;
//!
//! let fg = FoxGlynn::new(10.0);
//! // Poisson weights are a probability distribution.
//! let total: f64 = (0..100).map(|n| fg.psi(n)).sum();
//! assert!((total - 1.0).abs() < 1e-12);
//! // Right truncation point for precision 1e-6 sits a few standard
//! // deviations above the mean.
//! let k = fg.right_truncation(1e-6);
//! assert!(k > 10 && k < 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod fnv;
pub mod foxglynn;
pub mod rng;
pub mod special;
pub mod sum;

pub use approx::{approx_eq, rate_tolerance, rates_approx_eq, ApproxMode, RATE_RTOL};
pub use foxglynn::{CachedWeights, FoxGlynn, FoxGlynnError, WeightCache};
pub use sum::{chunked_stable_sum, stable_sum, NeumaierSum};
