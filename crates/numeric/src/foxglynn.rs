//! Fox–Glynn computation of Poisson probabilities and truncation points.
//!
//! Uniformization-based transient analysis of CTMCs and the uniform-CTMDP
//! timed-reachability algorithm both need the Poisson weights
//! `ψ(n) = e^{-λ} λ^n / n!` for `λ = E·t` together with a *right truncation
//! point* `k(ε, E, t)` — the number of value-iteration steps reported in the
//! paper's Table 1. Fox & Glynn (CACM 1988) show how to obtain both without
//! overflow or underflow; we implement the same idea with a mode-centred
//! recurrence and compensated normalization, which is accurate for the λ
//! range relevant here (up to ~10⁷).

use crate::NeumaierSum;

/// Relative cutoff below which weights are treated as numerically zero.
///
/// Far smaller than any model-checking ε, so truncating there does not
/// affect reported truncation points down to ε ≈ 1e-14.
const WEIGHT_CUTOFF: f64 = 1e-18;

/// Typed failure of a Fox–Glynn weight computation: the `(λ = rate·t, ε)`
/// regime that the stored window cannot serve, reported instead of a panic
/// or NaN weights so long-running analyses can fail loudly and partially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoxGlynnError {
    /// `λ = rate·t` is NaN, infinite or negative — typically a mis-scaled
    /// rate or time bound upstream.
    InvalidLambda {
        /// The offending Poisson parameter.
        lambda: f64,
    },
    /// The truncation precision lies outside `(0, 1)` (including NaN).
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// The requested precision is below what the stored weight window can
    /// certify: mass truncated at the relative weight cutoff (1e-18) is no
    /// longer negligible against `ε`, so the truncation point would be
    /// determined by underflow, not by the Poisson tail.
    Underflow {
        /// The Poisson parameter `λ = rate·t` of the failing request.
        lambda: f64,
        /// The precision that cannot be certified for this `λ`.
        epsilon: f64,
    },
}

impl std::fmt::Display for FoxGlynnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoxGlynnError::InvalidLambda { lambda } => write!(
                f,
                "Fox-Glynn requires a finite nonnegative lambda = rate*t, got {lambda}"
            ),
            FoxGlynnError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must lie in (0, 1), got {epsilon}")
            }
            FoxGlynnError::Underflow { lambda, epsilon } => write!(
                f,
                "Fox-Glynn underflow: epsilon = {epsilon} is below the certifiable \
                 floor {:.3e} for lambda = rate*t = {lambda} (weights below the \
                 1e-18 relative cutoff are dropped); use a larger epsilon or \
                 rescale the rates",
                FoxGlynn::min_certifiable_epsilon(*lambda)
            ),
        }
    }
}

impl std::error::Error for FoxGlynnError {}

/// Poisson weights `ψ(n, λ)` with stable tails and truncation queries.
///
/// The weights are stored for the contiguous index window in which they are
/// numerically significant; [`FoxGlynn::psi`] returns `0.0` outside it.
///
/// # Examples
///
/// ```
/// use unicon_numeric::FoxGlynn;
///
/// let fg = FoxGlynn::new(100.0);
/// // ψ sums to 1 over the window.
/// assert!((fg.total() - 1.0).abs() < 1e-12);
/// // The mode carries the largest weight.
/// assert!(fg.psi(100) >= fg.psi(90));
/// assert!(fg.psi(100) >= fg.psi(110));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FoxGlynn {
    lambda: f64,
    /// Index of `weights[0]`.
    window_start: usize,
    /// Normalized weights for `window_start..window_start + weights.len()`.
    weights: Vec<f64>,
    /// Suffix sums: `suffix[i] = Σ_{j >= i} weights[j]` (window-relative).
    suffix: Vec<f64>,
}

impl FoxGlynn {
    /// Computes the Poisson weights for parameter `lambda >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative, NaN or infinite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Fox-Glynn requires a finite nonnegative lambda, got {lambda}"
        );
        if lambda == 0.0 {
            return Self {
                lambda,
                window_start: 0,
                weights: vec![1.0],
                suffix: vec![1.0],
            };
        }
        let mode = lambda.floor() as usize;

        // Downward recurrence from the mode: w(n-1) = w(n) * n / λ.
        // `down[i]` is the (unnormalized) weight of index `mode - 1 - i`.
        let mut down = Vec::new();
        let mut w = 1.0f64;
        let mut n = mode;
        while n > 0 {
            w *= n as f64 / lambda;
            if w < WEIGHT_CUTOFF {
                break;
            }
            down.push(w);
            n -= 1;
        }
        let window_start = mode - down.len();

        // Upward recurrence from the mode: w(n+1) = w(n) * λ / (n+1).
        let mut up = Vec::new();
        let mut w = 1.0f64;
        let mut n = mode;
        loop {
            w *= lambda / (n + 1) as f64;
            if w < WEIGHT_CUTOFF {
                break;
            }
            up.push(w);
            n += 1;
        }

        // Assemble raw weights [window_start ..= mode + up.len()].
        let mut weights = Vec::with_capacity(down.len() + 1 + up.len());
        weights.extend(down.iter().rev().copied());
        weights.push(1.0);
        weights.extend(up.iter().copied());

        // Normalize with compensated summation, adding small terms first.
        let mut total = NeumaierSum::new();
        let mut sorted: Vec<f64> = weights.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        total.extend(sorted);
        let total = total.value();
        for w in &mut weights {
            *w /= total;
        }

        // Suffix sums for O(1) tail queries.
        let mut suffix = vec![0.0; weights.len() + 1];
        let mut acc = NeumaierSum::new();
        for i in (0..weights.len()).rev() {
            acc.add(weights[i]);
            suffix[i] = acc.value();
        }
        suffix.pop();

        Self {
            lambda,
            window_start,
            weights,
            suffix,
        }
    }

    /// Non-panicking constructor: [`FoxGlynn::new`] with the precondition
    /// surfaced as [`FoxGlynnError::InvalidLambda`].
    ///
    /// # Errors
    ///
    /// [`FoxGlynnError::InvalidLambda`] if `lambda` is negative, NaN or
    /// infinite.
    pub fn try_new(lambda: f64) -> Result<Self, FoxGlynnError> {
        if lambda.is_finite() && lambda >= 0.0 {
            Ok(Self::new(lambda))
        } else {
            Err(FoxGlynnError::InvalidLambda { lambda })
        }
    }

    /// The smallest truncation precision the stored window can certify for
    /// `lambda`.
    ///
    /// Both recurrences stop once a weight falls below the relative cutoff
    /// 1e-18; the neglected tail mass beyond each end is bounded by a
    /// geometric series whose ratio approaches 1 like `1 - c/√λ`, giving a
    /// total neglected mass of order `1e-18 · (√λ + const)`. Requests with
    /// an `epsilon` below this floor would have their truncation point set
    /// by underflow rather than the Poisson tail, so they are refused with
    /// [`FoxGlynnError::Underflow`].
    pub fn min_certifiable_epsilon(lambda: f64) -> f64 {
        // 2 tails, geometric-sum factor ≈ √λ/9 + 1 each, and a 4x safety
        // margin on top of the cutoff.
        WEIGHT_CUTOFF * 8.0 * (lambda.max(0.0).sqrt() / 9.0 + 1.0)
    }

    /// Computes the weights and right truncation point for `λ = rate·t`
    /// with every failure surfaced as a typed [`FoxGlynnError`] — the
    /// guarded engines' entry point, bitwise identical to
    /// [`FoxGlynn::new`] + [`FoxGlynn::right_truncation`] on success.
    ///
    /// # Errors
    ///
    /// [`FoxGlynnError::InvalidLambda`] for non-finite or negative λ,
    /// [`FoxGlynnError::InvalidEpsilon`] for ε outside `(0, 1)`, and
    /// [`FoxGlynnError::Underflow`] when ε is below
    /// [`FoxGlynn::min_certifiable_epsilon`].
    pub fn try_weights(lambda: f64, epsilon: f64) -> Result<CachedWeights, FoxGlynnError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(FoxGlynnError::InvalidEpsilon { epsilon });
        }
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(FoxGlynnError::InvalidLambda { lambda });
        }
        if epsilon < Self::min_certifiable_epsilon(lambda) {
            return Err(FoxGlynnError::Underflow { lambda, epsilon });
        }
        let fg = Self::new(lambda);
        // Defence in depth: the recurrences are stable over the admitted
        // regime, but a future regression must fail loudly here rather
        // than propagate NaN into value iterations.
        if !fg.total().is_finite() || fg.total() <= 0.0 || fg.weights.iter().any(|w| !w.is_finite())
        {
            return Err(FoxGlynnError::Underflow { lambda, epsilon });
        }
        let truncation = fg.right_truncation(epsilon);
        Ok(CachedWeights { fg, truncation })
    }

    /// The Poisson parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// `ψ(n, λ)`; zero outside the numerically significant window.
    pub fn psi(&self, n: usize) -> f64 {
        if n < self.window_start {
            return 0.0;
        }
        self.weights
            .get(n - self.window_start)
            .copied()
            .unwrap_or(0.0)
    }

    /// First index of the significant window.
    pub fn window_start(&self) -> usize {
        self.window_start
    }

    /// One past the last index of the significant window.
    pub fn window_end(&self) -> usize {
        self.window_start + self.weights.len()
    }

    /// Sum of all stored (normalized) weights; 1 up to rounding.
    pub fn total(&self) -> f64 {
        self.suffix.first().copied().unwrap_or(0.0)
    }

    /// `Σ_{n >= i} ψ(n)` — the probability of at least `i` Poisson events.
    pub fn tail_from(&self, i: usize) -> f64 {
        if i <= self.window_start {
            return 1.0;
        }
        let rel = i - self.window_start;
        self.suffix.get(rel).copied().unwrap_or(0.0)
    }

    /// Right truncation point `k(ε, λ)`: the smallest `k` with
    /// `Σ_{n <= k} ψ(n) >= 1 - ε`.
    ///
    /// This equals the iteration count of the uniform-CTMDP
    /// timed-reachability algorithm for precision `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn right_truncation(&self, epsilon: f64) -> usize {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        // smallest k with tail_from(k+1) <= ε
        for rel in 0..self.weights.len() {
            let tail_after = self.suffix.get(rel + 1).copied().unwrap_or(0.0);
            if tail_after <= epsilon {
                return self.window_start + rel;
            }
        }
        self.window_end().saturating_sub(1)
    }

    /// Left truncation point: the largest `l` with `Σ_{n < l} ψ(n) <= ε`
    /// (0 if no prefix may be dropped).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn left_truncation(&self, epsilon: f64) -> usize {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        let mut acc = NeumaierSum::new();
        for (rel, &w) in self.weights.iter().enumerate() {
            acc.add(w);
            if acc.value() > epsilon {
                return self.window_start + rel;
            }
        }
        self.window_end()
    }
}

/// A Fox–Glynn weight vector together with the right truncation point it
/// was requested for — the unit the batched reachability engine caches.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedWeights {
    /// The Poisson weights for `λ = rate · t`.
    pub fg: FoxGlynn,
    /// `k(ε, rate, t)` — the value-iteration step count.
    pub truncation: usize,
}

/// A memoization table for Fox–Glynn weight vectors, keyed by the exact
/// bit patterns of `(rate, t, epsilon)`.
///
/// Computing the weights for `λ = E·t` costs `O(λ + √λ)` and is repeated
/// verbatim whenever several queries share a time bound (max/min pairs,
/// repeated batch runs, figure sweeps). The cache trades a small amount of
/// memory — `O(√λ)` per distinct key — for skipping that recomputation,
/// and counts hits/misses so engines can report cache effectiveness.
///
/// Keys compare by `f64::to_bits`, so `-0.0`/`+0.0` or differently-rounded
/// inputs are distinct keys; that is deliberate — a cache hit must be
/// bitwise indistinguishable from recomputation.
///
/// # Examples
///
/// ```
/// use unicon_numeric::WeightCache;
///
/// let mut cache = WeightCache::new();
/// let k1 = cache.get(2.0, 50.0, 1e-6).truncation;
/// let k2 = cache.get(2.0, 50.0, 1e-6).truncation;
/// assert_eq!(k1, k2);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightCache {
    entries: std::collections::HashMap<(u64, u64, u64), CachedWeights>,
    hits: usize,
    misses: usize,
}

impl WeightCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the weights for `λ = rate · t` truncated at precision
    /// `epsilon`, computing and storing them on first use.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`FoxGlynn::new`] and
    /// [`FoxGlynn::right_truncation`] (invalid `rate · t` or `epsilon`).
    pub fn get(&mut self, rate: f64, t: f64, epsilon: f64) -> &CachedWeights {
        let key = (rate.to_bits(), t.to_bits(), epsilon.to_bits());
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                let fg = FoxGlynn::new(rate * t);
                let truncation = fg.right_truncation(epsilon);
                e.insert(CachedWeights { fg, truncation })
            }
        }
    }

    /// Number of lookups answered from the table.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of lookups that had to compute fresh weights.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct `(rate, t, epsilon)` keys stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::special::{poisson_cdf, poisson_pmf};

    #[test]
    fn zero_lambda_is_point_mass() {
        let fg = FoxGlynn::new(0.0);
        assert_eq!(fg.psi(0), 1.0);
        assert_eq!(fg.psi(1), 0.0);
        assert_eq!(fg.right_truncation(1e-6), 0);
        assert_eq!(fg.left_truncation(1e-6), 0);
        assert_eq!(fg.tail_from(0), 1.0);
        assert_eq!(fg.tail_from(1), 0.0);
    }

    #[test]
    fn weights_match_direct_pmf_small_lambda() {
        for lambda in [0.3, 1.0, 4.5, 20.0] {
            let fg = FoxGlynn::new(lambda);
            for n in 0..60u64 {
                assert_close!(fg.psi(n as usize), poisson_pmf(n, lambda), 1e-12);
            }
        }
    }

    #[test]
    fn weights_match_direct_pmf_large_lambda() {
        let lambda = 5000.0;
        let fg = FoxGlynn::new(lambda);
        for n in (4800..5200).step_by(17) {
            let direct = poisson_pmf(n as u64, lambda);
            let rel = (fg.psi(n) - direct).abs() / direct;
            assert!(rel < 1e-9, "n={n}: fg={} direct={direct}", fg.psi(n));
        }
    }

    #[test]
    fn weights_normalized() {
        for lambda in [0.5, 7.0, 123.0, 9999.5, 80_000.0] {
            let fg = FoxGlynn::new(lambda);
            assert_close!(fg.tail_from(0), 1.0, 1e-10);
        }
    }

    #[test]
    fn right_truncation_matches_cdf() {
        for lambda in [1.0, 10.0, 250.0] {
            let fg = FoxGlynn::new(lambda);
            let eps = 1e-6;
            let k = fg.right_truncation(eps);
            assert!(poisson_cdf(k as u64, lambda) >= 1.0 - eps - 1e-12);
            if k > 0 {
                assert!(poisson_cdf(k as u64 - 1, lambda) < 1.0 - eps + 1e-12);
            }
        }
    }

    #[test]
    fn truncation_grows_like_lambda_plus_sqrt() {
        // k ≈ λ + c·sqrt(λ): check the paper's Table-1 flavour numbers.
        let fg = FoxGlynn::new(200.0);
        let k = fg.right_truncation(1e-6);
        assert!(k > 200 && k < 300, "k = {k}");
        let fg = FoxGlynn::new(60_000.0);
        let k = fg.right_truncation(1e-6);
        assert!(k > 60_000 && k < 62_500, "k = {k}");
    }

    #[test]
    fn left_truncation_is_sane() {
        let fg = FoxGlynn::new(10_000.0);
        let l = fg.left_truncation(1e-6);
        assert!(l > 9000 && l < 10_000, "l = {l}");
        // prefix below l really is small
        let mut acc = 0.0;
        for n in 0..l {
            acc += fg.psi(n);
        }
        assert!(acc <= 1e-6 + 1e-12);
    }

    #[test]
    fn tail_is_monotone_decreasing() {
        let fg = FoxGlynn::new(42.0);
        let mut prev = 1.0;
        for i in 0..fg.window_end() + 2 {
            let t = fg.tail_from(i);
            assert!(t <= prev + 1e-15);
            prev = t;
        }
    }

    #[test]
    fn mode_has_maximal_weight() {
        for lambda in [3.7, 12.0, 777.3] {
            let fg = FoxGlynn::new(lambda);
            let mode = lambda.floor() as usize;
            let wm = fg.psi(mode);
            for n in fg.window_start()..fg.window_end() {
                assert!(fg.psi(n) <= wm + 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite nonnegative lambda")]
    fn rejects_negative_lambda() {
        FoxGlynn::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn rejects_bad_epsilon() {
        FoxGlynn::new(1.0).right_truncation(0.0);
    }

    #[test]
    fn try_new_matches_new_and_reports_bad_lambda() {
        let a = FoxGlynn::try_new(42.5).unwrap();
        assert_eq!(a, FoxGlynn::new(42.5));
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = FoxGlynn::try_new(bad).unwrap_err();
            assert!(
                matches!(err, FoxGlynnError::InvalidLambda { lambda } if lambda.to_bits() == bad.to_bits())
            );
            assert!(err.to_string().contains("lambda"));
        }
    }

    #[test]
    fn try_weights_is_bitwise_identical_to_direct_computation() {
        for (lambda, eps) in [(0.5, 1e-6), (200.0, 1e-9), (60_000.0, 1e-12)] {
            let cw = FoxGlynn::try_weights(lambda, eps).unwrap();
            let fg = FoxGlynn::new(lambda);
            assert_eq!(cw.fg, fg);
            assert_eq!(cw.truncation, fg.right_truncation(eps));
        }
    }

    #[test]
    fn try_weights_rejects_bad_epsilon_and_underflow() {
        assert!(matches!(
            FoxGlynn::try_weights(10.0, 0.0),
            Err(FoxGlynnError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            FoxGlynn::try_weights(10.0, f64::NAN),
            Err(FoxGlynnError::InvalidEpsilon { .. })
        ));
        // below the certifiable floor: typed underflow, never NaN weights
        let err = FoxGlynn::try_weights(1e6, 1e-17).unwrap_err();
        assert!(matches!(
            err,
            FoxGlynnError::Underflow { lambda, epsilon }
                if lambda == 1e6 && epsilon == 1e-17
        ));
        assert!(err.to_string().contains("underflow"));
    }

    #[test]
    fn certifiable_floor_grows_with_lambda_but_stays_tiny() {
        let small = FoxGlynn::min_certifiable_epsilon(1.0);
        let large = FoxGlynn::min_certifiable_epsilon(1e6);
        assert!(small < large);
        // 1e-12 stays certifiable across the whole supported regime
        assert!(large < 1e-12);
    }

    #[test]
    fn cache_hits_are_bitwise_identical_to_recomputation() {
        let mut cache = WeightCache::new();
        let first = cache.get(2.0047, 100.0, 1e-6).clone();
        let again = cache.get(2.0047, 100.0, 1e-6).clone();
        assert_eq!(first, again);
        let fresh = FoxGlynn::new(2.0047 * 100.0);
        assert_eq!(first.fg, fresh);
        assert_eq!(first.truncation, fresh.right_truncation(1e-6));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn cache_distinguishes_rate_time_and_epsilon() {
        let mut cache = WeightCache::new();
        cache.get(2.0, 10.0, 1e-6);
        cache.get(10.0, 2.0, 1e-6); // same λ, different key — by design
        cache.get(2.0, 10.0, 1e-9);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert!(!cache.is_empty());
    }

    /// The serve daemon keeps one cache alive across many client
    /// sessions; the hit/miss counters are cumulative over the cache's
    /// lifetime, so callers snapshot them and report per-session deltas.
    /// This pins both properties: warmth carries across sessions, and
    /// delta accounting sees exactly the traffic of its own session.
    #[test]
    fn cache_counters_support_cross_session_delta_accounting() {
        let mut cache = WeightCache::new();

        // Session A: two distinct keys, one repeat.
        let (h0, m0) = (cache.hits(), cache.misses());
        cache.get(2.0, 10.0, 1e-6);
        cache.get(2.0, 20.0, 1e-6);
        cache.get(2.0, 10.0, 1e-6);
        assert_eq!((cache.hits() - h0, cache.misses() - m0), (1, 2));

        // Session B reuses the warm cache: its repeats of A's keys are
        // hits, only its novel key misses.
        let (h1, m1) = (cache.hits(), cache.misses());
        cache.get(2.0, 10.0, 1e-6);
        cache.get(2.0, 20.0, 1e-6);
        cache.get(2.0, 30.0, 1e-6);
        assert_eq!((cache.hits() - h1, cache.misses() - m1), (2, 1));

        // Lifetime totals are the sums of the per-session deltas.
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (3, 3, 3));
    }
}
