//! Tolerance-based floating point comparison helpers.

/// How two floating point numbers are compared by [`approx_eq`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxMode {
    /// `|a - b| <= tol`.
    Absolute(f64),
    /// `|a - b| <= tol * max(|a|, |b|)`.
    Relative(f64),
    /// Passes if either the absolute or the relative criterion holds.
    Either {
        /// Absolute tolerance.
        abs: f64,
        /// Relative tolerance.
        rel: f64,
    },
}

impl Default for ApproxMode {
    fn default() -> Self {
        ApproxMode::Either {
            abs: 1e-12,
            rel: 1e-9,
        }
    }
}

/// Compares two floats under the given [`ApproxMode`].
///
/// NaNs are never approximately equal to anything; equal infinities are.
///
/// # Examples
///
/// ```
/// use unicon_numeric::{approx_eq, ApproxMode};
///
/// assert!(approx_eq(1.0, 1.0 + 1e-13, ApproxMode::default()));
/// assert!(!approx_eq(1.0, 1.1, ApproxMode::Absolute(1e-3)));
/// assert!(approx_eq(1e9, 1e9 + 1.0, ApproxMode::Relative(1e-6)));
/// ```
pub fn approx_eq(a: f64, b: f64, mode: ApproxMode) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a == b {
        return true; // also covers equal infinities
    }
    if a.is_infinite() || b.is_infinite() {
        return false;
    }
    let diff = (a - b).abs();
    match mode {
        ApproxMode::Absolute(tol) => diff <= tol,
        ApproxMode::Relative(tol) => diff <= tol * a.abs().max(b.abs()),
        ApproxMode::Either { abs, rel } => diff <= abs || diff <= rel * a.abs().max(b.abs()),
    }
}

/// The workspace-wide relative tolerance for comparing transition and exit
/// rates — see [`rates_approx_eq`].
pub const RATE_RTOL: f64 = 1e-9;

/// The absolute tolerance the shared rate policy grants two rates: scaled
/// by the larger magnitude, floored at [`RATE_RTOL`] itself so rates near
/// zero still compare sanely.
pub fn rate_tolerance(a: f64, b: f64) -> f64 {
    RATE_RTOL * a.abs().max(b.abs()).max(1.0)
}

/// The **single** tolerance policy every uniformity check in the workspace
/// uses to decide whether two exit rates are "the same rate E".
///
/// The CTMC, IMC and CTMDP uniformity checks, the elapse operator's rate
/// guard, the `UniformImc` construction audit and the `unicon-verify` lints
/// all route through this function, so no two layers can ever disagree on
/// whether a model is uniform.
///
/// NaNs are never equal; equal infinities are.
///
/// # Examples
///
/// ```
/// use unicon_numeric::approx::rates_approx_eq;
///
/// assert!(rates_approx_eq(2.0, 2.0 + 1e-12));
/// assert!(rates_approx_eq(1e12, 1e12 + 1.0));
/// assert!(!rates_approx_eq(1.0, 2.0));
/// assert!(!rates_approx_eq(f64::NAN, f64::NAN));
/// ```
pub fn rates_approx_eq(a: f64, b: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        // NaN equals nothing; infinities only themselves (a scaled
        // tolerance would be infinite and accept any finite partner).
        return a == b;
    }
    a == b || (a - b).abs() <= rate_tolerance(a, b)
}

/// Asserts approximate equality with a helpful message.
///
/// Accepts an optional absolute tolerance (defaults to `1e-9`).
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr) => {
        $crate::assert_close!($a, $b, 1e-9)
    };
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol): (f64, f64, f64) = ($a, $b, $tol);
        assert!(
            $crate::approx_eq(a, b, $crate::ApproxMode::Absolute(tol)),
            "assert_close failed: {a} vs {b} (|diff| = {:e} > tol = {:e})",
            (a - b).abs(),
            tol
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality() {
        assert!(approx_eq(0.5, 0.5, ApproxMode::Absolute(0.0)));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, ApproxMode::default()));
        assert!(!approx_eq(f64::NAN, 0.0, ApproxMode::default()));
    }

    #[test]
    fn infinities() {
        assert!(approx_eq(
            f64::INFINITY,
            f64::INFINITY,
            ApproxMode::default()
        ));
        assert!(!approx_eq(
            f64::INFINITY,
            f64::NEG_INFINITY,
            ApproxMode::default()
        ));
        assert!(!approx_eq(f64::INFINITY, 1e300, ApproxMode::default()));
    }

    #[test]
    fn relative_mode_scales() {
        assert!(approx_eq(1e12, 1e12 + 1.0, ApproxMode::Relative(1e-9)));
        assert!(!approx_eq(1e-12, 2e-12, ApproxMode::Relative(1e-9)));
    }

    #[test]
    fn either_mode_catches_tiny_values() {
        assert!(approx_eq(
            1e-13,
            2e-13,
            ApproxMode::Either {
                abs: 1e-12,
                rel: 1e-9
            }
        ));
    }

    #[test]
    fn rate_policy_is_symmetric_and_scaled() {
        assert!(rates_approx_eq(3.0, 3.0));
        assert_eq!(rates_approx_eq(1.0, 2.0), rates_approx_eq(2.0, 1.0));
        // floored at 1.0: tiny rates get an absolute 1e-9 window
        assert!(rates_approx_eq(1e-12, 2e-12));
        // scaled by magnitude for large rates
        assert!(rates_approx_eq(1e12, 1e12 + 100.0));
        assert!(!rates_approx_eq(1e12, 1.001e12));
        // infinities compare exactly, NaN never
        assert!(rates_approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!rates_approx_eq(f64::INFINITY, 1e300));
        assert!(!rates_approx_eq(f64::NAN, 1.0));
    }

    #[test]
    fn assert_close_macro() {
        assert_close!(1.0, 1.0 + 1e-12);
        assert_close!(2.0, 2.5, 0.6);
    }

    #[test]
    #[should_panic(expected = "assert_close failed")]
    fn assert_close_macro_panics() {
        assert_close!(1.0, 2.0, 1e-3);
    }
}
