//! Special functions: `ln Γ`, Poisson pmf/cdf in log space, Erlang cdf.
//!
//! Only the handful of functions the stochastic crates actually need are
//! implemented, with accuracy targets driven by the model-checking precision
//! (`1e-6` in the paper, `1e-12` internally).

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to about 1e-13
/// over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use unicon_numeric::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln ψ(n, λ)`, the log Poisson probability of exactly `n` events.
///
/// Returns `-inf` for `λ == 0, n > 0`.
pub fn ln_poisson_pmf(n: u64, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "lambda must be nonnegative");
    if lambda == 0.0 {
        return if n == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    -lambda + n as f64 * lambda.ln() - ln_gamma(n as f64 + 1.0)
}

/// `ψ(n, λ)`, the Poisson probability of exactly `n` events.
///
/// Computed in log space, so it is usable far into the tails.
///
/// # Examples
///
/// ```
/// use unicon_numeric::special::poisson_pmf;
/// assert!((poisson_pmf(0, 2.0) - (-2.0f64).exp()).abs() < 1e-15);
/// ```
pub fn poisson_pmf(n: u64, lambda: f64) -> f64 {
    ln_poisson_pmf(n, lambda).exp()
}

/// Poisson cdf `P[X <= n]` for `X ~ Poisson(λ)`, via direct stable summation.
///
/// Intended for tests and small `n`; production code uses
/// [`FoxGlynn`](crate::FoxGlynn).
pub fn poisson_cdf(n: u64, lambda: f64) -> f64 {
    let mut acc = crate::NeumaierSum::new();
    for k in 0..=n {
        acc.add(poisson_pmf(k, lambda));
    }
    acc.value().min(1.0)
}

/// Cdf of the Erlang distribution with `k` phases of rate `rate`.
///
/// `P[T <= t] = 1 - Σ_{n<k} e^{-rate·t} (rate·t)^n / n!`.
///
/// # Panics
///
/// Panics if `k == 0` or `rate <= 0`.
///
/// # Examples
///
/// ```
/// use unicon_numeric::special::erlang_cdf;
/// // One phase is just the exponential distribution.
/// let t = 0.7;
/// assert!((erlang_cdf(1, 2.0, t) - (1.0 - (-2.0 * t).exp())).abs() < 1e-14);
/// ```
pub fn erlang_cdf(k: u32, rate: f64, t: f64) -> f64 {
    assert!(k > 0, "Erlang needs at least one phase");
    assert!(rate > 0.0, "Erlang rate must be positive");
    if t <= 0.0 {
        return 0.0;
    }
    (1.0 - poisson_cdf(u64::from(k) - 1, rate * t)).clamp(0.0, 1.0)
}

/// Cdf of the exponential distribution with the given rate.
pub fn exponential_cdf(rate: f64, t: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    if t <= 0.0 {
        0.0
    } else {
        1.0 - (-rate * t).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn ln_gamma_small_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert_close!(ln_gamma(x), f64::ln(f), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert_close!(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Compare against Stirling's series for a big argument.
        let x: f64 = 1e5;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() / stirling.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn poisson_pmf_basics() {
        assert_close!(poisson_pmf(0, 0.0), 1.0, 0.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
        assert_close!(poisson_pmf(0, 1.0), (-1.0f64).exp(), 1e-15);
        assert_close!(poisson_pmf(2, 3.0), (-3.0f64).exp() * 9.0 / 2.0, 1e-14);
    }

    #[test]
    fn poisson_pmf_deep_tail_does_not_underflow_to_garbage() {
        let p = poisson_pmf(500, 10.0);
        assert!(p > 0.0 && p < 1e-300 || p == 0.0 || p < 1e-100);
        // log-space value must be finite and very negative
        assert!(ln_poisson_pmf(500, 10.0) < -1000.0);
    }

    #[test]
    fn poisson_cdf_reaches_one() {
        assert_close!(poisson_cdf(200, 10.0), 1.0, 1e-12);
    }

    #[test]
    fn erlang_cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..50 {
            let t = i as f64 * 0.2;
            let c = erlang_cdf(3, 1.5, t);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-15);
            prev = c;
        }
    }

    #[test]
    fn erlang_vs_exponential() {
        for t in [0.1, 0.5, 2.0, 10.0] {
            assert_close!(erlang_cdf(1, 0.7, t), exponential_cdf(0.7, t), 1e-13);
        }
    }

    #[test]
    fn erlang_more_phases_is_stochastically_larger() {
        // With equal per-phase rate, more phases means a longer delay.
        for t in [0.5, 1.0, 2.0] {
            assert!(erlang_cdf(2, 1.0, t) < erlang_cdf(1, 1.0, t));
            assert!(erlang_cdf(4, 1.0, t) < erlang_cdf(2, 1.0, t));
        }
    }
}
