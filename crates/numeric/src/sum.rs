//! Compensated floating-point summation.
//!
//! Uniformization sums many Poisson-weighted terms of widely varying
//! magnitude; naive summation loses precision exactly where the
//! model-checking tolerance matters. [`NeumaierSum`] implements Neumaier's
//! improved Kahan–Babuška algorithm, which is accurate even when the running
//! sum is smaller than the next addend.

/// Running compensated sum (Neumaier's variant of Kahan summation).
///
/// # Examples
///
/// ```
/// use unicon_numeric::NeumaierSum;
///
/// let mut s = NeumaierSum::new();
/// s.add(1.0);
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 2.0); // naive summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value of the sum.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for NeumaierSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Sums an iterator of `f64` with Neumaier compensation.
///
/// # Examples
///
/// ```
/// let v = vec![0.1_f64; 10];
/// let s = unicon_numeric::stable_sum(v.iter().copied());
/// assert!((s - 1.0).abs() < 1e-15);
/// ```
pub fn stable_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<NeumaierSum>().value()
}

/// Neumaier-sums one fixed-size chunk of a larger vector, for use with
/// [`combine_chunk_sums`].
///
/// The two-level scheme gives parallel reductions a *determinism
/// contract*: as long as the chunk size is a fixed constant (not derived
/// from the number of worker threads), every chunk partial and therefore
/// the combined total is bitwise identical no matter how the chunks are
/// distributed over threads.
pub fn chunk_sum(chunk: &[f64]) -> f64 {
    let mut s = NeumaierSum::new();
    for &x in chunk {
        s.add(x);
    }
    s.value()
}

/// Combines per-chunk partial sums (in chunk order) into the final value
/// of a chunked Neumaier reduction.
pub fn combine_chunk_sums<I: IntoIterator<Item = f64>>(partials: I) -> f64 {
    stable_sum(partials)
}

/// Deterministic chunked Neumaier reduction of a slice: partials over
/// fixed `chunk_size` blocks, combined in block order.
///
/// This is the reference (sequential) evaluation of the reduction the
/// parallel reachability engine performs chunk-by-chunk; for any thread
/// count the parallel result is bitwise equal to this function's.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
///
/// # Examples
///
/// ```
/// use unicon_numeric::sum::chunked_stable_sum;
///
/// let v: Vec<f64> = (0..10_000).map(|i| 1.0 / (i + 1) as f64).collect();
/// // Independent of the chunk granularity chosen for distribution...
/// let a = chunked_stable_sum(&v, 1024);
/// // ...the reduction is reproducible bit for bit.
/// assert_eq!(a.to_bits(), chunked_stable_sum(&v, 1024).to_bits());
/// ```
pub fn chunked_stable_sum(values: &[f64], chunk_size: usize) -> f64 {
    assert!(chunk_size > 0, "chunk size must be positive");
    combine_chunk_sums(values.chunks(chunk_size).map(chunk_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(NeumaierSum::new().value(), 0.0);
        assert_eq!(stable_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_term() {
        assert_eq!(stable_sum([42.5]), 42.5);
    }

    #[test]
    fn cancellation_is_compensated() {
        let s = stable_sum([1.0, 1e100, 1.0, -1e100]);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn many_small_terms() {
        let n = 1_000_000;
        let s = stable_sum(std::iter::repeat_n(1e-6, n));
        assert!((s - 1.0).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn extend_and_collect_agree() {
        let xs = [0.3, 0.7, 1e-9, -0.2];
        let mut a = NeumaierSum::new();
        a.extend(xs.iter().copied());
        let b: NeumaierSum = xs.iter().copied().collect();
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn chunked_sum_matches_two_level_manual_evaluation() {
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin() * 1e-3).collect();
        let manual = combine_chunk_sums(v.chunks(64).map(chunk_sum));
        assert_eq!(chunked_stable_sum(&v, 64).to_bits(), manual.to_bits());
        // and it is accurate
        let reference = stable_sum(v.iter().copied());
        assert!((chunked_stable_sum(&v, 64) - reference).abs() < 1e-12);
    }

    #[test]
    fn chunked_sum_handles_edge_shapes() {
        assert_eq!(chunked_stable_sum(&[], 8), 0.0);
        assert_eq!(chunked_stable_sum(&[1.5], 8), 1.5);
        // chunk size larger than the slice degenerates to one chunk
        let v = [0.25, 0.5, 0.125];
        assert_eq!(chunked_stable_sum(&v, 100), chunk_sum(&v));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunked_sum_rejects_zero_chunk() {
        chunked_stable_sum(&[1.0], 0);
    }
}
