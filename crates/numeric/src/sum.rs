//! Compensated floating-point summation.
//!
//! Uniformization sums many Poisson-weighted terms of widely varying
//! magnitude; naive summation loses precision exactly where the
//! model-checking tolerance matters. [`NeumaierSum`] implements Neumaier's
//! improved Kahan–Babuška algorithm, which is accurate even when the running
//! sum is smaller than the next addend.

/// Running compensated sum (Neumaier's variant of Kahan summation).
///
/// # Examples
///
/// ```
/// use unicon_numeric::NeumaierSum;
///
/// let mut s = NeumaierSum::new();
/// s.add(1.0);
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 2.0); // naive summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value of the sum.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for NeumaierSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Sums an iterator of `f64` with Neumaier compensation.
///
/// # Examples
///
/// ```
/// let v = vec![0.1_f64; 10];
/// let s = unicon_numeric::stable_sum(v.iter().copied());
/// assert!((s - 1.0).abs() < 1e-15);
/// ```
pub fn stable_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<NeumaierSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(NeumaierSum::new().value(), 0.0);
        assert_eq!(stable_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_term() {
        assert_eq!(stable_sum([42.5]), 42.5);
    }

    #[test]
    fn cancellation_is_compensated() {
        let s = stable_sum([1.0, 1e100, 1.0, -1e100]);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn many_small_terms() {
        let n = 1_000_000;
        let s = stable_sum(std::iter::repeat_n(1e-6, n));
        assert!((s - 1.0).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn extend_and_collect_agree() {
        let xs = [0.3, 0.7, 1e-9, -0.2];
        let mut a = NeumaierSum::new();
        a.extend(xs.iter().copied());
        let b: NeumaierSum = xs.iter().copied().collect();
        assert_eq!(a.value(), b.value());
    }
}
