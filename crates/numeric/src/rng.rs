//! Small deterministic pseudo-random number generation.
//!
//! This is the workspace's test utility *and* the simulation engine's
//! randomness source: a seeded xorshift64* generator with no external
//! dependencies, so the whole workspace builds and tests fully offline.
//! It is emphatically **not** cryptographic — it only needs to be fast,
//! reproducible and statistically unobjectionable for Monte-Carlo
//! estimation and randomized property tests.
//!
//! # Examples
//!
//! ```
//! use unicon_numeric::rng::{Rng, XorShift64};
//!
//! let mut a = XorShift64::seed_from_u64(42);
//! let mut b = XorShift64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // deterministic given the seed
//! let u = a.random_f64();
//! assert!((0.0..1.0).contains(&u));
//! assert!(a.random_range(7) < 7);
//! ```

/// A source of pseudo-random numbers.
///
/// The simulation and scheduler APIs are generic over this trait so tests
/// can substitute counters or fixed sequences.
pub trait Rng {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        // Take the top 53 bits: the low bits of many generators are weaker.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `0..n` via the fixed-point multiply reduction
    /// (bias is at most `n / 2^64`, irrelevant at the sizes used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn random_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

/// The xorshift64* generator (Marsaglia xorshift with a multiplicative
/// output scramble), seeded through a SplitMix64 round so that small
/// consecutive seeds yield uncorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a 64-bit seed; any seed (including 0) is
    /// valid and distinct seeds give distinct streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One SplitMix64 step spreads the seed's entropy over all 64 bits
        // and guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }
}

impl Rng for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = XorShift64::seed_from_u64(1);
        let mut b = XorShift64::seed_from_u64(1);
        let mut c = XorShift64::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = XorShift64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = XorShift64::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.random_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = XorShift64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = r.random_range(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        XorShift64::seed_from_u64(0).random_range(0);
    }
}
