//! FNV-1a 64-bit hashing: the workspace's structural-fingerprint and
//! checksum-trailer hash.
//!
//! FNV-1a is deliberately simple: a fixed offset basis, one multiply per
//! byte, no per-process seed. That makes every fingerprint reproducible
//! across runs, platforms and thread counts — exactly the property the
//! certificate chain (`unicon-verify::certify`) and the checkpoint trailer
//! (`unicon-ctmdp::guard`) need, and the opposite of what `std`'s seeded
//! `DefaultHasher` provides.
//!
//! # Examples
//!
//! ```
//! use unicon_numeric::fnv::Fnv64;
//!
//! let mut h = Fnv64::new();
//! h.write(b"hello");
//! assert_eq!(h.finish(), unicon_numeric::fnv::fnv1a64(b"hello"));
//! ```

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x100_0000_01b3;

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// A streaming FNV-1a 64 hasher.
///
/// Multi-byte integers are fed little-endian, so fingerprints are
/// platform-independent; floats are hashed by their IEEE-754 bit pattern
/// (bit-exact, distinguishing `0.0` from `-0.0` and every NaN payload).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Starts a fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(OFFSET_BASIS)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn integers_are_little_endian() {
        let mut a = Fnv64::new();
        a.write_u32(0x0403_0201);
        let mut b = Fnv64::new();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_bit_exact() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
