//! Fox–Glynn behaviour at the extremes of the `(λ = rate·t, ε)` plane.
//!
//! The guarded reachability engine relies on one invariant: a weight
//! request either yields a valid, normalized, NaN-free window, or the new
//! typed [`FoxGlynnError`] — never NaN weights that would silently poison
//! a value iteration.

use unicon_numeric::{FoxGlynn, FoxGlynnError};

const LAMBDAS: [f64; 3] = [1e-8, 1e2, 1e6];
const EPSILONS: [f64; 2] = [1e-3, 1e-12];

/// Every stored weight is finite, nonnegative, and the window sums to 1.
fn assert_window_healthy(fg: &FoxGlynn, lambda: f64, epsilon: f64) {
    let ctx = format!("lambda={lambda} epsilon={epsilon}");
    assert!(fg.window_end() > fg.window_start(), "{ctx}: empty window");
    for n in fg.window_start()..fg.window_end() {
        let w = fg.psi(n);
        assert!(w.is_finite(), "{ctx}: psi({n}) = {w}");
        assert!(w >= 0.0, "{ctx}: psi({n}) = {w}");
        assert!(w <= 1.0 + 1e-12, "{ctx}: psi({n}) = {w}");
    }
    assert!(
        (fg.total() - 1.0).abs() < 1e-9,
        "{ctx}: total = {}",
        fg.total()
    );
}

#[test]
fn grid_of_extremes_yields_valid_window_or_typed_error() {
    for &lambda in &LAMBDAS {
        for &epsilon in &EPSILONS {
            match FoxGlynn::try_weights(lambda, epsilon) {
                Ok(cw) => {
                    assert_window_healthy(&cw.fg, lambda, epsilon);
                    // the truncation point covers at least 1 - ε of mass
                    let covered = 1.0 - cw.fg.tail_from(cw.truncation + 1);
                    assert!(
                        covered >= 1.0 - epsilon - 1e-12,
                        "lambda={lambda} epsilon={epsilon}: covered {covered}"
                    );
                    // and k scales like λ + O(√λ)
                    assert!(
                        (cw.truncation as f64) <= lambda + 40.0 * lambda.sqrt() + 60.0,
                        "lambda={lambda}: k = {}",
                        cw.truncation
                    );
                }
                Err(e) => {
                    // only the typed underflow is acceptable here — the grid
                    // inputs themselves are well-formed
                    assert!(
                        matches!(e, FoxGlynnError::Underflow { lambda: l, epsilon: ep }
                            if l == lambda && ep == epsilon),
                        "lambda={lambda} epsilon={epsilon}: unexpected {e:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn tiny_lambda_concentrates_at_zero() {
    let cw = FoxGlynn::try_weights(1e-8, 1e-3).unwrap();
    // ψ(0) = e^{-λ} ≈ 1; no jump is ever needed at this precision
    assert!(cw.fg.psi(0) > 0.9999);
    assert_eq!(cw.truncation, 0);
}

#[test]
fn large_lambda_window_is_centred_at_the_mode() {
    let cw = FoxGlynn::try_weights(1e6, 1e-12).unwrap();
    let mode = 1_000_000usize;
    assert!(cw.fg.window_start() < mode && mode < cw.fg.window_end());
    assert!(cw.truncation > mode);
    // window width is O(√λ), not O(λ)
    let width = cw.fg.window_end() - cw.fg.window_start();
    assert!(width < 50_000, "width = {width}");
}

#[test]
fn below_floor_epsilon_is_typed_underflow_never_nan() {
    for &lambda in &LAMBDAS {
        let floor = FoxGlynn::min_certifiable_epsilon(lambda);
        let err = FoxGlynn::try_weights(lambda, floor / 2.0).unwrap_err();
        assert!(matches!(err, FoxGlynnError::Underflow { .. }));
        // the error message names the regime that caused it
        let msg = err.to_string();
        assert!(msg.contains("underflow"), "{msg}");
        assert!(msg.contains("lambda"), "{msg}");
    }
}

#[test]
fn invalid_inputs_are_typed_not_panics() {
    assert!(matches!(
        FoxGlynn::try_weights(f64::NAN, 1e-6),
        Err(FoxGlynnError::InvalidLambda { .. })
    ));
    assert!(matches!(
        FoxGlynn::try_weights(-3.0, 1e-6),
        Err(FoxGlynnError::InvalidLambda { .. })
    ));
    assert!(matches!(
        FoxGlynn::try_weights(10.0, 1.0),
        Err(FoxGlynnError::InvalidEpsilon { .. })
    ));
    assert!(matches!(
        FoxGlynn::try_weights(10.0, -1e-9),
        Err(FoxGlynnError::InvalidEpsilon { .. })
    ));
}
