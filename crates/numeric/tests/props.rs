//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use unicon_numeric::special::{ln_poisson_pmf, poisson_cdf, poisson_pmf};
use unicon_numeric::{stable_sum, FoxGlynn, NeumaierSum};

proptest! {
    #[test]
    fn foxglynn_weights_are_a_distribution(lambda in 0.01f64..5_000.0) {
        let fg = FoxGlynn::new(lambda);
        prop_assert!((fg.total() - 1.0).abs() < 1e-9);
        for n in fg.window_start()..fg.window_end() {
            let w = fg.psi(n);
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn foxglynn_matches_direct_pmf(lambda in 0.1f64..500.0) {
        let fg = FoxGlynn::new(lambda);
        let mode = lambda.floor() as usize;
        for n in [mode.saturating_sub(3), mode, mode + 3] {
            let direct = poisson_pmf(n as u64, lambda);
            prop_assert!((fg.psi(n) - direct).abs() <= 1e-9 * direct.max(1e-300));
        }
    }

    #[test]
    fn right_truncation_is_minimal(lambda in 0.1f64..300.0, neg_exp in 2u32..9) {
        let eps = 10f64.powi(-(neg_exp as i32));
        let fg = FoxGlynn::new(lambda);
        let k = fg.right_truncation(eps);
        // cdf up to k reaches 1 - eps …
        prop_assert!(poisson_cdf(k as u64, lambda) >= 1.0 - eps - 1e-12);
        // … and k is minimal with that property
        if k > 0 {
            prop_assert!(poisson_cdf(k as u64 - 1, lambda) < 1.0 - eps + 1e-12);
        }
    }

    #[test]
    fn truncation_monotone_in_epsilon(lambda in 0.1f64..1000.0) {
        let fg = FoxGlynn::new(lambda);
        let k4 = fg.right_truncation(1e-4);
        let k6 = fg.right_truncation(1e-6);
        let k8 = fg.right_truncation(1e-8);
        prop_assert!(k4 <= k6 && k6 <= k8);
        let l4 = fg.left_truncation(1e-4);
        let l8 = fg.left_truncation(1e-8);
        prop_assert!(l8 <= l4);
    }

    #[test]
    fn tail_from_is_survival_function(lambda in 0.1f64..200.0, i in 0usize..400) {
        let fg = FoxGlynn::new(lambda);
        let tail = fg.tail_from(i);
        let direct = if i == 0 { 1.0 } else { 1.0 - poisson_cdf(i as u64 - 1, lambda) };
        prop_assert!((tail - direct).abs() < 1e-9, "tail {tail} direct {direct}");
    }

    #[test]
    fn neumaier_matches_exact_rational_sum(xs in prop::collection::vec(-1000i32..1000, 0..200)) {
        // integers are exactly representable: compensated sum must be exact
        let exact: i64 = xs.iter().map(|&x| x as i64).sum();
        let s = stable_sum(xs.iter().map(|&x| f64::from(x)));
        prop_assert_eq!(s, exact as f64);
    }

    #[test]
    fn neumaier_is_permutation_invariant_for_magnitudes(
        mut xs in prop::collection::vec(1e-8f64..1e8, 1..100)
    ) {
        let a = stable_sum(xs.iter().copied());
        xs.reverse();
        let b = stable_sum(xs.iter().copied());
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn neumaier_extend_matches_loop(xs in prop::collection::vec(-1e6f64..1e6, 0..50)) {
        let mut s1 = NeumaierSum::new();
        for &x in &xs {
            s1.add(x);
        }
        let s2: NeumaierSum = xs.iter().copied().collect();
        prop_assert_eq!(s1.value(), s2.value());
    }

    #[test]
    fn ln_poisson_pmf_is_log_of_pmf(n in 0u64..200, lambda in 0.01f64..500.0) {
        let p = poisson_pmf(n, lambda);
        if p > 1e-300 {
            prop_assert!((ln_poisson_pmf(n, lambda).exp() - p).abs() <= 1e-12 * p.max(1e-12));
        }
    }

    #[test]
    fn poisson_cdf_monotone_in_n(lambda in 0.01f64..100.0, n in 0u64..100) {
        prop_assert!(poisson_cdf(n, lambda) <= poisson_cdf(n + 1, lambda) + 1e-15);
    }
}
