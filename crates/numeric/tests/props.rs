//! Randomized property tests for the numeric substrate, driven by the
//! in-tree deterministic [`XorShift64`] generator (fixed seeds, no external
//! PRNG — the suite is fully reproducible and offline).

use unicon_numeric::rng::{Rng, XorShift64};
use unicon_numeric::special::{ln_poisson_pmf, poisson_cdf, poisson_pmf};
use unicon_numeric::{stable_sum, FoxGlynn, NeumaierSum};

const CASES: u64 = 48;

fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.random_f64() * (hi - lo)
}

#[test]
fn foxglynn_weights_are_a_distribution() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xF0C5 + case);
        let lambda = uniform(&mut rng, 0.01, 5_000.0);
        let fg = FoxGlynn::new(lambda);
        assert!((fg.total() - 1.0).abs() < 1e-9, "lambda {lambda}");
        for n in fg.window_start()..fg.window_end() {
            let w = fg.psi(n);
            assert!((0.0..=1.0).contains(&w), "lambda {lambda}, psi({n}) = {w}");
        }
    }
}

#[test]
fn foxglynn_matches_direct_pmf() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xF06B + case);
        let lambda = uniform(&mut rng, 0.1, 500.0);
        let fg = FoxGlynn::new(lambda);
        let mode = lambda.floor() as usize;
        for n in [mode.saturating_sub(3), mode, mode + 3] {
            let direct = poisson_pmf(n as u64, lambda);
            assert!(
                (fg.psi(n) - direct).abs() <= 1e-9 * direct.max(1e-300),
                "lambda {lambda}, n {n}"
            );
        }
    }
}

#[test]
fn right_truncation_is_minimal() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x7209 + case);
        let lambda = uniform(&mut rng, 0.1, 300.0);
        let eps = 10f64.powi(-(2 + rng.random_range(7) as i32));
        let fg = FoxGlynn::new(lambda);
        let k = fg.right_truncation(eps);
        // cdf up to k reaches 1 - eps …
        assert!(
            poisson_cdf(k as u64, lambda) >= 1.0 - eps - 1e-12,
            "lambda {lambda}, eps {eps}"
        );
        // … and k is minimal with that property
        if k > 0 {
            assert!(
                poisson_cdf(k as u64 - 1, lambda) < 1.0 - eps + 1e-12,
                "lambda {lambda}, eps {eps}"
            );
        }
    }
}

#[test]
fn truncation_monotone_in_epsilon() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3040 + case);
        let lambda = uniform(&mut rng, 0.1, 1000.0);
        let fg = FoxGlynn::new(lambda);
        let k4 = fg.right_truncation(1e-4);
        let k6 = fg.right_truncation(1e-6);
        let k8 = fg.right_truncation(1e-8);
        assert!(k4 <= k6 && k6 <= k8, "lambda {lambda}");
        let l4 = fg.left_truncation(1e-4);
        let l8 = fg.left_truncation(1e-8);
        assert!(l8 <= l4, "lambda {lambda}");
    }
}

#[test]
fn tail_from_is_survival_function() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x7A11 + case);
        let lambda = uniform(&mut rng, 0.1, 200.0);
        let i = rng.random_range(400);
        let fg = FoxGlynn::new(lambda);
        let tail = fg.tail_from(i);
        let direct = if i == 0 {
            1.0
        } else {
            1.0 - poisson_cdf(i as u64 - 1, lambda)
        };
        assert!(
            (tail - direct).abs() < 1e-9,
            "lambda {lambda}, i {i}: tail {tail} direct {direct}"
        );
    }
}

#[test]
fn neumaier_matches_exact_rational_sum() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5071 + case);
        let len = rng.random_range(200);
        let xs: Vec<i32> = (0..len)
            .map(|_| rng.random_range(2001) as i32 - 1000)
            .collect();
        // integers are exactly representable: compensated sum must be exact
        let exact: i64 = xs.iter().map(|&x| x as i64).sum();
        let s = stable_sum(xs.iter().map(|&x| f64::from(x)));
        assert_eq!(s, exact as f64);
    }
}

#[test]
fn neumaier_is_permutation_invariant_for_magnitudes() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x9E61 + case);
        let len = 1 + rng.random_range(99);
        let mut xs: Vec<f64> = (0..len).map(|_| uniform(&mut rng, 1e-8, 1e8)).collect();
        let a = stable_sum(xs.iter().copied());
        xs.reverse();
        let b = stable_sum(xs.iter().copied());
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }
}

#[test]
fn neumaier_extend_matches_loop() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xE87E + case);
        let len = rng.random_range(50);
        let xs: Vec<f64> = (0..len).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
        let mut s1 = NeumaierSum::new();
        for &x in &xs {
            s1.add(x);
        }
        let s2: NeumaierSum = xs.iter().copied().collect();
        assert_eq!(s1.value(), s2.value());
    }
}

#[test]
fn ln_poisson_pmf_is_log_of_pmf() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x109A + case);
        let n = rng.random_range(200) as u64;
        let lambda = uniform(&mut rng, 0.01, 500.0);
        let p = poisson_pmf(n, lambda);
        if p > 1e-300 {
            assert!(
                (ln_poisson_pmf(n, lambda).exp() - p).abs() <= 1e-12 * p.max(1e-12),
                "n {n}, lambda {lambda}"
            );
        }
    }
}

#[test]
fn poisson_cdf_monotone_in_n() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xCDF0 + case);
        let lambda = uniform(&mut rng, 0.01, 100.0);
        let n = rng.random_range(100) as u64;
        assert!(
            poisson_cdf(n, lambda) <= poisson_cdf(n + 1, lambda) + 1e-15,
            "n {n}, lambda {lambda}"
        );
    }
}
