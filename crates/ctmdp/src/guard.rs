//! Guarded execution layer for the timed-reachability engines.
//!
//! [`ReachBatch::run_guarded`] wraps the sequential and parallel value
//! iteration with four robustness facilities that the plain engines
//! deliberately do not carry:
//!
//! * **numeric health monitoring** — after every value-iteration step the
//!   fresh iterate is scanned for NaN, infinities and out-of-`[0, 1]`
//!   drift (beyond [`HEALTH_SLACK`]), and the deterministic chunked
//!   Neumaier checksum is re-validated; a violation surfaces as a
//!   structured [`NumericHealthError`] naming the step and state;
//! * **budgets and cooperative cancellation** — a [`RunBudget`] bounds
//!   the iteration count and wall clock and polls a shared cancel flag;
//!   exhaustion is not an abort: the run returns a [`GuardedRun`] whose
//!   [`PartialQuery`] brackets the in-flight query's true values with
//!   lower/upper bounds derived from the unprocessed Poisson mass;
//! * **checkpoint/resume** — a versioned binary checkpoint of the raw
//!   iterate, the step index and all completed answers is written
//!   atomically every K steps (and on budget stops), and
//!   [`ReachBatch::resume`] continues **bitwise identically**: the
//!   checkpoint stores exact `f64` bits and the Fox–Glynn weights are
//!   recomputed deterministically from the stored `(rate, t, ε)` regime.
//!   A checksum trailer (FNV-1a 64) makes truncation and bit rot a typed
//!   [`GuardError::CheckpointCorrupt`], never undefined behaviour;
//! * **panic quarantine** — every parallel step runs its workers under
//!   [`std::panic::catch_unwind`]; a panicking worker either fails the
//!   run with a typed [`GuardError::WorkerPanicked`]
//!   ([`DegradePolicy::Fail`]) or is quarantined: the step is recomputed
//!   sequentially from the same snapshot (so the result stays bitwise
//!   identical) and the run degrades to one thread, recording a
//!   [`GuardEvent::Degradation`] ([`DegradePolicy::Sequential`]).
//!
//! Under the `fault-inject` cargo feature a deterministic, seeded
//! [`FaultPlan`] can flip a value to NaN at a chosen step, panic a chosen
//! worker, or truncate every checkpoint it writes — the CI gate drives
//! all three and asserts the typed outcomes above.
//!
//! # Determinism
//!
//! A guarded run's values are bitwise identical to the plain
//! [`ReachBatch::run`] for every thread count: every slot is written by
//! the shared [`sweep_states`] sweep (which dispatches to the batch's
//! selected kernel), workers read the previous iterate as an immutable
//! snapshot and write disjoint slots, and degradation replays the
//! interrupted step from that same snapshot. The guarded parallel
//! path trades the plain engine's persistent worker pool for one scope
//! per step so that each step is a quarantine boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use unicon_numeric::{chunked_stable_sum, FoxGlynn, FoxGlynnError};
use unicon_sparse::assign_blocks;

#[cfg(feature = "fault-inject")]
use unicon_numeric::rng::{Rng, XorShift64};

use crate::par::{resolve_threads, ReachBatch, CHECKSUM_BLOCK};
use crate::reachability::{
    finalize_values, indicator_result, sweep_states, validate_epsilon, validate_time, Kernel,
    Objective, Precompute, ReachError, ReachResult,
};

/// Tolerance of the out-of-range health check: iterates may drift this
/// far outside `[0, 1]` from benign rounding before the run is failed.
pub const HEALTH_SLACK: f64 = 1e-9;

/// What kind of numeric corruption the health monitor observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthKind {
    /// The value is NaN.
    NotANumber,
    /// The value is `+inf` or `-inf`.
    Infinite,
    /// The value lies outside `[0, 1]` by more than [`HEALTH_SLACK`].
    OutOfRange {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for HealthKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthKind::NotANumber => write!(f, "value is NaN"),
            HealthKind::Infinite => write!(f, "value is infinite"),
            HealthKind::OutOfRange { value } => {
                write!(f, "value {value} lies outside [0, 1] beyond tolerance")
            }
        }
    }
}

/// A numeric-health violation detected during a guarded run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericHealthError {
    /// The 1-based value-iteration step at which the violation appeared.
    pub step: usize,
    /// The state whose value is corrupt.
    pub state: usize,
    /// What was wrong with it.
    pub kind: HealthKind,
}

impl std::fmt::Display for NumericHealthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "numeric health violation at step {}, state {}: {}",
            self.step, self.state, self.kind
        )
    }
}

impl std::error::Error for NumericHealthError {}

/// Why a guarded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// [`RunBudget::max_iterations`] was reached.
    MaxIterations,
    /// [`RunBudget::wall_deadline`] passed.
    DeadlineExpired,
    /// [`RunBudget::cancel_flag`] was raised.
    Cancelled,
}

impl StopReason {
    /// A short stable identifier (used by the CLI's JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::MaxIterations => "max-iterations",
            StopReason::DeadlineExpired => "deadline",
            StopReason::Cancelled => "cancelled",
        }
    }
}

/// Resource limits of a guarded run. All limits are optional; the
/// default budget is unlimited.
///
/// Budgets are per *run*: a resumed run starts its iteration count and
/// deadline afresh.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Stop after this many value-iteration steps (summed over queries).
    pub max_iterations: Option<usize>,
    /// Stop once the wall clock reaches this instant.
    pub wall_deadline: Option<Instant>,
    /// Stop as soon as this flag is observed `true` (checked before
    /// every step — cancellation is cooperative, never mid-step).
    pub cancel_flag: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// Caps the total number of value-iteration steps.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.wall_deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        // det-lint: allow(clock): deadlines are the budget feature's job.
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a shared cancellation flag.
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel_flag = Some(flag);
        self
    }

    /// Checks the budget before a step; `Some` means "stop now".
    ///
    /// Cancellation wins over the iteration cap, which wins over the
    /// deadline, so concurrent exhaustion reports deterministically.
    pub fn exceeded(&self, iterations_done: usize) -> Option<StopReason> {
        if let Some(flag) = &self.cancel_flag {
            if flag.load(Ordering::SeqCst) {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(max) = self.max_iterations {
            if iterations_done >= max {
                return Some(StopReason::MaxIterations);
            }
        }
        if let Some(deadline) = self.wall_deadline {
            // det-lint: allow(clock): deadlines are the budget feature's job.
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExpired);
            }
        }
        None
    }
}

/// How to react to a panicking worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Fail the run with [`GuardError::WorkerPanicked`].
    Fail,
    /// Quarantine the panic: recompute the step sequentially from the
    /// same snapshot (bitwise identical by the determinism contract) and
    /// continue single-threaded, recording a [`GuardEvent::Degradation`].
    #[default]
    Sequential,
}

/// Where and how often to write checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The checkpoint file (written atomically: temp file + rename).
    pub path: PathBuf,
    /// Write every this many value-iteration steps (`0` is treated
    /// as `1`). A checkpoint is also written on budget stops and after
    /// each completed query.
    pub every: usize,
}

impl CheckpointConfig {
    /// A checkpoint at `path` every `every` steps.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every,
        }
    }
}

/// A deterministic, seeded fault plan — only available with the
/// `fault-inject` cargo feature, so release builds carry no injection
/// sites with live triggers.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Overwrite `q[state]` with NaN right after step `step` computes.
    pub nan_at: Option<(usize, usize)>,
    /// Panic worker `worker` at the start of step `step`.
    pub panic_worker_at: Option<(usize, usize)>,
    /// Truncate this many bytes off the end of every checkpoint written.
    pub truncate_checkpoint_bytes: Option<u64>,
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// Plans a NaN flip at a seed-chosen `(step, state)` with step in
    /// `1..=k` and state in `0..n`.
    pub fn nan(seed: u64, k: usize, n: usize) -> Self {
        let mut rng = XorShift64::seed_from_u64(seed);
        Self {
            nan_at: Some((1 + rng.random_range(k.max(1)), rng.random_range(n.max(1)))),
            ..Self::default()
        }
    }

    /// Plans a worker panic at a seed-chosen `(step, worker)` with step
    /// in `1..=k` and worker in `0..workers`.
    pub fn worker_panic(seed: u64, k: usize, workers: usize) -> Self {
        let mut rng = XorShift64::seed_from_u64(seed);
        Self {
            panic_worker_at: Some((
                1 + rng.random_range(k.max(1)),
                rng.random_range(workers.max(1)),
            )),
            ..Self::default()
        }
    }

    /// Plans checkpoint truncation by `bytes` trailing bytes.
    pub fn truncate(bytes: u64) -> Self {
        Self {
            truncate_checkpoint_bytes: Some(bytes),
            ..Self::default()
        }
    }
}

/// Options of a guarded run. The default is "no guards": unlimited
/// budget, no checkpointing, degrade-to-sequential on worker panics.
#[derive(Debug, Clone, Default)]
pub struct GuardOptions {
    /// Iteration/wall-clock/cancellation limits.
    pub budget: RunBudget,
    /// Periodic checkpointing, when configured.
    pub checkpoint: Option<CheckpointConfig>,
    /// Reaction to worker panics.
    pub on_degrade: DegradePolicy,
    /// Deterministic fault injection (testing only).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<FaultPlan>,
}

impl GuardOptions {
    /// Sets the budget.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables checkpointing.
    pub fn with_checkpoint(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = Some(config);
        self
    }

    /// Sets the worker-panic policy.
    pub fn with_degrade_policy(mut self, policy: DegradePolicy) -> Self {
        self.on_degrade = policy;
        self
    }

    /// Arms a fault plan.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// A noteworthy occurrence during a guarded run, in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardEvent {
    /// A worker panicked and the run fell back to sequential execution.
    Degradation {
        /// Query index being iterated.
        query: usize,
        /// 1-based step at which the panic happened.
        step: usize,
        /// Index of the panicking worker.
        worker: usize,
        /// Worker count before the degradation.
        from_threads: usize,
        /// Worker count afterwards (always 1).
        to_threads: usize,
    },
    /// A checkpoint was persisted (`step == 0` marks the end-of-query
    /// checkpoint, which has no in-progress iterate).
    CheckpointWritten {
        /// Query index covered by the checkpoint.
        query: usize,
        /// 1-based step the stored iterate corresponds to, 0 if none.
        step: usize,
    },
    /// The run was restored from a checkpoint.
    Resumed {
        /// Query index the run continues at.
        query: usize,
        /// 1-based step of the restored iterate, 0 when the checkpoint
        /// holds only completed queries.
        step: usize,
    },
}

impl std::fmt::Display for GuardEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardEvent::Degradation {
                query,
                step,
                worker,
                from_threads,
                to_threads,
            } => write!(
                f,
                "degraded query {query} at step {step}: worker {worker} panicked, \
                 falling back from {from_threads} to {to_threads} thread(s)"
            ),
            GuardEvent::CheckpointWritten { query, step } => {
                write!(f, "checkpoint written (query {query}, step {step})")
            }
            GuardEvent::Resumed { query, step } => {
                write!(f, "resumed from checkpoint (query {query}, step {step})")
            }
        }
    }
}

/// Structured error of the guarded engine.
#[derive(Debug)]
pub enum GuardError {
    /// A model/parameter error from the underlying engine.
    Reach(ReachError),
    /// The health monitor detected numeric corruption.
    Health(NumericHealthError),
    /// The Fox–Glynn weights cannot certify the requested precision
    /// (underflow) or the regime is invalid.
    FoxGlynn(FoxGlynnError),
    /// A worker panicked and the policy is [`DegradePolicy::Fail`].
    WorkerPanicked {
        /// Query index being iterated.
        query: usize,
        /// 1-based step at which the panic happened.
        step: usize,
        /// Index of the panicking worker.
        worker: usize,
    },
    /// The checkpoint file failed structural or checksum validation.
    CheckpointCorrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed.
        reason: String,
    },
    /// The checkpoint is intact but belongs to a different batch
    /// (model size, precision, rate or query list differ).
    CheckpointMismatch {
        /// Which field disagreed.
        reason: String,
    },
    /// Reading or writing a checkpoint failed at the filesystem level.
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Reach(e) => e.fmt(f),
            GuardError::Health(e) => e.fmt(f),
            GuardError::FoxGlynn(e) => e.fmt(f),
            GuardError::WorkerPanicked {
                query,
                step,
                worker,
            } => write!(
                f,
                "worker {worker} panicked at step {step} of query {query} (degrade policy: fail)"
            ),
            GuardError::CheckpointCorrupt { path, reason } => {
                write!(f, "checkpoint {} is corrupt: {reason}", path.display())
            }
            GuardError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match this batch: {reason}")
            }
            GuardError::Io { path, message } => {
                write!(f, "i/o error on {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::Reach(e) => Some(e),
            GuardError::Health(e) => Some(e),
            GuardError::FoxGlynn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReachError> for GuardError {
    fn from(e: ReachError) -> Self {
        GuardError::Reach(e)
    }
}

impl From<NumericHealthError> for GuardError {
    fn from(e: NumericHealthError) -> Self {
        GuardError::Health(e)
    }
}

impl From<FoxGlynnError> for GuardError {
    fn from(e: FoxGlynnError) -> Self {
        GuardError::FoxGlynn(e)
    }
}

/// Bounds on the query that was in flight when the budget ran out.
///
/// `lower` is the value of the truncated iteration — a lower bound on
/// the true values up to the truncation precision ε and rounding (the
/// truncated iterate only counts hit events that still fit the executed
/// suffix of Poisson weights). `upper` adds the maximal Poisson mass of
/// any window as long as the unprocessed step range, plus ε, clamped to
/// 1, so `lower[s] <= value[s] <= upper[s]` brackets the answer the
/// completed run would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialQuery {
    /// Index of the interrupted query.
    pub query: usize,
    /// Its time bound.
    pub t: f64,
    /// Value-iteration steps already executed (including steps executed
    /// by earlier runs when resuming from a checkpoint).
    pub completed_steps: usize,
    /// Total steps `k(ε, E, t)` the query needs.
    pub total_steps: usize,
    /// Per-state lower bounds.
    pub lower: Vec<f64>,
    /// Per-state upper bounds.
    pub upper: Vec<f64>,
}

/// The outcome of a guarded run.
#[derive(Debug, Clone)]
pub struct GuardedRun {
    /// Completed answers, in query order — each bitwise equal to the
    /// plain [`ReachBatch::run`] result for that query.
    pub results: Vec<ReachResult>,
    /// `Some` when a budget stopped the run: the reason, plus bounds on
    /// the interrupted query (`None` only if no query was in flight).
    pub stopped: Option<(StopReason, Option<PartialQuery>)>,
    /// Degradations, checkpoints and resumes, in order.
    pub events: Vec<GuardEvent>,
    /// Number of per-step health checks performed.
    pub health_checks: usize,
}

impl GuardedRun {
    /// `true` when every query completed (no budget stop).
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }
}

// ---------------------------------------------------------------------
// Health monitoring
// ---------------------------------------------------------------------

/// Scans a fresh iterate for numeric corruption and re-validates the
/// deterministic chunked checksum.
pub(crate) fn check_health(q: &[f64], step: usize) -> Result<(), NumericHealthError> {
    for (state, &v) in q.iter().enumerate() {
        let kind = if v.is_nan() {
            HealthKind::NotANumber
        } else if v.is_infinite() {
            HealthKind::Infinite
        } else if !(-HEALTH_SLACK..=1.0 + HEALTH_SLACK).contains(&v) {
            HealthKind::OutOfRange { value: v }
        } else {
            continue;
        };
        return Err(NumericHealthError { step, state, kind });
    }
    // Belt and braces: finite summands in [-slack, 1 + slack] cannot
    // overflow a Neumaier reduction, so a non-finite checksum here means
    // memory corruption rather than arithmetic — attribute it to the
    // reduction itself.
    if !chunked_stable_sum(q, CHECKSUM_BLOCK).is_finite() {
        return Err(NumericHealthError {
            step,
            state: 0,
            kind: HealthKind::Infinite,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Checkpoint format (version 1)
//
// All integers little-endian, all f64 stored as raw bits (bitwise-exact
// resume is the whole point):
//
//   magic[8] | version u32 | n u64 | epsilon bits u64 | rate bits u64
//   | nqueries u64 | nqueries x (t bits u64, objective u8)
//   | ncompleted u64 | ncompleted x (iterations u64, n x value bits u64)
//   | has_in_progress u8
//   | [query u64 | k u64 | current_i u64 | n x q bits u64]   (if 1)
//   | fnv1a-64 of everything above, u64
//
// The stored iterate is q_{current_i} (the vector after step current_i
// completed); resuming executes steps current_i - 1 down to 1.
// ---------------------------------------------------------------------

/// File magic of version-1 checkpoints.
const CK_MAGIC: [u8; 8] = *b"UNICKPT\0";
/// Current checkpoint format version.
const CK_VERSION: u32 = 1;

/// FNV-1a 64-bit, the checkpoint trailer hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn objective_byte(objective: Objective) -> u8 {
    match objective {
        Objective::Maximize => 0,
        Objective::Minimize => 1,
    }
}

/// A completed query's answer as stored in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
struct CompletedQuery {
    iterations: usize,
    values: Vec<f64>,
}

/// The interrupted query's raw state as stored in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InProgress {
    /// Index of the interrupted query (always `completed.len()`).
    query: usize,
    /// Its total step count `k(ε, E, t)`.
    k: usize,
    /// The stored iterate is `q_{current_i}`; in `1..=k + 1`.
    current_i: usize,
    /// Raw (unclamped) iterate bits.
    q: Vec<f64>,
}

/// The full decoded content of a checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointData {
    n: usize,
    epsilon_bits: u64,
    rate_bits: u64,
    /// `(t bits, objective byte)` per query, in batch order.
    queries: Vec<(u64, u8)>,
    completed: Vec<CompletedQuery>,
    in_progress: Option<InProgress>,
}

/// Bounds-checked little-endian cursor over a checkpoint body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("file ends {} bytes short", len))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len64(&mut self, what: &str) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| format!("{what} does not fit in usize"))
    }

    /// Reads `n` f64 bit patterns; bounds are checked before allocating.
    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let raw = self.take(n.checked_mul(8).ok_or("value vector length overflows")?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

fn io_error(path: &Path, e: std::io::Error) -> GuardError {
    GuardError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

impl CheckpointData {
    fn push_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CK_MAGIC);
        out.extend_from_slice(&CK_VERSION.to_le_bytes());
        Self::push_u64(&mut out, self.n as u64);
        Self::push_u64(&mut out, self.epsilon_bits);
        Self::push_u64(&mut out, self.rate_bits);
        Self::push_u64(&mut out, self.queries.len() as u64);
        for &(t_bits, objective) in &self.queries {
            Self::push_u64(&mut out, t_bits);
            out.push(objective);
        }
        Self::push_u64(&mut out, self.completed.len() as u64);
        for done in &self.completed {
            Self::push_u64(&mut out, done.iterations as u64);
            for v in &done.values {
                Self::push_u64(&mut out, v.to_bits());
            }
        }
        match &self.in_progress {
            None => out.push(0),
            Some(ip) => {
                out.push(1);
                Self::push_u64(&mut out, ip.query as u64);
                Self::push_u64(&mut out, ip.k as u64);
                Self::push_u64(&mut out, ip.current_i as u64);
                for v in &ip.q {
                    Self::push_u64(&mut out, v.to_bits());
                }
            }
        }
        let trailer = fnv1a64(&out);
        out.extend_from_slice(&trailer.to_le_bytes());
        out
    }

    /// Decodes and fully validates a checkpoint image; the `Err` string
    /// is the corruption reason.
    fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let min = CK_MAGIC.len() + 4 + 8; // header + trailer
        if bytes.len() < min {
            return Err(format!(
                "file is {} bytes, shorter than the {min}-byte minimum (truncated?)",
                bytes.len()
            ));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(format!(
                "checksum trailer mismatch: stored {stored:#018x}, computed {actual:#018x} \
                 (truncated or bit-rotted file)"
            ));
        }
        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        if r.take(CK_MAGIC.len())? != CK_MAGIC {
            return Err("bad magic: not a unicon checkpoint".into());
        }
        let version = r.u32()?;
        if version != CK_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads {CK_VERSION})"
            ));
        }
        let n = r.len64("state count")?;
        let epsilon_bits = r.u64()?;
        let rate_bits = r.u64()?;
        let nqueries = r.len64("query count")?;
        // every query costs 9 bytes; reject absurd counts before allocating
        if nqueries.checked_mul(9).is_none_or(|b| b > body.len()) {
            return Err(format!("query count {nqueries} exceeds the file size"));
        }
        let mut queries = Vec::with_capacity(nqueries);
        for _ in 0..nqueries {
            let t_bits = r.u64()?;
            let objective = r.u8()?;
            if objective > 1 {
                return Err(format!("objective byte {objective} is neither 0 nor 1"));
            }
            queries.push((t_bits, objective));
        }
        let ncompleted = r.len64("completed count")?;
        if ncompleted > nqueries {
            return Err(format!(
                "{ncompleted} completed queries recorded but only {nqueries} queries exist"
            ));
        }
        let mut completed = Vec::with_capacity(ncompleted);
        for _ in 0..ncompleted {
            let iterations = r.len64("iteration count")?;
            let values = r.f64_vec(n)?;
            completed.push(CompletedQuery { iterations, values });
        }
        let in_progress = match r.u8()? {
            0 => None,
            1 => {
                let query = r.len64("in-progress query index")?;
                let k = r.len64("in-progress step total")?;
                let current_i = r.len64("in-progress step index")?;
                let q = r.f64_vec(n)?;
                if query != completed.len() {
                    return Err(format!(
                        "in-progress query index {query} does not follow the \
                         {} completed queries",
                        completed.len()
                    ));
                }
                if query >= nqueries {
                    return Err(format!(
                        "in-progress query index {query} out of range for {nqueries} queries"
                    ));
                }
                if current_i == 0 || current_i > k + 1 {
                    return Err(format!(
                        "in-progress step index {current_i} outside 1..={}",
                        k + 1
                    ));
                }
                Some(InProgress {
                    query,
                    k,
                    current_i,
                    q,
                })
            }
            other => {
                return Err(format!(
                    "in-progress marker byte {other} is neither 0 nor 1"
                ))
            }
        };
        if r.pos != body.len() {
            return Err(format!(
                "{} trailing bytes after the in-progress section",
                body.len() - r.pos
            ));
        }
        Ok(Self {
            n,
            epsilon_bits,
            rate_bits,
            queries,
            completed,
            in_progress,
        })
    }

    /// Writes atomically: temp file in the same directory, then rename.
    fn write_atomic(&self, path: &Path) -> Result<(), GuardError> {
        let bytes = self.to_bytes();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, &bytes).map_err(|e| io_error(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_error(path, e))?;
        Ok(())
    }

    fn read(path: &Path) -> Result<Self, GuardError> {
        let bytes = std::fs::read(path).map_err(|e| io_error(path, e))?;
        Self::from_bytes(&bytes).map_err(|reason| GuardError::CheckpointCorrupt {
            path: path.to_path_buf(),
            reason,
        })
    }

    /// Rejects checkpoints taken from a different batch. Comparisons are
    /// bitwise: resuming under a perturbed epsilon, rate or query list
    /// would silently break the determinism contract.
    fn validate_against(&self, batch: &ReachBatch<'_>, pre: &Precompute) -> Result<(), GuardError> {
        let mismatch = |reason: String| Err(GuardError::CheckpointMismatch { reason });
        if self.n != batch.ctmdp.num_states() {
            return mismatch(format!(
                "checkpoint covers {} states, the batch model has {}",
                self.n,
                batch.ctmdp.num_states()
            ));
        }
        if self.epsilon_bits != batch.epsilon.to_bits() {
            return mismatch(format!(
                "checkpoint epsilon {} differs from batch epsilon {}",
                f64::from_bits(self.epsilon_bits),
                batch.epsilon
            ));
        }
        if self.rate_bits != pre.rate.to_bits() {
            return mismatch(format!(
                "checkpoint uniform rate {} differs from the model's {}",
                f64::from_bits(self.rate_bits),
                pre.rate
            ));
        }
        if self.queries.len() != batch.queries.len() {
            return mismatch(format!(
                "checkpoint lists {} queries, the batch has {}",
                self.queries.len(),
                batch.queries.len()
            ));
        }
        for (i, (&(t_bits, objective), q)) in self.queries.iter().zip(&batch.queries).enumerate() {
            if t_bits != q.t.to_bits() || objective != objective_byte(q.objective) {
                return mismatch(format!(
                    "query {i} differs: checkpoint (t = {}, objective byte {objective}), \
                     batch (t = {}, objective byte {})",
                    f64::from_bits(t_bits),
                    q.t,
                    objective_byte(q.objective)
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The guarded engine
// ---------------------------------------------------------------------

/// One guarded value-iteration step, split over `workers` scoped threads
/// with each worker's chunk under `catch_unwind`. Returns the index of a
/// panicking worker, leaving `q_out` partially written (the caller
/// discards or recomputes it).
///
/// Determinism: every slot is written by the shared [`sweep_states`]
/// sweep (with the run's selected kernel) against the immutable `q_next`
/// snapshot, so the result is bitwise independent of `workers`.
#[allow(clippy::too_many_arguments)]
fn guarded_step(
    kernel: Kernel,
    ctmdp: &crate::model::Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    psi: f64,
    q_next: &[f64],
    q_out: &mut [f64],
    maximize: bool,
    workers: usize,
    step: usize,
    panic_at: Option<(usize, usize)>,
) -> Result<(), usize> {
    let ranges: Vec<std::ops::Range<usize>> = assign_blocks(q_out.len(), workers.max(1))
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect();
    let mut failed: Option<usize> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest: &mut [f64] = q_out;
        for (w, range) in ranges.iter().enumerate() {
            // assign_blocks yields contiguous ascending ranges over
            // 0..n, so splitting in order hands each worker its slots.
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            handles.push(scope.spawn(move || {
                // AssertUnwindSafe: on Err the chunk is discarded (Fail)
                // or fully rewritten (Sequential), so a half-written
                // buffer never escapes.
                catch_unwind(AssertUnwindSafe(|| {
                    if panic_at == Some((step, w)) {
                        panic!("injected worker fault (step {step}, worker {w})");
                    }
                    sweep_states(
                        kernel,
                        ctmdp,
                        pre,
                        goal,
                        range,
                        psi,
                        q_next,
                        maximize,
                        chunk,
                        &mut [],
                    );
                }))
                .map_err(|_| w)
            }));
        }
        for handle in handles {
            if let Err(w) = handle.join().expect("guarded worker catches its panics") {
                failed.get_or_insert(w);
            }
        }
    });
    match failed {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

/// Sequential recomputation of one step — the quarantine fallback.
#[allow(clippy::too_many_arguments)]
fn sequential_step(
    kernel: Kernel,
    ctmdp: &crate::model::Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    psi: f64,
    q_next: &[f64],
    q_out: &mut [f64],
    maximize: bool,
) {
    let n = q_out.len();
    sweep_states(
        kernel,
        ctmdp,
        pre,
        goal,
        0..n,
        psi,
        q_next,
        maximize,
        q_out,
        &mut [],
    );
}

/// Brackets the interrupted query when stopping before step `next_i`
/// with `q_next` holding `q_{next_i + 1}`.
#[allow(clippy::too_many_arguments)]
fn make_partial(
    query: usize,
    t: f64,
    fg: &FoxGlynn,
    k: usize,
    next_i: usize,
    goal: &[bool],
    q_next: &[f64],
    epsilon: f64,
) -> PartialQuery {
    let lower = finalize_values(goal, q_next);
    // Soundness of the bracket: the truncated iterate counts exactly the
    // first-hit events "hit at the r-th jump AND at least next_i + r
    // Poisson jumps happen within t", so it undercounts the true value
    // (lower bound), and each event's deficit is the Poisson mass of the
    // length-next_i window starting at its jump index. First-hit events
    // are disjoint (their probabilities sum to <= 1), so the worst such
    // window (plus the truncation error ε) bounds the gap from above.
    let mut window = 0.0f64;
    for r in 1..=k {
        window = window.max(fg.tail_from(r) - fg.tail_from(r + next_i));
    }
    let remaining = window.max(0.0) + epsilon;
    let upper = lower.iter().map(|&v| (v + remaining).min(1.0)).collect();
    PartialQuery {
        query,
        t,
        completed_steps: k - next_i,
        total_steps: k,
        lower,
        upper,
    }
}

/// Snapshot of everything a checkpoint must capture at this moment.
fn checkpoint_data(
    batch: &ReachBatch<'_>,
    pre: &Precompute,
    results: &[ReachResult],
    in_progress: Option<InProgress>,
) -> CheckpointData {
    CheckpointData {
        n: batch.ctmdp.num_states(),
        epsilon_bits: batch.epsilon.to_bits(),
        rate_bits: pre.rate.to_bits(),
        queries: batch
            .queries
            .iter()
            .map(|q| (q.t.to_bits(), objective_byte(q.objective)))
            .collect(),
        completed: results
            .iter()
            .map(|r| CompletedQuery {
                iterations: r.iterations,
                values: r.values.clone(),
            })
            .collect(),
        in_progress,
    }
}

/// Applies the planned checkpoint truncation, if armed.
#[cfg(feature = "fault-inject")]
fn apply_truncate_fault(guard: &GuardOptions, path: &Path) -> Result<(), GuardError> {
    if let Some(bytes) = guard
        .fault_plan
        .as_ref()
        .and_then(|p| p.truncate_checkpoint_bytes)
    {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_error(path, e))?;
        let len = file.metadata().map_err(|e| io_error(path, e))?.len();
        file.set_len(len.saturating_sub(bytes))
            .map_err(|e| io_error(path, e))?;
    }
    Ok(())
}

/// Writes a checkpoint, records the event and (under `fault-inject`)
/// applies the planned truncation.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    batch: &ReachBatch<'_>,
    pre: &Precompute,
    guard: &GuardOptions,
    results: &[ReachResult],
    in_progress: Option<InProgress>,
    query: usize,
    step: usize,
    events: &mut Vec<GuardEvent>,
) -> Result<(), GuardError> {
    let Some(cfg) = &guard.checkpoint else {
        return Ok(());
    };
    checkpoint_data(batch, pre, results, in_progress).write_atomic(&cfg.path)?;
    events.push(GuardEvent::CheckpointWritten { query, step });
    unicon_obs::emit(unicon_obs::Class::Guard, || unicon_obs::Event::Guard {
        kind: "checkpoint",
        query,
        step,
        detail: cfg.path.display().to_string(),
    });
    #[cfg(feature = "fault-inject")]
    apply_truncate_fault(guard, &cfg.path)?;
    Ok(())
}

/// The shared driver behind [`ReachBatch::run_guarded`],
/// [`ReachBatch::run_guarded_with_engine`] and [`ReachBatch::resume`].
/// `shared_pre` reuses a long-lived precomputation (the serve path);
/// `None` builds a fresh one — the choice affects no result bit.
fn run_guarded_inner(
    batch: &ReachBatch<'_>,
    guard: &GuardOptions,
    resume: Option<CheckpointData>,
    shared_pre: Option<&Precompute>,
) -> Result<GuardedRun, GuardError> {
    validate_epsilon(batch.epsilon)?;
    for q in &batch.queries {
        validate_time(q.t)?;
    }
    let built;
    let pre: &Precompute = match shared_pre {
        Some(p) => p,
        None => {
            built = Precompute::new(batch.ctmdp, &batch.goal)?;
            &built
        }
    };
    let n = batch.ctmdp.num_states();
    let mut workers = resolve_threads(batch.threads).min(n).max(1);
    // A planned worker panic names a specific worker index, so the planned
    // pool must actually spawn: honor the literal thread request even on
    // hardware with fewer cores (results are thread-count invariant).
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = &guard.fault_plan {
        if plan.panic_worker_at.is_some() {
            workers = batch.threads.min(n).max(1);
        }
    }
    let every = guard.checkpoint.as_ref().map_or(1, |c| c.every.max(1));

    let mut results: Vec<ReachResult> = Vec::new();
    let mut events: Vec<GuardEvent> = Vec::new();
    let mut in_progress: Option<InProgress> = None;
    if let Some(ck) = resume {
        ck.validate_against(batch, pre)?;
        for done in ck.completed {
            results.push(ReachResult {
                values: done.values,
                iterations: done.iterations,
                uniform_rate: pre.rate,
                runtime: Duration::ZERO,
                decisions: Vec::new(),
            });
        }
        in_progress = ck.in_progress;
        let (query, step) = match &in_progress {
            Some(ip) => (ip.query, ip.current_i),
            None => (results.len(), 0),
        };
        events.push(GuardEvent::Resumed { query, step });
        unicon_obs::emit(unicon_obs::Class::Guard, || unicon_obs::Event::Guard {
            kind: "resumed",
            query,
            step,
            detail: String::new(),
        });
    }
    let start_query = results.len();

    #[cfg(feature = "fault-inject")]
    let panic_at = guard.fault_plan.as_ref().and_then(|p| p.panic_worker_at);
    #[cfg(not(feature = "fault-inject"))]
    let panic_at: Option<(usize, usize)> = None;

    let mut iterations_done = 0usize;
    let mut health_checks = 0usize;
    let mut steps_since_ck = 0usize;

    for qi in start_query..batch.queries.len() {
        let query = batch.queries[qi];
        let query_start = Instant::now(); // det-lint: allow(clock): runtime telemetry only.
        if query.t == 0.0 || pre.rate == 0.0 {
            results.push(indicator_result(&batch.goal, pre.rate));
            write_checkpoint(batch, pre, guard, &results, None, qi, 0, &mut events)?;
            continue;
        }

        // Bitwise identical to the plain batch path: try_weights runs the
        // exact FoxGlynn::new + right_truncation the WeightCache runs,
        // and additionally types the underflow regime.
        let cached = FoxGlynn::try_weights(pre.rate * query.t, batch.epsilon)?;
        let (fg, k) = (cached.fg, cached.truncation);
        let maximize = query.objective == Objective::Maximize;
        unicon_obs::emit(unicon_obs::Class::Iter, || unicon_obs::Event::QueryStart {
            query: qi,
            t: query.t,
            lambda: fg.lambda(),
            left: fg.left_truncation(batch.epsilon),
            right: k,
        });

        let mut q_next = vec![0.0f64; n]; // q_{k+1} = 0
        let mut q = vec![0.0f64; n];
        let mut i_start = k;
        if let Some(ip) = in_progress.take() {
            if ip.k != k {
                return Err(GuardError::CheckpointMismatch {
                    reason: format!(
                        "query {qi} needs {k} steps but the checkpoint recorded {} — \
                         the checkpoint was written by a different build",
                        ip.k
                    ),
                });
            }
            if ip.q.len() != n {
                return Err(GuardError::CheckpointMismatch {
                    reason: format!("stored iterate has {} entries, expected {n}", ip.q.len()),
                });
            }
            q_next = ip.q; // q_{current_i}, exact bits
            i_start = ip.current_i - 1; // next step to execute
        }

        for i in (1..=i_start).rev() {
            if let Some(reason) = guard.budget.exceeded(iterations_done) {
                unicon_obs::emit(unicon_obs::Class::Guard, || unicon_obs::Event::Guard {
                    kind: "budget-exhausted",
                    query: qi,
                    step: i,
                    detail: reason.as_str().to_string(),
                });
                let partial =
                    make_partial(qi, query.t, &fg, k, i, &batch.goal, &q_next, batch.epsilon);
                write_checkpoint(
                    batch,
                    pre,
                    guard,
                    &results,
                    Some(InProgress {
                        query: qi,
                        k,
                        current_i: i + 1,
                        q: q_next.clone(),
                    }),
                    qi,
                    i + 1,
                    &mut events,
                )?;
                return Ok(GuardedRun {
                    results,
                    stopped: Some((reason, Some(partial))),
                    events,
                    health_checks,
                });
            }

            let psi = fg.psi(i);
            if let Err(worker) = guarded_step(
                batch.kernel,
                batch.ctmdp,
                pre,
                &batch.goal,
                psi,
                &q_next,
                &mut q,
                maximize,
                workers,
                i,
                panic_at,
            ) {
                match guard.on_degrade {
                    DegradePolicy::Fail => {
                        return Err(GuardError::WorkerPanicked {
                            query: qi,
                            step: i,
                            worker,
                        });
                    }
                    DegradePolicy::Sequential => {
                        events.push(GuardEvent::Degradation {
                            query: qi,
                            step: i,
                            worker,
                            from_threads: workers,
                            to_threads: 1,
                        });
                        unicon_obs::emit(unicon_obs::Class::Guard, || unicon_obs::Event::Guard {
                            kind: "degradation",
                            query: qi,
                            step: i,
                            detail: format!(
                                "worker {worker} panicked; degrading {workers} -> 1 threads"
                            ),
                        });
                        workers = 1;
                        // Replay from the untouched snapshot — same
                        // kernel, same inputs, so the degraded step is
                        // bitwise the step the workers should have done.
                        sequential_step(
                            batch.kernel,
                            batch.ctmdp,
                            pre,
                            &batch.goal,
                            psi,
                            &q_next,
                            &mut q,
                            maximize,
                        );
                    }
                }
            }

            #[cfg(feature = "fault-inject")]
            if let Some((fault_step, fault_state)) =
                guard.fault_plan.as_ref().and_then(|p| p.nan_at)
            {
                if fault_step == i && fault_state < n {
                    q[fault_state] = f64::NAN;
                }
            }

            health_checks += 1;
            check_health(&q, i)?;
            iterations_done += 1;
            crate::reachability::emit_iteration(qi, i, &fg, k, &q);
            std::mem::swap(&mut q, &mut q_next); // q_next now holds q_i

            if guard.checkpoint.is_some() {
                steps_since_ck += 1;
                if steps_since_ck >= every {
                    steps_since_ck = 0;
                    write_checkpoint(
                        batch,
                        pre,
                        guard,
                        &results,
                        Some(InProgress {
                            query: qi,
                            k,
                            current_i: i,
                            q: q_next.clone(),
                        }),
                        qi,
                        i,
                        &mut events,
                    )?;
                }
            }
        }

        results.push(ReachResult {
            values: finalize_values(&batch.goal, &q_next),
            iterations: k,
            uniform_rate: pre.rate,
            runtime: query_start.elapsed(),
            decisions: Vec::new(),
        });
        steps_since_ck = 0;
        write_checkpoint(batch, pre, guard, &results, None, qi, 0, &mut events)?;
    }

    Ok(GuardedRun {
        results,
        stopped: None,
        events,
        health_checks,
    })
}

impl ReachBatch<'_> {
    /// Runs the batch under the guarded execution layer: numeric health
    /// checks after every step, budget/cancellation polling before every
    /// step, optional periodic checkpoints and worker-panic quarantine.
    ///
    /// Completed results are bitwise identical to [`ReachBatch::run`]
    /// for every thread count.
    ///
    /// # Errors
    ///
    /// [`GuardError::Reach`] for invalid parameters or a non-uniform
    /// model, [`GuardError::FoxGlynn`] when ε is below the certifiable
    /// floor for `rate·t`, [`GuardError::Health`] on numeric corruption,
    /// [`GuardError::WorkerPanicked`] under [`DegradePolicy::Fail`], and
    /// [`GuardError::Io`] if a checkpoint cannot be written. Budget
    /// exhaustion is **not** an error — see [`GuardedRun::stopped`].
    ///
    /// # Examples
    ///
    /// ```
    /// use unicon_ctmdp::guard::{GuardOptions, RunBudget};
    /// use unicon_ctmdp::{par::ReachBatch, CtmdpBuilder};
    ///
    /// let mut b = CtmdpBuilder::new(3, 0);
    /// b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
    /// b.transition(1, "a", &[(2, 2.0)]);
    /// b.transition(2, "a", &[(2, 2.0)]);
    /// let m = b.build();
    /// let batch = ReachBatch::new(&m, &[false, false, true]).query(2.0);
    ///
    /// let run = batch.run_guarded(&GuardOptions::default()).unwrap();
    /// assert!(run.is_complete());
    ///
    /// let tight = GuardOptions::default().with_budget(RunBudget::default().with_max_iterations(1));
    /// let partial = batch.run_guarded(&tight).unwrap();
    /// assert!(!partial.is_complete());
    /// ```
    pub fn run_guarded(&self, guard: &GuardOptions) -> Result<GuardedRun, GuardError> {
        run_guarded_inner(self, guard, None, None)
    }

    /// Runs the batch under guard options while reusing the shared
    /// precomputation held by a long-lived [`ReachEngine`] — the serve
    /// path, where one engine answers many budgeted requests without
    /// rebuilding the uniformised matrix per request.
    ///
    /// The result is bitwise identical to [`ReachBatch::run_guarded`];
    /// sharing the precomputation affects no result bit.
    ///
    /// # Errors
    ///
    /// [`GuardError::Reach`] when the engine was built for a different
    /// model or goal set than this batch, plus every error
    /// [`ReachBatch::run_guarded`] can return.
    pub fn run_guarded_with_engine(
        &self,
        guard: &GuardOptions,
        engine: &crate::par::ReachEngine,
    ) -> Result<GuardedRun, GuardError> {
        engine.check_compatible(self.ctmdp, &self.goal)?;
        run_guarded_inner(self, guard, None, Some(&engine.pre))
    }

    /// Resumes a guarded run from a checkpoint written by an earlier
    /// [`ReachBatch::run_guarded`] against the **same** batch.
    ///
    /// The continuation is bitwise identical to an uninterrupted run:
    /// the checkpoint stores the exact iterate bits and the Poisson
    /// weights are recomputed deterministically from the stored regime.
    ///
    /// # Errors
    ///
    /// [`GuardError::CheckpointCorrupt`] when the file fails structural
    /// or checksum validation (including truncation),
    /// [`GuardError::CheckpointMismatch`] when it was taken from a
    /// different batch, plus every error [`ReachBatch::run_guarded`]
    /// can return.
    pub fn resume(
        &self,
        path: impl AsRef<Path>,
        guard: &GuardOptions,
    ) -> Result<GuardedRun, GuardError> {
        let data = CheckpointData::read(path.as_ref())?;
        run_guarded_inner(self, guard, Some(data), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ctmdp, CtmdpBuilder};

    fn chain() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
        b.transition(1, "a", &[(2, 2.0)]);
        b.transition(2, "a", &[(2, 2.0)]);
        b.build()
    }

    fn bits(values: &[f64]) -> Vec<u64> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    fn temp_ck(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("unicon_guard_{}_{name}.ck", std::process::id()))
    }

    #[test]
    fn guarded_run_matches_plain_batch_bitwise() {
        let m = chain();
        let goal = [false, false, true];
        for threads in [1, 3] {
            let batch = ReachBatch::new(&m, &goal)
                .with_epsilon(1e-9)
                .with_threads(threads)
                .query(0.5)
                .query(2.5)
                .query_with(2.5, Objective::Minimize)
                .query(0.0);
            let plain = batch.run().unwrap();
            let guarded = batch.run_guarded(&GuardOptions::default()).unwrap();
            assert!(guarded.is_complete());
            assert_eq!(guarded.results.len(), plain.results.len());
            for (g, p) in guarded.results.iter().zip(&plain.results) {
                assert_eq!(bits(&g.values), bits(&p.values), "threads {threads}");
                assert_eq!(g.iterations, p.iterations);
            }
            assert!(guarded.events.is_empty());
            let steps: usize = plain.results.iter().map(|r| r.iterations).sum();
            assert_eq!(guarded.health_checks, steps);
        }
    }

    #[test]
    fn guarded_run_with_engine_matches_run_guarded_bitwise() {
        use crate::par::ReachEngine;

        let m = chain();
        let goal = [false, false, true];
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let batch = ReachBatch::new(&m, &goal)
            .with_epsilon(1e-9)
            .query(0.5)
            .query(2.5)
            .query_with(2.5, Objective::Minimize);
        let fresh = batch.run_guarded(&GuardOptions::default()).unwrap();
        let shared = batch
            .run_guarded_with_engine(&GuardOptions::default(), &engine)
            .unwrap();
        assert!(shared.is_complete());
        assert_eq!(shared.results.len(), fresh.results.len());
        for (s, f) in shared.results.iter().zip(&fresh.results) {
            assert_eq!(bits(&s.values), bits(&f.values));
            assert_eq!(s.iterations, f.iterations);
        }

        // Budget exhaustion over a shared engine still yields the
        // partial-result shape (the serve admission-control path).
        let tight =
            GuardOptions::default().with_budget(RunBudget::default().with_max_iterations(1));
        let partial = batch.run_guarded_with_engine(&tight, &engine).unwrap();
        let (reason, pq) = partial.stopped.expect("budget must stop the run");
        assert_eq!(reason, StopReason::MaxIterations);
        assert_eq!(pq.unwrap().completed_steps, 1);

        // A mismatched engine is a typed error, not a wrong answer.
        let other_goal = [true, false, false];
        let other = ReachEngine::new(&m, &other_goal).unwrap();
        let err = batch
            .run_guarded_with_engine(&GuardOptions::default(), &other)
            .unwrap_err();
        assert!(matches!(err, GuardError::Reach(_)), "got {err:?}");
    }

    #[test]
    fn budget_stop_yields_partial_bracketing_the_true_values() {
        let m = chain();
        let goal = [false, false, true];
        let batch = ReachBatch::new(&m, &goal).with_epsilon(1e-9).query(2.5);
        let full = batch.run().unwrap();
        let k = full.results[0].iterations;
        assert!(k > 4, "need a multi-step query, got k = {k}");
        for max in [0, 1, k / 2, k - 1] {
            let guard =
                GuardOptions::default().with_budget(RunBudget::default().with_max_iterations(max));
            let run = batch.run_guarded(&guard).unwrap();
            let (reason, partial) = run.stopped.expect("budget must stop the run");
            assert_eq!(reason, StopReason::MaxIterations);
            let partial = partial.expect("a query was in flight");
            assert_eq!(partial.query, 0);
            assert_eq!(partial.completed_steps, max);
            assert_eq!(partial.total_steps, k);
            for s in 0..3 {
                let v = full.results[0].values[s];
                assert!(
                    partial.lower[s] <= v + 1e-9,
                    "max {max} state {s}: lower {} vs {v}",
                    partial.lower[s]
                );
                assert!(
                    partial.upper[s] >= v - 1e-9,
                    "max {max} state {s}: upper {} vs {v}",
                    partial.upper[s]
                );
                assert!((0.0..=1.0).contains(&partial.lower[s]));
                assert!((0.0..=1.0).contains(&partial.upper[s]));
            }
            assert!(run.results.is_empty());
        }
    }

    #[test]
    fn raised_cancel_flag_stops_before_the_first_step() {
        let m = chain();
        let goal = [false, false, true];
        let flag = Arc::new(AtomicBool::new(true));
        let guard = GuardOptions::default()
            .with_budget(RunBudget::default().with_cancel_flag(Arc::clone(&flag)));
        let run = ReachBatch::new(&m, &goal)
            .query(2.5)
            .run_guarded(&guard)
            .unwrap();
        let (reason, partial) = run.stopped.unwrap();
        assert_eq!(reason, StopReason::Cancelled);
        assert_eq!(partial.unwrap().completed_steps, 0);
        assert_eq!(run.health_checks, 0);
    }

    #[test]
    fn expired_deadline_stops_the_run() {
        let m = chain();
        let goal = [false, false, true];
        let guard =
            GuardOptions::default().with_budget(RunBudget::default().with_deadline(Instant::now()));
        let run = ReachBatch::new(&m, &goal)
            .query(2.5)
            .run_guarded(&guard)
            .unwrap();
        assert_eq!(run.stopped.unwrap().0, StopReason::DeadlineExpired);
    }

    #[test]
    fn checkpoint_resume_is_bitwise_identical() {
        let m = chain();
        let goal = [false, false, true];
        for threads in [1, 3] {
            let path = temp_ck(&format!("resume_t{threads}"));
            let batch = ReachBatch::new(&m, &goal)
                .with_epsilon(1e-9)
                .with_threads(threads)
                .query(1.0)
                .query(2.5);
            let reference = batch.run().unwrap();

            // Stop after 1 step, then after 4 more, then run to the end:
            // two resume hops across a query boundary-free region plus a
            // final unbounded hop.
            let ck = CheckpointConfig::new(&path, 2);
            let guard_stop1 = GuardOptions::default()
                .with_checkpoint(ck.clone())
                .with_budget(RunBudget::default().with_max_iterations(1));
            let first = batch.run_guarded(&guard_stop1).unwrap();
            assert!(!first.is_complete());

            let guard_stop2 = GuardOptions::default()
                .with_checkpoint(ck.clone())
                .with_budget(RunBudget::default().with_max_iterations(4));
            let second = batch.resume(&path, &guard_stop2).unwrap();
            assert!(!second.is_complete());
            assert!(matches!(
                second.events.first(),
                Some(GuardEvent::Resumed { .. })
            ));

            let final_run = batch
                .resume(&path, &GuardOptions::default().with_checkpoint(ck))
                .unwrap();
            assert!(final_run.is_complete(), "threads {threads}");
            assert_eq!(final_run.results.len(), reference.results.len());
            for (g, p) in final_run.results.iter().zip(&reference.results) {
                assert_eq!(bits(&g.values), bits(&p.values), "threads {threads}");
                assert_eq!(g.iterations, p.iterations);
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resume_of_a_completed_checkpoint_returns_the_results() {
        let m = chain();
        let goal = [false, false, true];
        let path = temp_ck("completed");
        let batch = ReachBatch::new(&m, &goal).query(1.0);
        let guard = GuardOptions::default().with_checkpoint(CheckpointConfig::new(&path, 8));
        let run = batch.run_guarded(&guard).unwrap();
        assert!(run.is_complete());
        let resumed = batch.resume(&path, &GuardOptions::default()).unwrap();
        assert!(resumed.is_complete());
        assert_eq!(
            bits(&resumed.results[0].values),
            bits(&run.results[0].values)
        );
        assert!(matches!(
            resumed.events.first(),
            Some(GuardEvent::Resumed { query: 1, step: 0 })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_reports_corrupt_not_ub() {
        let m = chain();
        let goal = [false, false, true];
        let path = temp_ck("truncated");
        let batch = ReachBatch::new(&m, &goal).query(2.5);
        let guard = GuardOptions::default()
            .with_checkpoint(CheckpointConfig::new(&path, 1))
            .with_budget(RunBudget::default().with_max_iterations(3));
        batch.run_guarded(&guard).unwrap();

        // chop bytes off the tail: the trailer no longer matches
        let full = std::fs::read(&path).unwrap();
        for cut in [1, 7, full.len() / 2] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let err = batch.resume(&path, &GuardOptions::default()).unwrap_err();
            assert!(
                matches!(err, GuardError::CheckpointCorrupt { .. }),
                "cut {cut}: {err}"
            );
        }
        // flip a byte in the middle: same detection
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            batch.resume(&path, &GuardOptions::default()),
            Err(GuardError::CheckpointCorrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_a_different_batch_is_a_mismatch() {
        let m = chain();
        let goal = [false, false, true];
        let path = temp_ck("mismatch");
        let batch = ReachBatch::new(&m, &goal).with_epsilon(1e-6).query(2.5);
        let guard = GuardOptions::default()
            .with_checkpoint(CheckpointConfig::new(&path, 1))
            .with_budget(RunBudget::default().with_max_iterations(2));
        batch.run_guarded(&guard).unwrap();

        let other_eps = ReachBatch::new(&m, &goal).with_epsilon(1e-8).query(2.5);
        let err = other_eps
            .resume(&path, &GuardOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, GuardError::CheckpointMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("epsilon"));

        let other_queries = ReachBatch::new(&m, &goal).with_epsilon(1e-6).query(3.0);
        let err = other_queries
            .resume(&path, &GuardOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, GuardError::CheckpointMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_every_bit() {
        let data = CheckpointData {
            n: 3,
            epsilon_bits: 1e-9f64.to_bits(),
            rate_bits: 2.0f64.to_bits(),
            queries: vec![(1.0f64.to_bits(), 0), (2.5f64.to_bits(), 1)],
            completed: vec![CompletedQuery {
                iterations: 17,
                values: vec![0.25, 0.5, 1.0],
            }],
            in_progress: Some(InProgress {
                query: 1,
                k: 23,
                current_i: 9,
                q: vec![0.1, 0.2, 0.3],
            }),
        };
        let decoded = CheckpointData::from_bytes(&data.to_bytes()).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn health_check_flags_each_corruption_kind() {
        assert!(check_health(&[0.0, 0.5, 1.0], 7).is_ok());
        // tolerated drift
        assert!(check_health(&[1.0 + HEALTH_SLACK / 2.0, -HEALTH_SLACK / 2.0], 7).is_ok());
        let err = check_health(&[0.0, f64::NAN, 1.0], 7).unwrap_err();
        assert_eq!(err.step, 7);
        assert_eq!(err.state, 1);
        assert_eq!(err.kind, HealthKind::NotANumber);
        let err = check_health(&[f64::INFINITY], 3).unwrap_err();
        assert_eq!(err.kind, HealthKind::Infinite);
        let err = check_health(&[0.0, 1.5], 2).unwrap_err();
        assert_eq!(err.state, 1);
        assert!(matches!(err.kind, HealthKind::OutOfRange { value } if value == 1.5));
        let err = check_health(&[-1e-3], 1).unwrap_err();
        assert!(matches!(err.kind, HealthKind::OutOfRange { .. }));
        assert!(err.to_string().contains("step 1"));
    }

    #[test]
    fn budget_precedence_is_cancel_then_iterations_then_deadline() {
        let flag = Arc::new(AtomicBool::new(true));
        let budget = RunBudget::default()
            .with_cancel_flag(Arc::clone(&flag))
            .with_max_iterations(0)
            .with_deadline(Instant::now());
        assert_eq!(budget.exceeded(0), Some(StopReason::Cancelled));
        flag.store(false, Ordering::SeqCst);
        assert_eq!(budget.exceeded(0), Some(StopReason::MaxIterations));
        let budget = RunBudget::default().with_deadline(Instant::now());
        assert_eq!(budget.exceeded(0), Some(StopReason::DeadlineExpired));
        assert_eq!(RunBudget::default().exceeded(usize::MAX), None);
    }
}
