//! Algorithm 1: timed reachability in uniform CTMDPs
//! (Baier, Haverkort, Hermanns & Katoen, TCS 345, 2005).
//!
//! For a uniform CTMDP with rate `E`, the maximal probability to reach the
//! goal set `B` within `t` time units over all randomized time-abstract
//! history-dependent schedulers is computed by `k = k(ε, E, t)` backward
//! value-iteration steps — `k` is the Fox–Glynn right truncation point of
//! the Poisson(`E·t`) distribution, the iteration counts reported in the
//! paper's Table 1.
//!
//! Following the paper's variant, the maximization at each state ranges
//! over all emanating *transitions* (not merely all actions), because a
//! state may carry several transitions with the same label.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use unicon_numeric::FoxGlynn;
use unicon_sparse::{ClassTiming, CsrMatrix, FusedBuilder, FusedGroups};

use crate::model::{Ctmdp, NotUniformError};

/// Structured error of the timed-reachability engines.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachError {
    /// The CTMDP's exit rates differ — Algorithm 1 requires uniformity.
    NotUniform(NotUniformError),
    /// The requested truncation precision is outside `(0, 1)`.
    InvalidEpsilon {
        /// The offending value (may be non-finite).
        epsilon: f64,
    },
    /// The time bound is negative, NaN or infinite.
    InvalidTimeBound {
        /// The offending value.
        t: f64,
    },
    /// The goal vector's length disagrees with the model's state count.
    GoalLengthMismatch {
        /// Entries in the supplied goal vector.
        goal_len: usize,
        /// States of the analyzed CTMDP.
        num_states: usize,
    },
}

impl std::fmt::Display for ReachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachError::NotUniform(e) => e.fmt(f),
            ReachError::InvalidEpsilon { epsilon } => write!(
                f,
                "truncation precision epsilon must lie in (0, 1), got {epsilon}"
            ),
            ReachError::InvalidTimeBound { t } => {
                write!(f, "time bound must be finite and >= 0, got {t}")
            }
            ReachError::GoalLengthMismatch {
                goal_len,
                num_states,
            } => write!(
                f,
                "goal vector has {goal_len} entries but the CTMDP has {num_states} states"
            ),
        }
    }
}

impl std::error::Error for ReachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReachError::NotUniform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NotUniformError> for ReachError {
    fn from(e: NotUniformError) -> Self {
        ReachError::NotUniform(e)
    }
}

/// Validates a truncation precision, mirroring the Fox–Glynn contract.
pub(crate) fn validate_epsilon(epsilon: f64) -> Result<(), ReachError> {
    if epsilon > 0.0 && epsilon < 1.0 {
        Ok(())
    } else {
        Err(ReachError::InvalidEpsilon { epsilon })
    }
}

/// Validates a time bound: finite and nonnegative (NaN fails both tests).
pub(crate) fn validate_time(t: f64) -> Result<(), ReachError> {
    if t.is_finite() && t >= 0.0 {
        Ok(())
    } else {
        Err(ReachError::InvalidTimeBound { t })
    }
}

/// Validates that a goal vector covers the state space exactly.
pub(crate) fn validate_goal(goal: &[bool], ctmdp: &Ctmdp) -> Result<(), ReachError> {
    if goal.len() == ctmdp.num_states() {
        Ok(())
    } else {
        Err(ReachError::GoalLengthMismatch {
            goal_len: goal.len(),
            num_states: ctmdp.num_states(),
        })
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// `sup_D Pr_D` — the worst case for safety goals.
    #[default]
    Maximize,
    /// `inf_D Pr_D`.
    Minimize,
}

/// Which implementation executes the per-state value-iteration sweep.
///
/// Both kernels compute **bitwise identical** results — the fused kernel
/// replays the reference kernel's exact f64 operation order over a
/// flattened layout — so this choice affects wall-clock time only. The
/// reference kernel is retained as the differential oracle (the same
/// pattern that keeps the worklist refiner honest against the reference
/// refiner), pinned by the `tests/kernel_differential.rs` suite and the
/// ci.sh `--kernel reference` vs `--kernel fused` cmp gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The original two-level traversal: `transitions_from(s)` →
    /// `rate_fn` → shared CSR row in rate-function-pool order.
    Reference,
    /// The fused state-major structure-of-arrays layout compiled by
    /// [`Precompute`]: duplicated rows in sweep order, split
    /// target/weight arrays, inlined goal coefficients, precomputed
    /// state classes, cache-blocked sweep.
    #[default]
    Fused,
}

impl Kernel {
    /// The CLI/JSON spelling of the kernel name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Fused => "fused",
        }
    }
}

/// Options for [`timed_reachability`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachOptions {
    /// Truncation precision ε (the paper uses 1e-6).
    pub epsilon: f64,
    /// Maximize or minimize over schedulers.
    pub objective: Objective,
    /// Record the optimizing decision of every step, enabling
    /// scheduler extraction. Memory is `O(k · |S|)` — keep an eye on it for
    /// long horizons.
    pub record_decisions: bool,
    /// Which sweep kernel to run (bitwise-identical results either way).
    pub kernel: Kernel,
}

impl Default for ReachOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-6,
            objective: Objective::Maximize,
            record_decisions: false,
            kernel: Kernel::default(),
        }
    }
}

impl ReachOptions {
    /// Sets the precision.
    ///
    /// The value is validated by the analyses, not here: running any
    /// engine with an epsilon outside `(0, 1)` (including NaN) returns
    /// [`ReachError::InvalidEpsilon`] instead of panicking, so option
    /// construction stays infallible and chainable.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Enables decision recording.
    pub fn recording_decisions(mut self) -> Self {
        self.record_decisions = true;
        self
    }

    /// Selects the sweep kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Result of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachResult {
    /// `values[s] = opt_D Pr_D(s ⤳≤t B)`.
    pub values: Vec<f64>,
    /// Number of value-iteration steps `k(ε, E, t)`.
    pub iterations: usize,
    /// The uniform rate `E`.
    pub uniform_rate: f64,
    /// Wall-clock time of the iteration itself.
    pub runtime: std::time::Duration,
    /// When requested: `decisions[i][s]` is the index (into
    /// `transitions_from(s)`) chosen at step `i+1` (1-based step `i+1`,
    /// i.e. `decisions[0]` is used for the first jump). Empty otherwise.
    pub decisions: Vec<Vec<u16>>,
}

impl ReachResult {
    /// The value from the model's initial state.
    pub fn from_state(&self, s: u32) -> f64 {
        self.values[s as usize]
    }
}

/// The query-independent precomputation shared by the sequential,
/// parallel and batched engines: the uniform rate, the branching
/// probabilities of every rate function as a CSR matrix (rate functions ×
/// states) and the one-step probability into the goal set.
#[derive(Debug, Clone)]
pub(crate) struct Precompute {
    /// The uniform exit rate `E`.
    pub(crate) rate: f64,
    /// `probs[rf][s'] = R(s') / E_R`, rows in target order.
    pub(crate) probs: CsrMatrix,
    /// `prob_goal[rf] = R(B) / E_R`.
    pub(crate) prob_goal: Vec<f64>,
    /// The fused state-major kernel layout ([`Kernel::Fused`]): one group
    /// per state, one row per emanating transition with its rate
    /// function's probability row **duplicated** (un-pooled) into sweep
    /// order, the goal coefficient inlined as the row bias, and the
    /// goal/absorbing/single/multi class precomputed per state. The row
    /// values are copied bit-exactly from `probs`, in row order, so the
    /// fused kernel reproduces the reference kernel's sums bitwise.
    pub(crate) fused: FusedGroups,
    /// Cross-thread per-[`unicon_sparse::GroupClass`] time attribution,
    /// filled by the fused kernel only while metric telemetry is live.
    /// Purely observational — no value-iteration bit depends on it.
    pub(crate) timing: KernelTiming,
}

/// Atomic per-class kernel-time accumulator shared by all sweep workers
/// of a precomputation. Workers *accumulate* here (they never emit
/// telemetry themselves); the calling thread snapshots deltas per query
/// and emits the derived histograms.
#[derive(Debug, Default)]
pub(crate) struct KernelTiming {
    ns: [AtomicU64; 4],
    groups: [AtomicU64; 4],
}

impl Clone for KernelTiming {
    /// A cloned precomputation starts a fresh ledger: the counters are
    /// observability state, not model state.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl KernelTiming {
    /// Folds one sweep's timing into the shared ledger.
    pub(crate) fn add(&self, t: &ClassTiming) {
        for i in 0..4 {
            self.ns[i].fetch_add(t.ns[i], Ordering::Relaxed);
            self.groups[i].fetch_add(t.groups[i], Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the ledger.
    pub(crate) fn snapshot(&self) -> ClassTiming {
        let mut out = ClassTiming::default();
        for i in 0..4 {
            out.ns[i] = self.ns[i].load(Ordering::Relaxed);
            out.groups[i] = self.groups[i].load(Ordering::Relaxed);
        }
        out
    }
}

/// Metric names of the per-class kernel speed histograms, indexed by
/// `GroupClass as usize` (the `unicon_` exposition prefix is added by
/// the registry). Picoseconds per state: the fixed/empty classes sweep
/// well under a nanosecond per state, so nanosecond-resolution
/// histograms would collapse them into the first bucket.
pub(crate) const CLASS_PS_NAMES: [&str; 4] = [
    "kernel_fixed_ps_per_state",
    "kernel_empty_ps_per_state",
    "kernel_single_ps_per_state",
    "kernel_multi_ps_per_state",
];

/// Emits one `Observe` per group class the query actually swept, with
/// the class's picoseconds-per-state average since `before`. Called on
/// the query's calling thread after all workers have joined.
pub(crate) fn emit_kernel_timing(pre: &Precompute, before: &ClassTiming) {
    let now = pre.timing.snapshot();
    for (i, name) in CLASS_PS_NAMES.iter().enumerate() {
        let groups = now.groups[i].saturating_sub(before.groups[i]);
        if groups == 0 {
            continue;
        }
        let ns = now.ns[i].saturating_sub(before.ns[i]);
        unicon_obs::observe(name, ns.saturating_mul(1000) / groups);
    }
}

impl Precompute {
    /// Verifies uniformity and builds the shared traversal structures —
    /// including the fused kernel layout, compiled once per model.
    pub(crate) fn new(ctmdp: &Ctmdp, goal: &[bool]) -> Result<Self, ReachError> {
        validate_goal(goal, ctmdp)?;
        let rate = ctmdp.uniform_rate()?;
        let rfs = ctmdp.rate_functions();
        let n = ctmdp.num_states();
        let probs = CsrMatrix::from_triplets(
            rfs.len(),
            n,
            rfs.iter()
                .enumerate()
                .flat_map(|(i, rf)| rf.probs().map(move |(tgt, p)| (i, tgt as usize, p))),
        );
        let prob_goal: Vec<f64> = rfs
            .iter()
            .map(|rf| rf.rate_into(goal) / rf.total())
            .collect();

        // Intern each rate-function row once — transitions sharing a rate
        // function reference the same pooled entries, keeping the hot
        // entry pool as small as the CSR the reference kernel reads (and
        // therefore just as cache-resident). Entries are copied bit-exactly
        // from the same CSR rows the reference kernel iterates, so the two
        // kernels see identical coefficients in identical order.
        let mut fb = FusedBuilder::with_capacity(n, n, ctmdp.num_transitions(), probs.nnz());
        let pool_rows: Vec<_> = (0..rfs.len())
            .map(|rf| fb.intern(prob_goal[rf], probs.row(rf).map(|(tgt, p)| (tgt as u32, p))))
            .collect();
        for s in 0..n as u32 {
            if goal[s as usize] {
                fb.fixed_group();
                continue;
            }
            fb.begin_group();
            for tr in ctmdp.transitions_from(s) {
                fb.push_row(pool_rows[tr.rate_fn as usize]);
            }
            fb.end_group();
        }
        let fused = fb.build();

        Ok(Self {
            rate,
            probs,
            prob_goal,
            fused,
            timing: KernelTiming::default(),
        })
    }

    /// Heap bytes held by the shared traversal structures (CSR rows, the
    /// per-rate-function goal mass vector and the fused kernel layout).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.probs.memory_bytes()
            + self.prob_goal.len() * std::mem::size_of::<f64>()
            + self.fused.memory_bytes()
    }
}

/// One backward value-iteration update of a single state — the kernel
/// shared verbatim by the sequential and parallel engines, which makes
/// their outputs bitwise identical by construction.
///
/// Returns the new value `q_i(s)` and the index of the optimizing
/// transition (0 for goal and absorbing states).
#[inline]
pub(crate) fn step_state(
    ctmdp: &Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    s: usize,
    psi: f64,
    q_next: &[f64],
    maximize: bool,
) -> (f64, u16) {
    if goal[s] {
        return (psi + q_next[s], 0);
    }
    let trans = ctmdp.transitions_from(s as u32);
    if trans.is_empty() {
        return (0.0, 0);
    }
    let mut best = if maximize { -1.0f64 } else { f64::INFINITY };
    let mut best_idx = 0u16;
    for (idx, tr) in trans.iter().enumerate() {
        let rf = tr.rate_fn as usize;
        let mut v = psi * pre.prob_goal[rf];
        for (tgt, p) in pre.probs.row(rf) {
            v += p * q_next[tgt];
        }
        let better = if maximize { v > best } else { v < best };
        if better {
            best = v;
            best_idx = idx as u16;
        }
    }
    (best, best_idx)
}

/// One value-iteration sweep over `range`, dispatched once per call on
/// the selected kernel — the single entry point shared by the sequential
/// driver, the parallel workers and the guarded engine, which keeps every
/// engine's per-state operation order (and therefore its bits) identical.
///
/// `out` receives the new values for `range` (indexed from `range.start`);
/// `decisions` must either be empty (recording off — the branch is hoisted
/// out of the loop here, not tested per state) or exactly `range.len()`.
///
/// The fused arm delegates the whole range to
/// [`FusedGroups::sweep_best`], whose per-group semantics mirror
/// [`step_state`] operation for operation: `Fixed` is the goal branch
/// (`psi + q_next[s]`), `Empty` the absorbing branch (`0.0`), and active
/// groups evaluate each transition's interned row with the same
/// bias-then-entries order, the same strict `>`/`<` compares, and the
/// same `-1.0`/`+∞` sentinels — so NaN rows keep the sentinel and ties
/// keep the first transition in both kernels, and the outputs are
/// bitwise identical.
#[allow(clippy::too_many_arguments)] // crate-internal kernel dispatch; a struct would just rename the fields
pub(crate) fn sweep_states(
    kernel: Kernel,
    ctmdp: &Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    range: Range<usize>,
    psi: f64,
    q_next: &[f64],
    maximize: bool,
    out: &mut [f64],
    decisions: &mut [u16],
) {
    debug_assert_eq!(out.len(), range.len());
    debug_assert!(decisions.is_empty() || decisions.len() == range.len());
    let record = !decisions.is_empty();
    match kernel {
        Kernel::Reference => {
            for (i, s) in range.enumerate() {
                let (v, idx) = step_state(ctmdp, pre, goal, s, psi, q_next, maximize);
                out[i] = v;
                if record {
                    decisions[i] = idx;
                }
            }
        }
        Kernel::Fused => {
            let decisions = if record { Some(decisions) } else { None };
            // Timing attribution only while metric telemetry is live: the
            // timed walk writes bitwise what the plain sweep writes (see
            // `sweep_best_timed`), so the values never depend on which
            // path ran — the bit-invisibility contract the CI trace-on/
            // trace-off cmp gate pins.
            if unicon_obs::live(unicon_obs::Class::Metric) {
                let mut t = ClassTiming::default();
                pre.fused
                    .sweep_best_timed(range, psi, q_next, maximize, out, decisions, &mut t);
                pre.timing.add(&t);
            } else {
                pre.fused
                    .sweep_best(range, psi, q_next, maximize, out, decisions);
            }
        }
    }
}

/// Scratch vectors reused across iterations *and across the queries of a
/// batch*: the two value planes, the parallel engine's per-worker chunk
/// buffers, and a counter of how many times a vector actually had to
/// grow. A fresh default starts empty; after the first query every
/// subsequent same-sized query runs allocation-free — `allocs` is the
/// regression probe the buffer-reuse tests assert on.
#[derive(Debug, Default)]
pub(crate) struct SweepBuffers {
    pub(crate) q: Vec<f64>,
    pub(crate) q_next: Vec<f64>,
    /// Per-worker `(values, decisions)` scratch, stashed here between
    /// parallel runs.
    pub(crate) chunks: Vec<(Vec<f64>, Vec<u16>)>,
    /// Number of times any held vector had to allocate (capacity grew).
    pub(crate) allocs: usize,
}

impl SweepBuffers {
    /// Hands out the two value planes, zeroed and sized to `n`, counting
    /// an allocation whenever a plane's capacity had to grow.
    pub(crate) fn take_pair(&mut self, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut q = std::mem::take(&mut self.q);
        let mut q_next = std::mem::take(&mut self.q_next);
        for v in [&mut q, &mut q_next] {
            if v.capacity() < n {
                self.allocs += 1;
            }
            v.clear();
            v.resize(n, 0.0);
        }
        (q, q_next)
    }

    /// Returns the two value planes for the next query.
    pub(crate) fn restore_pair(&mut self, q: Vec<f64>, q_next: Vec<f64>) {
        self.q = q;
        self.q_next = q_next;
    }
}

/// The trivial result when no Markov jump can happen (`t = 0` or `E = 0`):
/// the indicator of the goal set.
pub(crate) fn indicator_result(goal: &[bool], rate: f64) -> ReachResult {
    ReachResult {
        values: goal.iter().map(|&g| f64::from(u8::from(g))).collect(),
        iterations: 0,
        uniform_rate: rate,
        runtime: std::time::Duration::ZERO,
        decisions: Vec::new(),
    }
}

/// Clamps the iterated vector into probabilities and pins goal states to 1
/// — the common epilogue of every engine.
pub(crate) fn finalize_values(goal: &[bool], q1: &[f64]) -> Vec<f64> {
    goal.iter()
        .zip(q1)
        .map(|(&g, &v)| if g { 1.0 } else { v.clamp(0.0, 1.0) })
        .collect()
}

/// Computes `opt_D Pr_D(s ⤳≤t B)` for every state `s` of a **uniform**
/// CTMDP (Algorithm 1).
///
/// `goal[s]` marks the states of `B`. States without outgoing transitions
/// are allowed (treated as unable to make further progress).
///
/// # Errors
///
/// Returns [`ReachError::NotUniform`] if the transitions' exit rates
/// differ, [`ReachError::InvalidEpsilon`] if `opts.epsilon` lies outside
/// `(0, 1)`, [`ReachError::InvalidTimeBound`] if `t` is negative or not
/// finite, and [`ReachError::GoalLengthMismatch`] if `goal.len()`
/// disagrees with the state count — all reachable from untrusted input,
/// so none of them panic.
pub fn timed_reachability(
    ctmdp: &Ctmdp,
    goal: &[bool],
    t: f64,
    opts: &ReachOptions,
) -> Result<ReachResult, ReachError> {
    validate_time(t)?;
    validate_epsilon(opts.epsilon)?;
    let pre = Precompute::new(ctmdp, goal)?;

    if t == 0.0 || pre.rate == 0.0 {
        return Ok(indicator_result(goal, pre.rate));
    }

    let start = Instant::now(); // det-lint: allow(clock): runtime telemetry only.
    let fg = FoxGlynn::new(pre.rate * t);
    let k = fg.right_truncation(opts.epsilon);
    Ok(iterate_sequential(
        ctmdp,
        &pre,
        goal,
        &fg,
        k,
        opts,
        0,
        start,
        &mut SweepBuffers::default(),
    ))
}

/// The sequential value-iteration driver, shared by the single-query API
/// and the batch engine's one-thread path. `qi` tags telemetry records
/// with the query's index in its batch (0 for single-query calls). The
/// value planes come from (and return to) `bufs`, so a batch's queries
/// share one pair of allocations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn iterate_sequential(
    ctmdp: &Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    fg: &FoxGlynn,
    k: usize,
    opts: &ReachOptions,
    qi: usize,
    start: Instant,
    bufs: &mut SweepBuffers,
) -> ReachResult {
    let n = ctmdp.num_states();
    let maximize = opts.objective == Objective::Maximize;
    let mut decisions: Vec<Vec<u16>> = Vec::new();
    if opts.record_decisions {
        decisions.resize(k, Vec::new());
    }

    let (mut q, mut q_next) = bufs.take_pair(n); // q_{k+1} = 0
    for i in (1..=k).rev() {
        let psi = fg.psi(i);
        let mut step_decisions: Vec<u16> = if opts.record_decisions {
            vec![0; n]
        } else {
            Vec::new()
        };
        sweep_states(
            opts.kernel,
            ctmdp,
            pre,
            goal,
            0..n,
            psi,
            &q_next,
            maximize,
            &mut q,
            &mut step_decisions,
        );
        if opts.record_decisions {
            decisions[i - 1] = step_decisions;
        }
        emit_iteration(qi, i, fg, k, &q);
        std::mem::swap(&mut q, &mut q_next);
    }
    // q_next holds q_1.
    let result = ReachResult {
        values: finalize_values(goal, &q_next),
        iterations: k,
        uniform_rate: pre.rate,
        runtime: start.elapsed(),
        decisions,
    };
    bufs.restore_pair(q, q_next);
    result
}

/// Emits the per-iteration convergence record when iteration telemetry is
/// live. `new` (the freshly computed `q_i`) is read-only here, so
/// telemetry can never perturb the numeric state — bit-invisibility by
/// construction.
///
/// The reported residual is the *unprocessed Poisson mass*
/// `Σ_{n < i} ψ(n) + Σ_{n > k} ψ(n)`: an upper bound on how much the
/// remaining steps (plus the truncated tail) can still add to any
/// accumulated goal probability. It is non-increasing along the
/// backward iteration by construction of the suffix sums, and ends at
/// the right-truncation remainder `≤ ε` — the paper's a-priori error
/// bound, observed live. (The raw iterate difference `‖q_i − q_{i+1}‖`
/// is *not* a convergence certificate here: goal states carry a
/// constant offset below the Fox–Glynn window, so it plateaus.)
pub(crate) fn emit_iteration(qi: usize, step: usize, fg: &FoxGlynn, k: usize, new: &[f64]) {
    if !unicon_obs::live(unicon_obs::Class::Iter) {
        return;
    }
    let residual = (1.0 - fg.tail_from(step)) + fg.tail_from(k + 1);
    let checksum = unicon_numeric::chunked_stable_sum(new, crate::par::CHECKSUM_BLOCK).to_bits();
    unicon_obs::emit(unicon_obs::Class::Iter, || {
        unicon_obs::Event::ReachIteration {
            query: qi,
            step,
            psi: fg.psi(step),
            residual,
            checksum,
        }
    });
}

/// Step-bounded reachability: the optimal probability to reach `B` within
/// at most `k` Markov jumps, ignoring time.
///
/// This is the DTMDP core that Algorithm 1 weights with Poisson
/// probabilities; unlike the timed analysis it does **not** require
/// uniformity (jump counting is oblivious to exit rates).
///
/// # Panics
///
/// Panics if `goal.len()` mismatches the state count.
///
/// # Examples
///
/// ```
/// use unicon_ctmdp::CtmdpBuilder;
/// use unicon_ctmdp::reachability::{step_bounded_reachability, Objective};
///
/// let mut b = CtmdpBuilder::new(3, 0);
/// b.transition(0, "a", &[(1, 1.0), (2, 1.0)]);
/// b.transition(1, "a", &[(2, 2.0)]);
/// b.transition(2, "a", &[(2, 2.0)]);
/// let m = b.build();
/// let goal = [false, false, true];
/// let one = step_bounded_reachability(&m, &goal, 1, Objective::Maximize);
/// assert_eq!(one[0], 0.5); // one jump: the 50/50 branch
/// let two = step_bounded_reachability(&m, &goal, 2, Objective::Maximize);
/// assert_eq!(two[0], 1.0); // two jumps always suffice
/// ```
pub fn step_bounded_reachability(
    ctmdp: &Ctmdp,
    goal: &[bool],
    k: usize,
    objective: Objective,
) -> Vec<f64> {
    // Infallible return type: a mismatched goal is a caller bug here (the
    // CLI paths all build the goal from the model they pass), so this is a
    // documented panic rather than a ReachError.
    assert_eq!(
        goal.len(),
        ctmdp.num_states(),
        "goal vector length mismatch"
    );
    let n = ctmdp.num_states();
    let maximize = objective == Objective::Maximize;
    let mut p: Vec<f64> = goal.iter().map(|&g| f64::from(u8::from(g))).collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..k {
        for s in 0..n {
            if goal[s] {
                next[s] = 1.0;
                continue;
            }
            let trans = ctmdp.transitions_from(s as u32);
            if trans.is_empty() {
                next[s] = 0.0;
                continue;
            }
            let mut best = if maximize { -1.0f64 } else { f64::INFINITY };
            for tr in trans {
                let rf = ctmdp.rate_function(tr.rate_fn);
                let mut v = 0.0;
                for (tgt, prob) in rf.probs() {
                    v += prob * p[tgt as usize];
                }
                best = if maximize { best.max(v) } else { best.min(v) };
            }
            next[s] = best;
        }
        std::mem::swap(&mut p, &mut next);
    }
    p
}

/// Convenience wrapper returning only the value from the initial state.
///
/// # Errors
///
/// See [`timed_reachability`].
pub fn timed_reachability_from_initial(
    ctmdp: &Ctmdp,
    goal: &[bool],
    t: f64,
    opts: &ReachOptions,
) -> Result<f64, ReachError> {
    Ok(timed_reachability(ctmdp, goal, t, opts)?.from_state(ctmdp.initial()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;
    use unicon_ctmc::transient::{self, TransientOptions};
    use unicon_ctmc::Ctmc;
    use unicon_numeric::assert_close;
    use unicon_numeric::special::exponential_cdf;

    /// A CTMDP with exactly one transition per state, mirroring a CTMC.
    fn chain_as_ctmdp() -> (Ctmdp, Ctmc) {
        // uniform rate 2: 0 -> {1: 1.0, 0: 1.0}; 1 -> {2: 2.0}; 2 -> {2: 2.0}
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
        b.transition(1, "a", &[(2, 2.0)]);
        b.transition(2, "a", &[(2, 2.0)]);
        let ctmc = Ctmc::from_rates(3, 0, [(0, 1, 1.0), (0, 0, 1.0), (1, 2, 2.0), (2, 2, 2.0)]);
        (b.build(), ctmc)
    }

    #[test]
    fn zero_time_is_indicator() {
        let (m, _) = chain_as_ctmdp();
        let r =
            timed_reachability(&m, &[false, false, true], 0.0, &ReachOptions::default()).unwrap();
        assert_eq!(r.values, vec![0.0, 0.0, 1.0]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn singleton_transitions_match_ctmc_oracle() {
        let (m, c) = chain_as_ctmdp();
        let goal = [false, false, true];
        let copts = TransientOptions::default().with_epsilon(1e-12);
        for t in [0.3, 1.0, 4.0] {
            let mdp =
                timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(1e-12))
                    .unwrap();
            let oracle = transient::reachability(&c, &goal, t, &copts);
            for s in 0..3 {
                assert_close!(mdp.values[s], oracle.values[s], 1e-9);
            }
        }
    }

    #[test]
    fn max_picks_the_better_transition() {
        // From state 0: action into goal at rate 2, or detour at rate 2.
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "direct", &[(1, 2.0)]);
        b.transition(0, "detour", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "stay", &[(2, 2.0)]);
        let m = b.build();
        let goal = [false, true, false];
        let t = 1.0;
        let r =
            timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(1e-10)).unwrap();
        // Max scheduler takes "direct": hit B iff a jump occurs by t.
        assert_close!(r.values[0], exponential_cdf(2.0, t), 1e-8);
        // Min scheduler never reaches B.
        let rmin = timed_reachability(
            &m,
            &goal,
            t,
            &ReachOptions::default()
                .with_epsilon(1e-10)
                .with_objective(Objective::Minimize),
        )
        .unwrap();
        assert_close!(rmin.values[0], 0.0, 1e-9);
    }

    #[test]
    fn max_dominates_min() {
        let mut b = CtmdpBuilder::new(4, 0);
        b.transition(0, "x", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "y", &[(2, 1.5), (3, 0.5)]);
        b.transition(1, "x", &[(3, 2.0)]);
        b.transition(2, "x", &[(0, 2.0)]);
        b.transition(3, "x", &[(3, 2.0)]);
        let m = b.build();
        let goal = [false, false, false, true];
        for t in [0.5, 2.0, 8.0] {
            let mx = timed_reachability(&m, &goal, t, &ReachOptions::default()).unwrap();
            let mn = timed_reachability(
                &m,
                &goal,
                t,
                &ReachOptions::default().with_objective(Objective::Minimize),
            )
            .unwrap();
            for s in 0..4 {
                assert!(mx.values[s] >= mn.values[s] - 1e-12);
            }
        }
    }

    #[test]
    fn values_monotone_in_time_and_bounded() {
        let (m, _) = chain_as_ctmdp();
        let goal = [false, false, true];
        let mut prev = 0.0;
        for i in 1..8 {
            let t = 0.5 * i as f64;
            let v = timed_reachability(&m, &goal, t, &ReachOptions::default())
                .unwrap()
                .from_state(0);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    #[test]
    fn iteration_count_matches_foxglynn() {
        let (m, _) = chain_as_ctmdp();
        let r =
            timed_reachability(&m, &[false, false, true], 50.0, &ReachOptions::default()).unwrap();
        let fg = FoxGlynn::new(2.0 * 50.0);
        assert_eq!(r.iterations, fg.right_truncation(1e-6));
        assert_close!(r.uniform_rate, 2.0, 1e-12);
    }

    #[test]
    fn rejects_non_uniform() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "a", &[(0, 3.0)]);
        let m = b.build();
        let err =
            timed_reachability(&m, &[false, true], 1.0, &ReachOptions::default()).unwrap_err();
        assert!(matches!(err, ReachError::NotUniform(_)));
        assert!(err.to_string().contains("not uniform"));
    }

    #[test]
    fn rejects_non_positive_epsilon() {
        let (m, _) = chain_as_ctmdp();
        let goal = [false, false, true];
        for eps in [0.0, -1e-9, -3.0, 1.0, 2.5, f64::NAN, f64::INFINITY] {
            let err =
                timed_reachability(&m, &goal, 1.0, &ReachOptions::default().with_epsilon(eps))
                    .unwrap_err();
            assert!(
                matches!(err, ReachError::InvalidEpsilon { epsilon } if epsilon.to_bits() == eps.to_bits()),
                "eps {eps} gave {err:?}"
            );
            assert!(err.to_string().contains("epsilon"));
        }
        // even the t = 0 shortcut validates first
        assert!(matches!(
            timed_reachability(&m, &goal, 0.0, &ReachOptions::default().with_epsilon(-1.0)),
            Err(ReachError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn rejects_bad_time_bounds_and_goal_length() {
        let (m, _) = chain_as_ctmdp();
        let goal = [false, false, true];
        for t in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = timed_reachability(&m, &goal, t, &ReachOptions::default()).unwrap_err();
            assert!(
                matches!(err, ReachError::InvalidTimeBound { t: bad } if bad.to_bits() == t.to_bits()),
                "t {t} gave {err:?}"
            );
            assert!(err.to_string().contains("time bound"));
        }
        let err =
            timed_reachability(&m, &[false, true], 1.0, &ReachOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ReachError::GoalLengthMismatch {
                goal_len: 2,
                num_states: 3
            }
        ));
        assert!(err.to_string().contains("goal vector"));
    }

    #[test]
    fn absorbing_non_goal_state_has_value_zero() {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 1.0), (2, 1.0)]);
        b.transition(1, "a", &[(1, 2.0)]);
        // state 2 has no transitions
        let m = b.build();
        let r =
            timed_reachability(&m, &[false, true, false], 3.0, &ReachOptions::default()).unwrap();
        assert_eq!(r.values[2], 0.0);
        assert!(r.values[0] > 0.0);
    }

    #[test]
    fn decisions_are_recorded_when_asked() {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "to_goal", &[(1, 2.0)]);
        b.transition(0, "away", &[(2, 2.0)]);
        b.transition(1, "s", &[(1, 2.0)]);
        b.transition(2, "s", &[(2, 2.0)]);
        let m = b.build();
        let r = timed_reachability(
            &m,
            &[false, true, false],
            1.0,
            &ReachOptions::default().recording_decisions(),
        )
        .unwrap();
        assert_eq!(r.decisions.len(), r.iterations);
        // at every step the maximizer picks transition 0 ("to_goal")
        for step in &r.decisions {
            assert_eq!(step[0], 0);
        }
    }

    #[test]
    fn step_bounded_is_monotone_and_bounds_timed() {
        let (m, _) = chain_as_ctmdp();
        let goal = [false, false, true];
        let mut prev = 0.0;
        for k in 0..8 {
            let p = step_bounded_reachability(&m, &goal, k, Objective::Maximize)[0];
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        // the timed value at precision ε is below the step-bounded value at
        // the truncation point, plus ε
        let t = 1.5;
        let eps = 1e-9;
        let timed =
            timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(eps)).unwrap();
        let stepped = step_bounded_reachability(&m, &goal, timed.iterations, Objective::Maximize);
        assert!(timed.values[0] <= stepped[0] + eps);
    }

    #[test]
    fn step_bounded_works_on_non_uniform_models() {
        // non-uniform: exit rates 1 and 3 — jump counting does not care
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 0.5), (2, 0.5)]);
        b.transition(1, "a", &[(2, 3.0)]);
        b.transition(2, "a", &[(2, 3.0)]);
        let m = b.build();
        assert!(m.uniform_rate().is_err());
        let goal = [false, false, true];
        let p1 = step_bounded_reachability(&m, &goal, 1, Objective::Maximize);
        assert_close!(p1[0], 0.5, 1e-12);
        let p2 = step_bounded_reachability(&m, &goal, 2, Objective::Maximize);
        assert_close!(p2[0], 1.0, 1e-12);
    }

    #[test]
    fn step_bounded_min_vs_max() {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "good", &[(1, 1.0)]);
        b.transition(0, "bad", &[(2, 1.0)]);
        b.transition(1, "s", &[(1, 1.0)]);
        b.transition(2, "s", &[(2, 1.0)]);
        let m = b.build();
        let goal = [false, true, false];
        let mx = step_bounded_reachability(&m, &goal, 3, Objective::Maximize);
        let mn = step_bounded_reachability(&m, &goal, 3, Objective::Minimize);
        assert_eq!(mx[0], 1.0);
        assert_eq!(mn[0], 0.0);
    }

    #[test]
    fn goal_state_value_is_exactly_one() {
        let (m, _) = chain_as_ctmdp();
        let r =
            timed_reachability(&m, &[true, false, false], 2.0, &ReachOptions::default()).unwrap();
        assert_eq!(r.values[0], 1.0);
    }
}
