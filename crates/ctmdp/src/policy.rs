//! Exact policy evaluation: a stationary deterministic scheduler turns a
//! CTMDP into a CTMC, whose timed reachability can be computed exactly.
//!
//! This closes the triangle around Algorithm 1: the optimal value is
//! bracketed by `inf ≤ value(policy) ≤ sup` for every concrete policy, and
//! policy values are computed with the same uniformization machinery — no
//! sampling error, unlike the [`simulate`](crate::simulate) engine.

use unicon_ctmc::Ctmc;
use unicon_numeric::FoxGlynn;

use crate::model::Ctmdp;
use crate::reachability::{validate_epsilon, validate_goal, validate_time, Precompute, ReachError};
use crate::scheduler::{Stationary, StepDependent};

/// Builds the CTMC induced by resolving every choice of `ctmdp` with the
/// stationary policy.
///
/// States keep their numbering. States without outgoing transitions become
/// absorbing. Choice indices out of range are clamped to the last available
/// transition (mirroring [`Stationary`]'s behaviour in simulation).
///
/// # Panics
///
/// Panics if the policy's choice table is shorter than the state count.
pub fn induced_ctmc(ctmdp: &Ctmdp, policy: &Stationary) -> Ctmc {
    let n = ctmdp.num_states();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for s in 0..n as u32 {
        let trans = ctmdp.transitions_from(s);
        if trans.is_empty() {
            continue;
        }
        let choice = (policy.choice(s) as usize).min(trans.len() - 1);
        let rf = ctmdp.rate_function(trans[choice].rate_fn);
        for &(tgt, rate) in rf.targets() {
            triplets.push((s as usize, tgt as usize, rate));
        }
    }
    Ctmc::from_rates(n, ctmdp.initial(), triplets)
}

/// Exact timed reachability of `goal` within `t` under a stationary policy.
///
/// # Panics
///
/// Panics if `goal.len()` mismatches or `t` is negative/not finite.
pub fn evaluate_policy(
    ctmdp: &Ctmdp,
    policy: &Stationary,
    goal: &[bool],
    t: f64,
    epsilon: f64,
) -> f64 {
    assert_eq!(
        goal.len(),
        ctmdp.num_states(),
        "goal vector length mismatch"
    );
    let ctmc = induced_ctmc(ctmdp, policy);
    let opts = unicon_ctmc::transient::TransientOptions::default().with_epsilon(epsilon);
    unicon_ctmc::transient::reachability(&ctmc, goal, t, &opts).from_state(ctmdp.initial())
}

/// Evaluates a step-dependent deterministic scheduler exactly, by the same
/// uniformization recursion as Algorithm 1 with the recorded choice
/// substituted for the per-state optimization.
///
/// Because the arithmetic mirrors the engine's kernel term for term,
/// applying the scheduler extracted from a decision-recording run
/// reproduces the recorded optimal value **bitwise** — the strongest
/// possible check that the recorded decisions attain the optimum.
///
/// Steps beyond the scheduler's horizon fall back to its last recorded
/// step, matching [`StepDependent`]'s simulation semantics; choice indices
/// out of range are clamped to the last available transition.
///
/// # Errors
///
/// See [`crate::reachability::timed_reachability`] — invalid `t`,
/// `epsilon` or goal length are typed errors, not panics.
pub fn evaluate_step_dependent(
    ctmdp: &Ctmdp,
    sched: &StepDependent,
    goal: &[bool],
    t: f64,
    epsilon: f64,
) -> Result<f64, ReachError> {
    validate_time(t)?;
    validate_epsilon(epsilon)?;
    validate_goal(goal, ctmdp)?;
    let pre = Precompute::new(ctmdp, goal)?;
    let init = ctmdp.initial() as usize;
    if t == 0.0 || pre.rate == 0.0 {
        return Ok(f64::from(u8::from(goal[init])));
    }
    let fg = FoxGlynn::new(pre.rate * t);
    let k = fg.right_truncation(epsilon);
    let n = ctmdp.num_states();
    let decisions = sched.decisions();

    let mut q_next = vec![0.0f64; n];
    let mut q = vec![0.0f64; n];
    for i in (1..=k).rev() {
        let psi = fg.psi(i);
        // decisions.len() >= 1 is a StepDependent constructor invariant
        // ("at least one step"), so the `- 1` cannot underflow.
        let step = &decisions[(i - 1).min(decisions.len() - 1)];
        for s in 0..n {
            if goal[s] {
                q[s] = psi + q_next[s];
                continue;
            }
            let trans = ctmdp.transitions_from(s as u32);
            if trans.is_empty() {
                q[s] = 0.0;
                continue;
            }
            let choice = (step[s] as usize).min(trans.len() - 1);
            let rf = trans[choice].rate_fn as usize;
            let mut v = psi * pre.prob_goal[rf];
            for (tgt, p) in pre.probs.row(rf) {
                v += p * q_next[tgt];
            }
            q[s] = v;
        }
        std::mem::swap(&mut q, &mut q_next);
    }
    Ok(if goal[init] {
        1.0
    } else {
        q_next[init].clamp(0.0, 1.0)
    })
}

/// Enumerates all stationary deterministic policies of a (small) CTMDP.
///
/// The number of policies is the product of the choice counts over all
/// nondeterministic states; this iterator is intended for models where that
/// product is small (exhaustive policy search, tests, teaching).
pub fn all_policies(ctmdp: &Ctmdp) -> Vec<Stationary> {
    let n = ctmdp.num_states();
    let counts: Vec<usize> = (0..n as u32)
        .map(|s| ctmdp.transitions_from(s).len().max(1))
        .collect();
    let total: usize = counts.iter().product();
    let mut out = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut choices = Vec::with_capacity(n);
        for &c in &counts {
            choices.push((idx % c) as u16);
            idx /= c;
        }
        out.push(Stationary::new(choices));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;
    use crate::reachability::{timed_reachability, Objective, ReachOptions};
    use unicon_numeric::assert_close;
    use unicon_numeric::special::exponential_cdf;

    fn race_model() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "good", &[(1, 2.0)]);
        b.transition(0, "bad", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "back", &[(0, 2.0)]);
        b.build()
    }

    #[test]
    fn induced_ctmc_uses_the_chosen_transition() {
        let m = race_model();
        let good = Stationary::new(vec![0, 0, 0]);
        let c = induced_ctmc(&m, &good);
        assert_eq!(c.rate(0, 1), 2.0);
        assert_eq!(c.rate(0, 2), 0.0);
        let bad = Stationary::new(vec![1, 0, 0]);
        let c = induced_ctmc(&m, &bad);
        assert_eq!(c.rate(0, 1), 0.0);
        assert_eq!(c.rate(0, 2), 2.0);
    }

    #[test]
    fn policy_values_match_closed_forms() {
        let m = race_model();
        let goal = [false, true, false];
        let t = 0.9;
        let good = evaluate_policy(&m, &Stationary::new(vec![0, 0, 0]), &goal, t, 1e-12);
        assert_close!(good, exponential_cdf(2.0, t), 1e-9);
        let bad = evaluate_policy(&m, &Stationary::new(vec![1, 0, 0]), &goal, t, 1e-12);
        assert_close!(bad, 0.0, 1e-9);
    }

    #[test]
    fn every_policy_lies_between_inf_and_sup() {
        let mut b = CtmdpBuilder::new(4, 0);
        b.transition(0, "x", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "y", &[(2, 1.5), (3, 0.5)]);
        b.transition(1, "x", &[(3, 2.0)]);
        b.transition(1, "z", &[(0, 2.0)]);
        b.transition(2, "x", &[(0, 2.0)]);
        b.transition(3, "x", &[(3, 2.0)]);
        let m = b.build();
        let goal = [false, false, false, true];
        let t = 1.3;
        let opts = ReachOptions::default().with_epsilon(1e-10);
        let sup = timed_reachability(&m, &goal, t, &opts)
            .unwrap()
            .from_state(0);
        let inf = timed_reachability(&m, &goal, t, &opts.with_objective(Objective::Minimize))
            .unwrap()
            .from_state(0);
        let policies = all_policies(&m);
        assert_eq!(policies.len(), 4); // two binary choices
        for p in &policies {
            let v = evaluate_policy(&m, p, &goal, t, 1e-10);
            assert!(
                v <= sup + 1e-8 && v >= inf - 1e-8,
                "policy value {v} outside [{inf}, {sup}]"
            );
        }
        // the stationary optimum may fall short of the step-dependent sup,
        // but must reach at least the best stationary bracket endpoints
        let best = policies
            .iter()
            .map(|p| evaluate_policy(&m, p, &goal, t, 1e-10))
            .fold(0.0f64, f64::max);
        assert!(best <= sup + 1e-8);
        assert!(best > inf - 1e-8);
    }

    #[test]
    fn absorbing_states_stay_absorbing() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        let m = b.build();
        let c = induced_ctmc(&m, &Stationary::new(vec![0, 0]));
        assert!(c.is_absorbing(1));
    }

    #[test]
    fn all_policies_enumerates_the_product() {
        let m = race_model(); // one binary choice
        assert_eq!(all_policies(&m).len(), 2);
    }

    fn nondeterministic_model() -> Ctmdp {
        let mut b = CtmdpBuilder::new(4, 0);
        b.transition(0, "x", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "y", &[(2, 1.5), (3, 0.5)]);
        b.transition(1, "x", &[(3, 2.0)]);
        b.transition(1, "z", &[(0, 2.0)]);
        b.transition(2, "x", &[(0, 2.0)]);
        b.transition(3, "x", &[(3, 2.0)]);
        b.build()
    }

    #[test]
    fn recorded_scheduler_reproduces_the_optimal_value_bitwise() {
        use crate::scheduler::StepDependent;

        let m = nondeterministic_model();
        let goal = [false, false, false, true];
        let t = 1.3;
        let eps = 1e-10;
        for objective in [Objective::Maximize, Objective::Minimize] {
            let res = timed_reachability(
                &m,
                &goal,
                t,
                &ReachOptions::default()
                    .with_epsilon(eps)
                    .with_objective(objective)
                    .recording_decisions(),
            )
            .unwrap();
            let sched = StepDependent::from_result(&res);
            let replayed = evaluate_step_dependent(&m, &sched, &goal, t, eps).unwrap();
            assert_eq!(
                replayed.to_bits(),
                res.from_state(0).to_bits(),
                "{objective:?}"
            );
        }
    }

    #[test]
    fn exported_scheduler_round_trips_and_still_attains_the_value() {
        use crate::export;
        use crate::scheduler::StepDependent;

        let m = nondeterministic_model();
        let goal = [false, false, false, true];
        let t = 0.8;
        let eps = 1e-9;
        let res = timed_reachability(
            &m,
            &goal,
            t,
            &ReachOptions::default()
                .with_epsilon(eps)
                .recording_decisions(),
        )
        .unwrap();
        let sched = StepDependent::from_result(&res);
        let restored = export::scheduler_from_text(&export::scheduler_to_text(&sched)).unwrap();
        assert_eq!(restored, sched);
        let replayed = evaluate_step_dependent(&m, &restored, &goal, t, eps).unwrap();
        assert_eq!(replayed.to_bits(), res.from_state(0).to_bits());
    }

    #[test]
    fn suboptimal_step_dependent_scheduler_falls_below_the_sup() {
        use crate::scheduler::StepDependent;

        let m = race_model();
        let goal = [false, true, false];
        let t = 0.9;
        let eps = 1e-10;
        let sup = timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(eps))
            .unwrap()
            .from_state(0);
        // always "bad": never reaches the goal
        let bad = StepDependent::new(vec![vec![1, 0, 0]]);
        let v = evaluate_step_dependent(&m, &bad, &goal, t, eps).unwrap();
        assert_close!(v, 0.0, 1e-9);
        assert!(v < sup);
        // a one-step table that picks "good" matches the stationary value
        let good = StepDependent::new(vec![vec![0, 0, 0]]);
        let vg = evaluate_step_dependent(&m, &good, &goal, t, eps).unwrap();
        let stationary = evaluate_policy(&m, &Stationary::new(vec![0, 0, 0]), &goal, t, eps);
        assert_close!(vg, stationary, 1e-8);
    }

    #[test]
    fn evaluate_step_dependent_validates_inputs() {
        use crate::scheduler::StepDependent;

        let m = race_model();
        let goal = [false, true, false];
        let sched = StepDependent::new(vec![vec![0, 0, 0]]);
        assert!(matches!(
            evaluate_step_dependent(&m, &sched, &goal, 1.0, -1.0),
            Err(ReachError::InvalidEpsilon { .. })
        ));
        // t = 0: indicator of the initial state
        let v = evaluate_step_dependent(&m, &sched, &goal, 0.0, 1e-9).unwrap();
        assert_eq!(v, 0.0);
        let v = evaluate_step_dependent(&m, &sched, &[true, false, false], 0.0, 1e-9).unwrap();
        assert_eq!(v, 1.0);
    }
}
