//! Exact policy evaluation: a stationary deterministic scheduler turns a
//! CTMDP into a CTMC, whose timed reachability can be computed exactly.
//!
//! This closes the triangle around Algorithm 1: the optimal value is
//! bracketed by `inf ≤ value(policy) ≤ sup` for every concrete policy, and
//! policy values are computed with the same uniformization machinery — no
//! sampling error, unlike the [`simulate`](crate::simulate) engine.

use unicon_ctmc::Ctmc;

use crate::model::Ctmdp;
use crate::scheduler::Stationary;

/// Builds the CTMC induced by resolving every choice of `ctmdp` with the
/// stationary policy.
///
/// States keep their numbering. States without outgoing transitions become
/// absorbing. Choice indices out of range are clamped to the last available
/// transition (mirroring [`Stationary`]'s behaviour in simulation).
///
/// # Panics
///
/// Panics if the policy's choice table is shorter than the state count.
pub fn induced_ctmc(ctmdp: &Ctmdp, policy: &Stationary) -> Ctmc {
    let n = ctmdp.num_states();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for s in 0..n as u32 {
        let trans = ctmdp.transitions_from(s);
        if trans.is_empty() {
            continue;
        }
        let choice = (policy.choice(s) as usize).min(trans.len() - 1);
        let rf = ctmdp.rate_function(trans[choice].rate_fn);
        for &(tgt, rate) in rf.targets() {
            triplets.push((s as usize, tgt as usize, rate));
        }
    }
    Ctmc::from_rates(n, ctmdp.initial(), triplets)
}

/// Exact timed reachability of `goal` within `t` under a stationary policy.
///
/// # Panics
///
/// Panics if `goal.len()` mismatches or `t` is negative/not finite.
pub fn evaluate_policy(
    ctmdp: &Ctmdp,
    policy: &Stationary,
    goal: &[bool],
    t: f64,
    epsilon: f64,
) -> f64 {
    assert_eq!(
        goal.len(),
        ctmdp.num_states(),
        "goal vector length mismatch"
    );
    let ctmc = induced_ctmc(ctmdp, policy);
    let opts = unicon_ctmc::transient::TransientOptions::default().with_epsilon(epsilon);
    unicon_ctmc::transient::reachability(&ctmc, goal, t, &opts).from_state(ctmdp.initial())
}

/// Enumerates all stationary deterministic policies of a (small) CTMDP.
///
/// The number of policies is the product of the choice counts over all
/// nondeterministic states; this iterator is intended for models where that
/// product is small (exhaustive policy search, tests, teaching).
pub fn all_policies(ctmdp: &Ctmdp) -> Vec<Stationary> {
    let n = ctmdp.num_states();
    let counts: Vec<usize> = (0..n as u32)
        .map(|s| ctmdp.transitions_from(s).len().max(1))
        .collect();
    let total: usize = counts.iter().product();
    let mut out = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut choices = Vec::with_capacity(n);
        for &c in &counts {
            choices.push((idx % c) as u16);
            idx /= c;
        }
        out.push(Stationary::new(choices));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;
    use crate::reachability::{timed_reachability, Objective, ReachOptions};
    use unicon_numeric::assert_close;
    use unicon_numeric::special::exponential_cdf;

    fn race_model() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "good", &[(1, 2.0)]);
        b.transition(0, "bad", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "back", &[(0, 2.0)]);
        b.build()
    }

    #[test]
    fn induced_ctmc_uses_the_chosen_transition() {
        let m = race_model();
        let good = Stationary::new(vec![0, 0, 0]);
        let c = induced_ctmc(&m, &good);
        assert_eq!(c.rate(0, 1), 2.0);
        assert_eq!(c.rate(0, 2), 0.0);
        let bad = Stationary::new(vec![1, 0, 0]);
        let c = induced_ctmc(&m, &bad);
        assert_eq!(c.rate(0, 1), 0.0);
        assert_eq!(c.rate(0, 2), 2.0);
    }

    #[test]
    fn policy_values_match_closed_forms() {
        let m = race_model();
        let goal = [false, true, false];
        let t = 0.9;
        let good = evaluate_policy(&m, &Stationary::new(vec![0, 0, 0]), &goal, t, 1e-12);
        assert_close!(good, exponential_cdf(2.0, t), 1e-9);
        let bad = evaluate_policy(&m, &Stationary::new(vec![1, 0, 0]), &goal, t, 1e-12);
        assert_close!(bad, 0.0, 1e-9);
    }

    #[test]
    fn every_policy_lies_between_inf_and_sup() {
        let mut b = CtmdpBuilder::new(4, 0);
        b.transition(0, "x", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "y", &[(2, 1.5), (3, 0.5)]);
        b.transition(1, "x", &[(3, 2.0)]);
        b.transition(1, "z", &[(0, 2.0)]);
        b.transition(2, "x", &[(0, 2.0)]);
        b.transition(3, "x", &[(3, 2.0)]);
        let m = b.build();
        let goal = [false, false, false, true];
        let t = 1.3;
        let opts = ReachOptions::default().with_epsilon(1e-10);
        let sup = timed_reachability(&m, &goal, t, &opts)
            .unwrap()
            .from_state(0);
        let inf = timed_reachability(&m, &goal, t, &opts.with_objective(Objective::Minimize))
            .unwrap()
            .from_state(0);
        let policies = all_policies(&m);
        assert_eq!(policies.len(), 4); // two binary choices
        for p in &policies {
            let v = evaluate_policy(&m, p, &goal, t, 1e-10);
            assert!(
                v <= sup + 1e-8 && v >= inf - 1e-8,
                "policy value {v} outside [{inf}, {sup}]"
            );
        }
        // the stationary optimum may fall short of the step-dependent sup,
        // but must reach at least the best stationary bracket endpoints
        let best = policies
            .iter()
            .map(|p| evaluate_policy(&m, p, &goal, t, 1e-10))
            .fold(0.0f64, f64::max);
        assert!(best <= sup + 1e-8);
        assert!(best > inf - 1e-8);
    }

    #[test]
    fn absorbing_states_stay_absorbing() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        let m = b.build();
        let c = induced_ctmc(&m, &Stationary::new(vec![0, 0]));
        assert!(c.is_absorbing(1));
    }

    #[test]
    fn all_policies_enumerates_the_product() {
        let m = race_model(); // one binary choice
        assert_eq!(all_policies(&m).len(), 2);
    }
}
