//! Time-abstract schedulers for CTMDPs.
//!
//! A scheduler resolves the nondeterminism of a CTMDP (Definition 2). The
//! timed-reachability algorithm optimizes over randomized time-abstract
//! history-dependent schedulers; its optimum is attained by a deterministic
//! *step-dependent* scheduler (the decision depends only on the current
//! state and the number of Markov jumps so far), which
//! [`reachability`](crate::reachability) can extract and the
//! [`simulate`](crate::simulate) engine can replay.

use unicon_numeric::rng::Rng;

use crate::reachability::ReachResult;

/// A policy choosing one of the transitions emanating from a state.
///
/// `step` counts Markov jumps, starting at 1 for the first jump;
/// `num_choices` is the length of `transitions_from(state)` and is always
/// at least 1 when this is called. The returned index must be smaller than
/// `num_choices`.
pub trait Scheduler {
    /// Chooses a transition index.
    fn choose<R: Rng>(&self, step: usize, state: u32, num_choices: usize, rng: &mut R) -> usize;
}

/// Always takes the first transition (the deterministic baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstChoice;

impl Scheduler for FirstChoice {
    fn choose<R: Rng>(&self, _: usize, _: u32, _: usize, _: &mut R) -> usize {
        0
    }
}

/// Uniformly randomizes over the available transitions — the crude
/// approximation of nondeterminism that probabilistic models of the FTWC
/// (high-rate Γ choices) effectively bake in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformRandom;

impl Scheduler for UniformRandom {
    fn choose<R: Rng>(&self, _: usize, _: u32, num_choices: usize, rng: &mut R) -> usize {
        rng.random_range(num_choices)
    }
}

/// A stationary deterministic scheduler: one fixed choice per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stationary {
    choices: Vec<u16>,
}

impl Stationary {
    /// Creates a stationary scheduler from one choice per state.
    pub fn new(choices: Vec<u16>) -> Self {
        Self { choices }
    }

    /// The stored choice for a state.
    pub fn choice(&self, state: u32) -> u16 {
        self.choices[state as usize]
    }
}

impl Scheduler for Stationary {
    fn choose<R: Rng>(&self, _: usize, state: u32, num_choices: usize, _: &mut R) -> usize {
        (self.choices[state as usize] as usize).min(num_choices - 1)
    }
}

/// The step-dependent deterministic scheduler extracted from a value
/// iteration run with decision recording (the optimal scheduler `D₀` of
/// Algorithm 1).
///
/// Step `i` (1-based) uses `decisions[i-1]`; steps beyond the recorded
/// horizon fall back to the last recorded step, whose decisions are the
/// long-horizon limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDependent {
    decisions: Vec<Vec<u16>>,
}

impl StepDependent {
    /// Builds from raw per-step decisions.
    ///
    /// # Panics
    ///
    /// Panics if `decisions` is empty.
    pub fn new(decisions: Vec<Vec<u16>>) -> Self {
        assert!(!decisions.is_empty(), "need at least one step of decisions");
        Self { decisions }
    }

    /// Extracts the optimal scheduler from a [`ReachResult`] computed with
    /// [`ReachOptions::recording_decisions`](crate::reachability::ReachOptions::recording_decisions).
    ///
    /// # Panics
    ///
    /// Panics if the result was computed without decision recording.
    pub fn from_result(result: &ReachResult) -> Self {
        assert!(
            !result.decisions.is_empty(),
            "reachability result carries no recorded decisions"
        );
        Self::new(result.decisions.clone())
    }

    /// Number of recorded steps.
    pub fn horizon(&self) -> usize {
        self.decisions.len()
    }

    /// The recorded decision table: `decisions()[i][s]` is the transition
    /// index chosen at step `i + 1` in state `s`.
    pub fn decisions(&self) -> &[Vec<u16>] {
        &self.decisions
    }
}

impl Scheduler for StepDependent {
    fn choose<R: Rng>(&self, step: usize, state: u32, num_choices: usize, _: &mut R) -> usize {
        let idx = step.saturating_sub(1).min(self.decisions.len() - 1);
        (self.decisions[idx][state as usize] as usize).min(num_choices - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::rng::XorShift64;

    #[test]
    fn first_choice_is_zero() {
        let mut rng = XorShift64::seed_from_u64(0);
        assert_eq!(FirstChoice.choose(5, 3, 7, &mut rng), 0);
    }

    #[test]
    fn uniform_random_in_range_and_covers() {
        let mut rng = XorShift64::seed_from_u64(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let c = UniformRandom.choose(1, 0, 3, &mut rng);
            assert!(c < 3);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stationary_uses_fixed_choice() {
        let s = Stationary::new(vec![2, 0]);
        let mut rng = XorShift64::seed_from_u64(0);
        assert_eq!(s.choose(9, 0, 5, &mut rng), 2);
        assert_eq!(s.choose(1, 1, 5, &mut rng), 0);
        // clamped when fewer choices exist
        assert_eq!(s.choose(1, 0, 2, &mut rng), 1);
    }

    #[test]
    fn step_dependent_indexes_steps() {
        let d = StepDependent::new(vec![vec![0, 1], vec![1, 0]]);
        let mut rng = XorShift64::seed_from_u64(0);
        assert_eq!(d.choose(1, 0, 2, &mut rng), 0);
        assert_eq!(d.choose(2, 0, 2, &mut rng), 1);
        // beyond horizon: sticks to the last step
        assert_eq!(d.choose(99, 0, 2, &mut rng), 1);
        assert_eq!(d.horizon(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn step_dependent_rejects_empty() {
        StepDependent::new(vec![]);
    }
}
