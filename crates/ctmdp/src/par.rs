//! Parallel and batched timed reachability.
//!
//! This module scales Algorithm 1 along two axes:
//!
//! * **across states** — every backward value-iteration step is split over
//!   a scoped pool of `std::thread` workers, each owning a contiguous
//!   range of the state space ([`timed_reachability_par`]);
//! * **across queries** — a [`ReachBatch`] answers many `(time bound,
//!   objective)` queries in one pass, building the CSR traversal
//!   structures once and caching Fox–Glynn weight vectors keyed by
//!   `(rate, t, epsilon)`.
//!
//! # Determinism contract
//!
//! Parallel results are **bitwise identical** to the sequential engine's
//! for every thread count:
//!
//! * each state's update runs the exact kernel the sequential engine runs
//!   ([`reachability` internals]), reading the previous iterate as a
//!   shared snapshot and writing to a disjoint output slot — no
//!   cross-state arithmetic exists that could reassociate;
//! * the per-query value checksum reported in [`QueryStats`] is a chunked
//!   Neumaier reduction over **fixed-size** blocks
//!   ([`unicon_numeric::chunked_stable_sum`]), so its grouping never
//!   depends on the worker count.
//!
//! The differential test suite (`tests/par_differential.rs`) pins this
//! contract for 1, 2 and 8 threads on randomly generated uniform CTMDPs.
//!
//! [`reachability` internals]: crate::reachability::timed_reachability

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use unicon_numeric::{chunked_stable_sum, CachedWeights, FoxGlynn, WeightCache};
use unicon_sparse::assign_blocks;

use crate::model::Ctmdp;
use crate::reachability::{
    emit_iteration, emit_kernel_timing, finalize_values, indicator_result, iterate_sequential,
    sweep_states, validate_epsilon, validate_time, Kernel, Objective, Precompute, ReachError,
    ReachOptions, ReachResult, SweepBuffers,
};

/// Fixed block size of the deterministic checksum reduction — a property
/// of the *algorithm*, never derived from the thread count.
pub const CHECKSUM_BLOCK: usize = 1024;

/// Resolves a `threads` request: `0` means "one worker per available
/// hardware thread", and explicit requests are clamped to the hardware —
/// oversubscribing workers onto fewer cores only adds scheduling noise
/// (results are thread-count invariant either way, so the clamp is
/// observable only in [`BatchStats::threads`] and wall time).
pub fn resolve_threads(threads: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    if threads == 0 {
        avail
    } else {
        threads.min(avail)
    }
}

/// Computes `opt_D Pr_D(s ⤳≤t B)` with the state-space loop of every
/// value-iteration step split over `threads` scoped worker threads.
///
/// `threads == 0` uses one worker per available hardware thread;
/// `threads == 1` (or a single-state model) runs the sequential engine.
/// Results — values, iteration count and recorded decisions — are bitwise
/// identical to [`crate::reachability::timed_reachability`] for every
/// thread count.
///
/// # Errors
///
/// See [`crate::reachability::timed_reachability`] — invalid `t`, epsilon
/// or goal length are typed errors, not panics.
pub fn timed_reachability_par(
    ctmdp: &Ctmdp,
    goal: &[bool],
    t: f64,
    opts: &ReachOptions,
    threads: usize,
) -> Result<ReachResult, ReachError> {
    validate_time(t)?;
    validate_epsilon(opts.epsilon)?;
    let pre = Precompute::new(ctmdp, goal)?;
    if t == 0.0 || pre.rate == 0.0 {
        return Ok(indicator_result(goal, pre.rate));
    }
    let start = Instant::now(); // det-lint: allow(clock): runtime telemetry only.
    let fg = FoxGlynn::new(pre.rate * t);
    let k = fg.right_truncation(opts.epsilon);
    let mut bufs = SweepBuffers::default();
    Ok(run_query(
        ctmdp, &pre, goal, &fg, k, opts, threads, 0, start, &mut bufs,
    ))
}

/// Dispatches one query to the sequential or parallel driver. `qi` is
/// the query's index within its batch, used only to tag telemetry;
/// `bufs` carries the iterate scratch vectors across the queries of a
/// batch so repeated same-model queries run allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_query(
    ctmdp: &Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    fg: &FoxGlynn,
    k: usize,
    opts: &ReachOptions,
    threads: usize,
    qi: usize,
    start: Instant,
    bufs: &mut SweepBuffers,
) -> ReachResult {
    let workers = resolve_threads(threads).min(ctmdp.num_states());
    // Per-query kernel-speed attribution: snapshot the shared class-time
    // ledger around the iteration and emit the delta as picosecond-per-
    // state observations. Read-only with respect to the iteration — the
    // values are bitwise identical whether or not metrics are live.
    let metrics_live = unicon_obs::live(unicon_obs::Class::Metric);
    let before = if metrics_live {
        Some(pre.timing.snapshot())
    } else {
        None
    };
    let result = if workers <= 1 {
        iterate_sequential(ctmdp, pre, goal, fg, k, opts, qi, start, bufs)
    } else {
        iterate_parallel(ctmdp, pre, goal, fg, k, opts, workers, qi, start, bufs)
    };
    if let Some(before) = &before {
        emit_kernel_timing(pre, before);
        unicon_obs::observe(
            "reach_query_ns",
            u64::try_from(result.runtime.as_nanos()).unwrap_or(u64::MAX),
        );
    }
    result
}

/// One unit of work: apply step `psi` to the worker's state range against
/// the shared previous iterate, filling the recycled buffers.
struct Job {
    psi: f64,
    q_next: Arc<Vec<f64>>,
    values: Vec<f64>,
    decisions: Vec<u16>,
}

/// A worker's finished chunk, sent back for assembly.
struct ChunkResult {
    worker: usize,
    values: Vec<f64>,
    decisions: Vec<u16>,
}

/// The parallel value-iteration driver: persistent scoped workers, one
/// contiguous state range each, synchronized per step through channels.
/// All scratch vectors — the two value planes and the per-worker chunk
/// buffers — are borrowed from (and returned to) `bufs`, so consecutive
/// queries of a batch re-run without a single fresh allocation.
#[allow(clippy::too_many_arguments)]
fn iterate_parallel(
    ctmdp: &Ctmdp,
    pre: &Precompute,
    goal: &[bool],
    fg: &FoxGlynn,
    k: usize,
    opts: &ReachOptions,
    workers: usize,
    qi: usize,
    start: Instant,
    bufs: &mut SweepBuffers,
) -> ReachResult {
    let n = ctmdp.num_states();
    let maximize = opts.objective == Objective::Maximize;
    let kernel = opts.kernel;
    let record = opts.record_decisions;
    let ranges: Vec<std::ops::Range<usize>> = assign_blocks(n, workers)
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect();

    let mut decisions: Vec<Vec<u16>> = Vec::new();
    if record {
        decisions.resize(k, Vec::new());
    }

    // `current` is the shared snapshot q_{i+1}; `spare` is the assembly
    // target for q_i. They rotate each step, recycling both allocations.
    let (plane_a, plane_b) = bufs.take_pair(n);
    let mut current = Arc::new(plane_a);
    let mut spare = plane_b;
    // Per-worker scratch, keyed by worker index so the buffer sized for
    // range `w` on the previous query is handed back to range `w` now.
    while bufs.chunks.len() < ranges.len() {
        bufs.chunks.push(Default::default());
    }
    let mut buffers: Vec<Option<(Vec<f64>, Vec<u16>)>> =
        bufs.chunks.drain(..ranges.len()).map(Some).collect();

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<ChunkResult>();
        let mut job_txs = Vec::with_capacity(ranges.len());
        for (w, range) in ranges.iter().cloned().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            job_txs.push(job_tx);
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let Job {
                        psi,
                        q_next,
                        mut values,
                        mut decisions,
                    } = job;
                    values.clear();
                    values.resize(range.len(), 0.0);
                    if record {
                        decisions.clear();
                        decisions.resize(range.len(), 0);
                    }
                    sweep_states(
                        kernel,
                        ctmdp,
                        pre,
                        goal,
                        range.clone(),
                        psi,
                        &q_next,
                        maximize,
                        &mut values,
                        &mut decisions,
                    );
                    // Drop the snapshot before reporting so the main
                    // thread can reclaim its allocation afterwards.
                    drop(q_next);
                    if done_tx
                        .send(ChunkResult {
                            worker: w,
                            values,
                            decisions,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }

        for i in (1..=k).rev() {
            let psi = fg.psi(i);
            for (w, job_tx) in job_txs.iter().enumerate() {
                let (values, decs) = buffers[w].take().expect("buffer returned last step");
                // Capacity probe on the assembler thread: the workers
                // only clear+resize, so growth shows up exactly once per
                // undersized buffer — the quantity the buffer-reuse
                // regression tests pin.
                if values.capacity() < ranges[w].len() {
                    bufs.allocs += 1;
                }
                if record && decs.capacity() < ranges[w].len() {
                    bufs.allocs += 1;
                }
                job_tx
                    .send(Job {
                        psi,
                        q_next: Arc::clone(&current),
                        values,
                        decisions: decs,
                    })
                    .expect("worker alive while jobs pend");
            }
            let mut step_decisions: Vec<u16> = if record { vec![0; n] } else { Vec::new() };
            for _ in 0..ranges.len() {
                let chunk = done_rx.recv().expect("worker delivers its chunk");
                let range = ranges[chunk.worker].clone();
                spare[range.clone()].copy_from_slice(&chunk.values);
                if record {
                    step_decisions[range].copy_from_slice(&chunk.decisions);
                }
                buffers[chunk.worker] = Some((chunk.values, chunk.decisions));
            }
            if record {
                decisions[i - 1] = step_decisions;
            }
            // Telemetry runs on the assembler thread only, after every
            // chunk has landed — workers never emit.
            emit_iteration(qi, i, fg, k, &spare);
            // Rotate: the assembled q_i becomes the next snapshot; the old
            // snapshot's allocation is reclaimed (every worker has dropped
            // its clone before sending, so the Arc is unique again).
            let old = std::mem::replace(&mut current, Arc::new(std::mem::take(&mut spare)));
            spare = Arc::try_unwrap(old).unwrap_or_else(|_| vec![0.0; n]);
        }
        drop(job_txs); // workers exit their recv loop
    });

    let result = ReachResult {
        values: finalize_values(goal, &current),
        iterations: k,
        uniform_rate: pre.rate,
        runtime: start.elapsed(),
        decisions,
    };
    // Return every scratch vector for the next query. The workers have
    // all exited the scope, so the snapshot Arc is unique again.
    let plane = Arc::try_unwrap(current).unwrap_or_else(|arc| arc.as_ref().clone());
    bufs.restore_pair(plane, spare);
    let mut restored: Vec<(Vec<f64>, Vec<u16>)> = buffers.into_iter().flatten().collect();
    restored.append(&mut bufs.chunks); // keep any leftover stash behind
    bufs.chunks = restored;
    result
}

/// One query of a [`ReachBatch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachQuery {
    /// The time bound.
    pub t: f64,
    /// Maximize or minimize over schedulers.
    pub objective: Objective,
}

/// Per-query measurements of a batch run.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// The time bound analyzed.
    pub t: f64,
    /// The optimization direction.
    pub objective: Objective,
    /// Value-iteration step count `k(ε, E, t)`.
    pub iterations: usize,
    /// Wall-clock time of this query's iteration.
    pub wall: Duration,
    /// Deterministic chunked-Neumaier checksum of the value vector
    /// (fixed [`CHECKSUM_BLOCK`]-state blocks) — bitwise reproducible for
    /// every thread count, the quantity the CI divergence gate compares.
    pub checksum: f64,
}

/// Aggregate measurements of a batch run, for the BENCH trajectory.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Worker threads as requested by the caller (`0` = auto). Reported
    /// separately from [`BatchStats::threads_effective`] so a clamp on
    /// small hardware is visible instead of silently rewriting the
    /// request in benchmark records.
    pub threads_requested: usize,
    /// Worker threads actually used per query (after resolving `0` =
    /// auto and clamping to `available_parallelism`).
    pub threads_effective: usize,
    /// Time spent building the shared CSR traversal structures.
    pub precompute_time: Duration,
    /// Time spent computing (or fetching) Fox–Glynn weight vectors.
    pub weights_time: Duration,
    /// Total wall-clock time of all value iterations.
    pub iterate_time: Duration,
    /// Weight-cache hits across the batch.
    pub cache_hits: usize,
    /// Weight-cache misses across the batch.
    pub cache_misses: usize,
    /// Sum of all queries' iteration counts.
    pub total_iterations: usize,
    /// The value-iteration kernel the batch ran on.
    pub kernel: Kernel,
    /// Average wall nanoseconds per state per value-iteration step:
    /// `iterate_time / (total_iterations × num_states)` — the
    /// size-normalized kernel speed the BENCH trajectory tracks
    /// (0 when the batch performed no iterations).
    pub kernel_ns_per_state: f64,
    /// How many times an iterate scratch vector had to allocate across
    /// the whole batch. After the first query warms the
    /// [`SweepBuffers`], further same-model queries add zero.
    pub buffer_allocs: usize,
    /// Per-query detail, in query order.
    pub queries: Vec<QueryStats>,
}

/// The answers of a batch run.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One [`ReachResult`] per query, in query order — each bitwise equal
    /// to the corresponding single-query call.
    pub results: Vec<ReachResult>,
    /// Phase timings and cache counters.
    pub stats: BatchStats,
}

/// A batched timed-reachability request: many `(time bound, objective)`
/// queries against one `(model, goal)` pair, sharing the CSR traversal
/// structures and a Fox–Glynn weight cache across queries.
///
/// # Examples
///
/// ```
/// use unicon_ctmdp::{CtmdpBuilder, par::ReachBatch};
///
/// let mut b = CtmdpBuilder::new(3, 0);
/// b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
/// b.transition(1, "a", &[(2, 2.0)]);
/// b.transition(2, "a", &[(2, 2.0)]);
/// let m = b.build();
/// let goal = [false, false, true];
///
/// let batch = ReachBatch::new(&m, &goal)
///     .with_epsilon(1e-9)
///     .query(1.0)
///     .query(4.0);
/// let out = batch.run().expect("uniform model");
/// assert_eq!(out.results.len(), 2);
/// assert!(out.results[0].values[0] < out.results[1].values[0]);
/// ```
#[derive(Debug, Clone)]
pub struct ReachBatch<'a> {
    // pub(crate): the guard module wraps batches without re-borrowing
    // through accessors.
    pub(crate) ctmdp: &'a Ctmdp,
    pub(crate) goal: Vec<bool>,
    pub(crate) epsilon: f64,
    pub(crate) threads: usize,
    pub(crate) kernel: Kernel,
    pub(crate) queries: Vec<ReachQuery>,
}

impl<'a> ReachBatch<'a> {
    /// Starts an empty batch against `(ctmdp, goal)` with the default
    /// precision `1e-6` and one thread.
    ///
    /// # Panics
    ///
    /// Panics if `goal.len()` mismatches the state count.
    pub fn new(ctmdp: &'a Ctmdp, goal: &[bool]) -> Self {
        assert_eq!(
            goal.len(),
            ctmdp.num_states(),
            "goal vector length mismatch"
        );
        Self {
            ctmdp,
            goal: goal.to_vec(),
            epsilon: ReachOptions::default().epsilon,
            threads: 1,
            kernel: Kernel::default(),
            queries: Vec::new(),
        }
    }

    /// Sets the truncation precision shared by all queries (validated at
    /// [`ReachBatch::run`] time).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the worker-thread count (`0` = one per hardware thread).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the value-iteration kernel ([`Kernel::Fused`] by default;
    /// [`Kernel::Reference`] is the retained oracle for differential
    /// benchmarking — both produce bitwise-identical results).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Adds a maximizing (worst-case) query for time bound `t`.
    pub fn query(self, t: f64) -> Self {
        self.query_with(t, Objective::Maximize)
    }

    /// Adds a query with an explicit objective.
    ///
    /// The time bound is validated at [`ReachBatch::run`] time (like the
    /// epsilon), so building a batch from untrusted input never panics —
    /// a bad bound surfaces as [`ReachError::InvalidTimeBound`].
    pub fn query_with(mut self, t: f64, objective: Objective) -> Self {
        self.queries.push(ReachQuery { t, objective });
        self
    }

    /// The queries accumulated so far.
    pub fn queries(&self) -> &[ReachQuery] {
        &self.queries
    }

    /// Runs all queries, sharing precomputation and weight vectors.
    ///
    /// Every returned [`ReachResult`]'s values are bitwise equal to the
    /// corresponding single-query [`timed_reachability_par`] call (and
    /// hence to the sequential engine).
    ///
    /// # Errors
    ///
    /// See [`crate::reachability::timed_reachability`].
    pub fn run(&self) -> Result<BatchResult, ReachError> {
        let pre_start = Instant::now(); // det-lint: allow(clock): runtime telemetry only.
        let pre_span = unicon_obs::open_span("precompute");
        let pre = Precompute::new(self.ctmdp, &self.goal)?;
        let _ = unicon_obs::close_span(pre_span);
        let precompute_time = pre_start.elapsed();
        let mut cache = WeightCache::new();
        self.run_inner(&pre, &mut cache, precompute_time)
    }

    /// Runs all queries against an externally owned [`ReachEngine`] and
    /// weight cache: the engine's precomputation is reused (not rebuilt),
    /// and the cache persists across calls — the amortization path of a
    /// long-running query service, where one model answers many batches.
    ///
    /// Results are bitwise identical to [`ReachBatch::run`].
    ///
    /// # Errors
    ///
    /// Everything [`ReachBatch::run`] returns, plus
    /// [`ReachError::GoalLengthMismatch`] when the engine was built for a
    /// different state count or goal than this batch's.
    pub fn run_with_engine(
        &self,
        engine: &ReachEngine,
        cache: &mut WeightCache,
    ) -> Result<BatchResult, ReachError> {
        engine.check_compatible(self.ctmdp, &self.goal)?;
        self.run_inner(&engine.pre, cache, Duration::ZERO)
    }

    /// The shared driver behind [`ReachBatch::run`] and
    /// [`ReachBatch::run_with_engine`]: `pre` may be freshly built or a
    /// long-lived shared precomputation, `cache` a per-run or cross-run
    /// weight table — neither choice affects any result bit.
    fn run_inner(
        &self,
        pre: &Precompute,
        cache: &mut WeightCache,
        precompute_time: Duration,
    ) -> Result<BatchResult, ReachError> {
        validate_epsilon(self.epsilon)?;
        for q in &self.queries {
            validate_time(q.t)?;
        }
        let threads = resolve_threads(self.threads);

        let opts_base = ReachOptions::default()
            .with_epsilon(self.epsilon)
            .with_kernel(self.kernel);
        // The cache may be shared across many runs (a serve session);
        // stats and counter events report this run's contribution only.
        let (hits0, misses0) = (cache.hits(), cache.misses());
        let mut results = Vec::with_capacity(self.queries.len());
        let mut query_stats = Vec::with_capacity(self.queries.len());
        let mut weights_time = Duration::ZERO;
        let mut iterate_time = Duration::ZERO;
        let mut total_iterations = 0;
        // One scratch pool for the whole batch: the first query sizes it,
        // every later query runs allocation-free.
        let mut bufs = SweepBuffers::default();

        for (qi, q) in self.queries.iter().enumerate() {
            let result = if q.t == 0.0 || pre.rate == 0.0 {
                indicator_result(&self.goal, pre.rate)
            } else {
                let query_span = unicon_obs::span("query");
                let w_start = Instant::now(); // det-lint: allow(clock): runtime telemetry only.
                let weights_span = unicon_obs::span("weights");
                let cached = cache.get(pre.rate, q.t, self.epsilon).clone();
                drop(weights_span);
                weights_time += w_start.elapsed();
                unicon_obs::emit(unicon_obs::Class::Iter, || unicon_obs::Event::QueryStart {
                    query: qi,
                    t: q.t,
                    lambda: cached.fg.lambda(),
                    left: cached.fg.left_truncation(self.epsilon),
                    right: cached.truncation,
                });
                let opts = opts_base.with_objective(q.objective);
                let result = run_query(
                    self.ctmdp,
                    pre,
                    &self.goal,
                    &cached.fg,
                    cached.truncation,
                    &opts,
                    threads,
                    qi,
                    Instant::now(), // det-lint: allow(clock): event timestamp only.
                    &mut bufs,
                );
                drop(query_span);
                result
            };
            iterate_time += result.runtime;
            total_iterations += result.iterations;
            query_stats.push(QueryStats {
                t: q.t,
                objective: q.objective,
                iterations: result.iterations,
                wall: result.runtime,
                checksum: chunked_stable_sum(&result.values, CHECKSUM_BLOCK),
            });
            results.push(result);
        }

        unicon_obs::emit(unicon_obs::Class::Metric, || unicon_obs::Event::Counter {
            name: "weight_cache_hits",
            value: (cache.hits() - hits0) as u64,
        });
        unicon_obs::emit(unicon_obs::Class::Metric, || unicon_obs::Event::Counter {
            name: "weight_cache_misses",
            value: (cache.misses() - misses0) as u64,
        });

        let n = self.ctmdp.num_states();
        let kernel_ns_per_state = if total_iterations == 0 || n == 0 {
            0.0
        } else {
            iterate_time.as_nanos() as f64 / (total_iterations as f64 * n as f64)
        };
        unicon_obs::emit(unicon_obs::Class::Metric, || unicon_obs::Event::Gauge {
            name: "reach_kernel_ns_per_state",
            value: kernel_ns_per_state,
        });

        Ok(BatchResult {
            results,
            stats: BatchStats {
                threads_requested: self.threads,
                threads_effective: threads,
                precompute_time,
                weights_time,
                iterate_time,
                cache_hits: cache.hits() - hits0,
                cache_misses: cache.misses() - misses0,
                total_iterations,
                kernel: self.kernel,
                kernel_ns_per_state,
                buffer_allocs: bufs.allocs,
                queries: query_stats,
            },
        })
    }
}

/// A re-entrant query engine over one `(model, goal)` pair.
///
/// [`Precompute`] — the CSR traversal structures and the goal-row
/// pre-aggregation every value-iteration step reads — is built **once**
/// at construction and only ever read afterwards, so a `&ReachEngine`
/// can answer queries from many threads concurrently without locking.
/// This is the amortization core of a long-running reachability service:
/// the model is prepared one time, after which every `(t, objective,
/// epsilon)` query touches only immutable shared state plus its own
/// iterate buffers.
///
/// # Determinism contract
///
/// Every query's arithmetic is confined to that query (snapshot reads,
/// disjoint writes, fixed-block checksums), so the same query returns
/// bitwise-identical values whether issued serially, interleaved with
/// other queries, or at any worker-thread count — the same contract
/// [`timed_reachability_par`] pins.
///
/// The engine does not borrow the model; calls pass `&Ctmdp` so the
/// engine can live next to an owned model inside a registry entry. It is
/// a contract violation to pass a different model than the one the
/// engine was built from; the cheap structural guards ([`ReachError`]s)
/// catch size mismatches, not content swaps.
#[derive(Debug, Clone)]
pub struct ReachEngine {
    goal: Vec<bool>,
    num_states: usize,
    num_transitions: usize,
    pub(crate) pre: Precompute,
}

impl ReachEngine {
    /// Builds the shared precomputation for `(ctmdp, goal)`.
    ///
    /// # Errors
    ///
    /// [`ReachError::GoalLengthMismatch`] or [`ReachError::NotUniform`]
    /// under the conditions of
    /// [`crate::reachability::timed_reachability`].
    pub fn new(ctmdp: &Ctmdp, goal: &[bool]) -> Result<Self, ReachError> {
        let pre = Precompute::new(ctmdp, goal)?;
        Ok(Self {
            goal: goal.to_vec(),
            num_states: ctmdp.num_states(),
            num_transitions: ctmdp.num_transitions(),
            pre,
        })
    }

    /// The uniform exit rate `E` of the model the engine was built from.
    #[must_use]
    pub fn uniform_rate(&self) -> f64 {
        self.pre.rate
    }

    /// The goal vector the engine answers queries against.
    #[must_use]
    pub fn goal(&self) -> &[bool] {
        &self.goal
    }

    /// Heap bytes the engine keeps resident between queries: the goal
    /// vector plus the shared precomputation (CSR probability rows and
    /// goal-mass vector). Model caches charge this against their budget.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.goal.len() * std::mem::size_of::<bool>() + self.pre.memory_bytes()
    }

    /// Structural guard: the model and goal a caller supplies must match
    /// the ones the engine was built from.
    pub(crate) fn check_compatible(&self, ctmdp: &Ctmdp, goal: &[bool]) -> Result<(), ReachError> {
        if ctmdp.num_states() != self.num_states
            || ctmdp.num_transitions() != self.num_transitions
            || goal != self.goal
        {
            return Err(ReachError::GoalLengthMismatch {
                goal_len: goal.len(),
                num_states: self.num_states,
            });
        }
        Ok(())
    }

    /// Answers one query, computing the Fox–Glynn weights in place (no
    /// cache). Bitwise identical to [`timed_reachability_par`].
    ///
    /// # Errors
    ///
    /// [`ReachError::InvalidTimeBound`] / [`ReachError::InvalidEpsilon`]
    /// on bad parameters, [`ReachError::GoalLengthMismatch`] when
    /// `ctmdp` is not the model the engine was built from.
    pub fn query(
        &self,
        ctmdp: &Ctmdp,
        t: f64,
        objective: Objective,
        epsilon: f64,
        threads: usize,
    ) -> Result<ReachResult, ReachError> {
        validate_time(t)?;
        validate_epsilon(epsilon)?;
        self.check_compatible(ctmdp, &self.goal)?;
        if t == 0.0 || self.pre.rate == 0.0 {
            return Ok(indicator_result(&self.goal, self.pre.rate));
        }
        let fg = FoxGlynn::new(self.pre.rate * t);
        let k = fg.right_truncation(epsilon);
        let weights = CachedWeights { fg, truncation: k };
        Ok(self.run_weighted(ctmdp, t, objective, epsilon, &weights, threads))
    }

    /// Answers one query from pre-fetched Fox–Glynn weights — the
    /// cache-warm fast path of a query service, where `weights` comes
    /// from a [`WeightCache`] shared across sessions. A cache hit is
    /// bitwise indistinguishable from recomputation, so this returns the
    /// exact bits [`ReachEngine::query`] returns.
    ///
    /// # Errors
    ///
    /// See [`ReachEngine::query`]. The caller must have fetched
    /// `weights` for `(self.uniform_rate(), t, epsilon)`; the cheap
    /// guards here cannot detect a wrong-key vector.
    pub fn query_with_weights(
        &self,
        ctmdp: &Ctmdp,
        t: f64,
        objective: Objective,
        epsilon: f64,
        weights: &CachedWeights,
        threads: usize,
    ) -> Result<ReachResult, ReachError> {
        validate_time(t)?;
        validate_epsilon(epsilon)?;
        self.check_compatible(ctmdp, &self.goal)?;
        if t == 0.0 || self.pre.rate == 0.0 {
            return Ok(indicator_result(&self.goal, self.pre.rate));
        }
        Ok(self.run_weighted(ctmdp, t, objective, epsilon, weights, threads))
    }

    fn run_weighted(
        &self,
        ctmdp: &Ctmdp,
        t: f64,
        objective: Objective,
        epsilon: f64,
        weights: &CachedWeights,
        threads: usize,
    ) -> ReachResult {
        unicon_obs::emit(unicon_obs::Class::Iter, || unicon_obs::Event::QueryStart {
            query: 0,
            t,
            lambda: weights.fg.lambda(),
            left: weights.fg.left_truncation(epsilon),
            right: weights.truncation,
        });
        let opts = ReachOptions::default()
            .with_epsilon(epsilon)
            .with_objective(objective);
        run_query(
            ctmdp,
            &self.pre,
            &self.goal,
            &weights.fg,
            weights.truncation,
            &opts,
            threads,
            0,
            Instant::now(), // det-lint: allow(clock): runtime telemetry only.
            &mut SweepBuffers::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;
    use crate::reachability::timed_reachability;

    fn chain() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
        b.transition(1, "a", &[(2, 2.0)]);
        b.transition(2, "a", &[(2, 2.0)]);
        b.build()
    }

    fn bits(values: &[f64]) -> Vec<u64> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn parallel_matches_sequential_bitwise_on_chain() {
        let m = chain();
        let goal = [false, false, true];
        let opts = ReachOptions::default().with_epsilon(1e-10);
        let seq = timed_reachability(&m, &goal, 2.5, &opts).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = timed_reachability_par(&m, &goal, 2.5, &opts, threads).unwrap();
            assert_eq!(bits(&par.values), bits(&seq.values), "threads {threads}");
            assert_eq!(par.iterations, seq.iterations);
        }
    }

    #[test]
    fn parallel_records_identical_decisions() {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "to_goal", &[(1, 2.0)]);
        b.transition(0, "away", &[(2, 2.0)]);
        b.transition(1, "s", &[(1, 2.0)]);
        b.transition(2, "s", &[(2, 2.0)]);
        let m = b.build();
        let goal = [false, true, false];
        let opts = ReachOptions::default().recording_decisions();
        let seq = timed_reachability(&m, &goal, 1.0, &opts).unwrap();
        let par = timed_reachability_par(&m, &goal, 1.0, &opts, 2).unwrap();
        assert_eq!(seq.decisions, par.decisions);
        assert_eq!(bits(&seq.values), bits(&par.values));
    }

    #[test]
    fn zero_time_and_zero_rate_shortcuts() {
        let m = chain();
        let goal = [false, false, true];
        let r = timed_reachability_par(&m, &goal, 0.0, &ReachOptions::default(), 4).unwrap();
        assert_eq!(r.values, vec![0.0, 0.0, 1.0]);
        let empty = CtmdpBuilder::new(2, 0).build();
        let r = timed_reachability_par(&empty, &[false, true], 3.0, &ReachOptions::default(), 4)
            .unwrap();
        assert_eq!(r.values, vec![0.0, 1.0]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn parallel_rejects_bad_epsilon_and_non_uniform() {
        let m = chain();
        let goal = [false, false, true];
        assert!(matches!(
            timed_reachability_par(
                &m,
                &goal,
                1.0,
                &ReachOptions::default().with_epsilon(0.0),
                2
            ),
            Err(ReachError::InvalidEpsilon { .. })
        ));
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "a", &[(0, 3.0)]);
        assert!(matches!(
            timed_reachability_par(&b.build(), &[false, true], 1.0, &ReachOptions::default(), 2),
            Err(ReachError::NotUniform(_))
        ));
    }

    #[test]
    fn batch_equals_single_queries_and_counts_cache() {
        let m = chain();
        let goal = [false, false, true];
        let eps = 1e-8;
        let batch = ReachBatch::new(&m, &goal)
            .with_epsilon(eps)
            .query(0.5)
            .query(2.0)
            .query_with(2.0, Objective::Minimize) // same t: cache hit
            .query(0.0);
        let out = batch.run().unwrap();
        assert_eq!(out.results.len(), 4);
        let opts = ReachOptions::default().with_epsilon(eps);
        for (i, q) in [
            (0, (0.5, Objective::Maximize)),
            (1, (2.0, Objective::Maximize)),
            (2, (2.0, Objective::Minimize)),
            (3, (0.0, Objective::Maximize)),
        ] {
            let single = timed_reachability(&m, &goal, q.0, &opts.with_objective(q.1)).unwrap();
            assert_eq!(
                bits(&out.results[i].values),
                bits(&single.values),
                "query {i}"
            );
            assert_eq!(out.results[i].iterations, single.iterations);
        }
        // 0.5 and 2.0 miss; the repeated 2.0 hits; t = 0 bypasses weights.
        assert_eq!(out.stats.cache_misses, 2);
        assert_eq!(out.stats.cache_hits, 1);
        assert_eq!(out.stats.queries.len(), 4);
        assert_eq!(
            out.stats.total_iterations,
            out.results.iter().map(|r| r.iterations).sum::<usize>()
        );
    }

    #[test]
    fn batch_checksums_are_thread_invariant() {
        let m = chain();
        let goal = [false, false, true];
        let run = |threads| {
            ReachBatch::new(&m, &goal)
                .with_epsilon(1e-9)
                .with_threads(threads)
                .query(1.0)
                .query(3.0)
                .run()
                .unwrap()
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        for i in 0..2 {
            assert_eq!(
                a.stats.queries[i].checksum.to_bits(),
                b.stats.queries[i].checksum.to_bits()
            );
            assert_eq!(
                a.stats.queries[i].checksum.to_bits(),
                c.stats.queries[i].checksum.to_bits()
            );
        }
        assert_eq!(b.stats.threads_effective, resolve_threads(2));
    }

    /// The PR-6 clamp made `BatchStats` silently record the *effective*
    /// thread count under the requested one's name (BENCH_reach.json's
    /// `threads4` block said `"threads":1` on 1-CPU hardware). Both
    /// numbers are now first-class: the request verbatim, the resolution
    /// separately.
    #[test]
    fn batch_reports_requested_and_effective_threads() {
        let m = chain();
        let goal = [false, false, true];
        let out = ReachBatch::new(&m, &goal)
            .with_threads(4)
            .query(1.0)
            .run()
            .unwrap();
        assert_eq!(out.stats.threads_requested, 4);
        assert_eq!(out.stats.threads_effective, resolve_threads(4));
        // auto (0) stays visible as the literal request
        let auto = ReachBatch::new(&m, &goal)
            .with_threads(0)
            .query(1.0)
            .run()
            .unwrap();
        assert_eq!(auto.stats.threads_requested, 0);
        assert_eq!(auto.stats.threads_effective, resolve_threads(0));
        // an oversubscribed request is never silently rewritten
        let big = ReachBatch::new(&m, &goal)
            .with_threads(9999)
            .query(1.0)
            .run()
            .unwrap();
        assert_eq!(big.stats.threads_requested, 9999);
        assert!(big.stats.threads_effective <= 9999);
    }

    #[test]
    fn engine_queries_match_batch_bitwise() {
        let m = chain();
        let goal = [false, false, true];
        let eps = 1e-9;
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let opts = ReachOptions::default().with_epsilon(eps);
        for t in [0.0, 0.5, 2.0, 7.0] {
            let single = timed_reachability(&m, &goal, t, &opts).unwrap();
            for threads in [1, 2, 8] {
                let r = engine
                    .query(&m, t, Objective::Maximize, eps, threads)
                    .unwrap();
                assert_eq!(bits(&r.values), bits(&single.values), "t {t}");
                assert_eq!(r.iterations, single.iterations);
            }
        }
    }

    #[test]
    fn engine_weights_path_matches_uncached_path() {
        let m = chain();
        let goal = [false, false, true];
        let eps = 1e-8;
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let mut cache = WeightCache::new();
        for t in [1.0, 3.0, 1.0] {
            let w = cache.get(engine.uniform_rate(), t, eps).clone();
            let warm = engine
                .query_with_weights(&m, t, Objective::Minimize, eps, &w, 2)
                .unwrap();
            let cold = engine.query(&m, t, Objective::Minimize, eps, 2).unwrap();
            assert_eq!(bits(&warm.values), bits(&cold.values), "t {t}");
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    /// `&ReachEngine` is shared across threads: concurrent queries read
    /// the one precomputation and still return the serial bits.
    #[test]
    fn engine_is_reentrant_across_threads() {
        let m = chain();
        let goal = [false, false, true];
        let eps = 1e-9;
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let serial: Vec<Vec<u64>> = (1..=6)
            .map(|i| {
                let r = engine
                    .query(&m, f64::from(i) * 0.5, Objective::Maximize, eps, 1)
                    .unwrap();
                bits(&r.values)
            })
            .collect();
        let concurrent: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=6)
                .map(|i| {
                    let (engine, m) = (&engine, &m);
                    scope.spawn(move || {
                        let r = engine
                            .query(m, f64::from(i) * 0.5, Objective::Maximize, eps, 2)
                            .unwrap();
                        bits(&r.values)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, concurrent);
    }

    #[test]
    fn run_with_engine_shares_cache_and_matches_run() {
        let m = chain();
        let goal = [false, false, true];
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let mut cache = WeightCache::new();
        let batch = ReachBatch::new(&m, &goal)
            .with_epsilon(1e-8)
            .query(1.0)
            .query(2.0);
        let plain = batch.run().unwrap();
        let first = batch.run_with_engine(&engine, &mut cache).unwrap();
        let second = batch.run_with_engine(&engine, &mut cache).unwrap();
        for (a, b) in plain.results.iter().zip(&first.results) {
            assert_eq!(bits(&a.values), bits(&b.values));
        }
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(bits(&a.values), bits(&b.values));
        }
        // the cache persisted: the second run answers both bounds warm,
        // and per-run stats report deltas, not lifetime totals
        assert_eq!((first.stats.cache_hits, first.stats.cache_misses), (0, 2));
        assert_eq!((second.stats.cache_hits, second.stats.cache_misses), (2, 0));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn engine_rejects_mismatched_model_or_goal() {
        let m = chain();
        let goal = [false, false, true];
        let engine = ReachEngine::new(&m, &goal).unwrap();
        let mut other = CtmdpBuilder::new(2, 0);
        other.transition(0, "a", &[(1, 1.0)]);
        other.transition(1, "a", &[(1, 1.0)]);
        let other = other.build();
        assert!(matches!(
            engine.query(&other, 1.0, Objective::Maximize, 1e-6, 1),
            Err(ReachError::GoalLengthMismatch { .. })
        ));
        let batch = ReachBatch::new(&m, &[true, false, true]).query(1.0);
        let mut cache = WeightCache::new();
        assert!(matches!(
            batch.run_with_engine(&engine, &mut cache),
            Err(ReachError::GoalLengthMismatch { .. })
        ));
    }

    #[test]
    fn batch_validates_epsilon_before_running() {
        let m = chain();
        let goal = [false, false, true];
        let err = ReachBatch::new(&m, &goal)
            .with_epsilon(-0.5)
            .query(1.0)
            .run()
            .unwrap_err();
        assert!(matches!(err, ReachError::InvalidEpsilon { epsilon } if epsilon == -0.5));
    }

    #[test]
    fn batch_validates_time_bounds_at_run_time() {
        let m = chain();
        let goal = [false, false, true];
        // building with a bad bound must not panic...
        let batch = ReachBatch::new(&m, &goal).query(f64::NAN).query(1.0);
        // ...the error surfaces from run()
        let err = batch.run().unwrap_err();
        assert!(matches!(err, ReachError::InvalidTimeBound { t } if t.is_nan()));
        let err = ReachBatch::new(&m, &goal).query(-2.0).run().unwrap_err();
        assert!(matches!(err, ReachError::InvalidTimeBound { t } if t == -2.0));
    }

    #[test]
    fn resolve_threads_auto_is_positive_and_clamped() {
        let avail = std::thread::available_parallelism().map_or(1, usize::from);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(0), avail);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(3), 3.min(avail));
        // An absurd request never exceeds the hardware.
        assert_eq!(resolve_threads(usize::MAX), avail);
    }
}
