//! Diagnostic exports for CTMDPs.

use std::fmt::Write as _;

use crate::model::Ctmdp;

/// Renders a CTMDP as a GraphViz DOT digraph: boxes for states, one dot
/// node per transition `(s, a, R)` (mirroring the hyperedge reading of rate
/// functions), solid edges for the action selection, dashed rate-labeled
/// edges for the probabilistic branching.
///
/// Intended for small models (debugging, papers); the output grows with
/// `Σ |R|`.
///
/// # Examples
///
/// ```
/// use unicon_ctmdp::{export, CtmdpBuilder};
///
/// let mut b = CtmdpBuilder::new(2, 0);
/// b.transition(0, "go", &[(1, 2.0)]);
/// b.transition(1, "back", &[(0, 2.0)]);
/// let dot = export::to_dot(&b.build(), "two_states");
/// assert!(dot.contains("label=\"go\""));
/// ```
pub fn to_dot(ctmdp: &Ctmdp, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").expect("writing to a String cannot fail");
    writeln!(out, "  rankdir=LR;").expect("writing to a String cannot fail");
    writeln!(out, "  node [shape=box];").expect("writing to a String cannot fail");
    writeln!(out, "  s{} [style=bold];", ctmdp.initial()).expect("writing to a String cannot fail");
    for s in 0..ctmdp.num_states() as u32 {
        writeln!(out, "  s{s} [label=\"{s}\"];").expect("writing to a String cannot fail");
        for (i, tr) in ctmdp.transitions_from(s).iter().enumerate() {
            let mid = format!("t{s}_{i}");
            let action = ctmdp.actions().name(tr.action);
            writeln!(out, "  {mid} [shape=point];").expect("writing to a String cannot fail");
            writeln!(out, "  s{s} -> {mid} [label=\"{action}\"];")
                .expect("writing to a String cannot fail");
            for &(tgt, rate) in ctmdp.rate_function(tr.rate_fn).targets() {
                writeln!(out, "  {mid} -> s{tgt} [label=\"{rate}\", style=dashed];")
                    .expect("writing to a String cannot fail");
            }
        }
    }
    writeln!(out, "}}").expect("writing to a String cannot fail");
    out
}

/// A one-line textual summary of a CTMDP (sizes, uniformity, branching).
pub fn summary(ctmdp: &Ctmdp) -> String {
    let nondet_states = (0..ctmdp.num_states() as u32)
        .filter(|&s| ctmdp.transitions_from(s).len() > 1)
        .count();
    let max_choices = (0..ctmdp.num_states() as u32)
        .map(|s| ctmdp.transitions_from(s).len())
        .max()
        .unwrap_or(0);
    let uniform = match ctmdp.uniform_rate() {
        Ok(e) => format!("uniform (E = {e})"),
        Err(e) => format!("non-uniform ({e})"),
    };
    format!(
        "{} states, {} transitions, {} rate functions ({} entries), {} \
         nondeterministic states (max {} choices), {}",
        ctmdp.num_states(),
        ctmdp.num_transitions(),
        ctmdp.num_rate_functions(),
        ctmdp.num_rate_entries(),
        nondet_states,
        max_choices,
        uniform
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;

    fn sample() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "left", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "right", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "stay", &[(2, 2.0)]);
        b.build()
    }

    #[test]
    fn dot_contains_all_parts() {
        let d = to_dot(&sample(), "m");
        assert!(d.starts_with("digraph"));
        assert!(d.contains("label=\"left\""));
        assert!(d.contains("label=\"right\""));
        assert!(d.contains("style=dashed"));
        assert!(d.contains("s0 [style=bold]"));
    }

    #[test]
    fn summary_reports_nondeterminism_and_uniformity() {
        let s = summary(&sample());
        assert!(s.contains("3 states"));
        assert!(s.contains("4 transitions"));
        assert!(s.contains("1 nondeterministic states (max 2 choices)"));
        assert!(s.contains("uniform (E = 2)"));
    }

    #[test]
    fn summary_flags_non_uniform() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "b", &[(0, 3.0)]);
        assert!(summary(&b.build()).contains("non-uniform"));
    }
}
