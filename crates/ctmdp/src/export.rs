//! Diagnostic exports for CTMDPs: DOT graphs, textual summaries,
//! scheduler serialization and batch-run JSON for the bench harness.

use std::fmt::Write as _;
use std::time::Duration;

use crate::model::Ctmdp;
use crate::par::BatchResult;
use crate::reachability::Objective;
use crate::scheduler::StepDependent;

/// Renders a CTMDP as a GraphViz DOT digraph: boxes for states, one dot
/// node per transition `(s, a, R)` (mirroring the hyperedge reading of rate
/// functions), solid edges for the action selection, dashed rate-labeled
/// edges for the probabilistic branching.
///
/// Intended for small models (debugging, papers); the output grows with
/// `Σ |R|`.
///
/// # Examples
///
/// ```
/// use unicon_ctmdp::{export, CtmdpBuilder};
///
/// let mut b = CtmdpBuilder::new(2, 0);
/// b.transition(0, "go", &[(1, 2.0)]);
/// b.transition(1, "back", &[(0, 2.0)]);
/// let dot = export::to_dot(&b.build(), "two_states");
/// assert!(dot.contains("label=\"go\""));
/// ```
pub fn to_dot(ctmdp: &Ctmdp, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").expect("writing to a String cannot fail");
    writeln!(out, "  rankdir=LR;").expect("writing to a String cannot fail");
    writeln!(out, "  node [shape=box];").expect("writing to a String cannot fail");
    writeln!(out, "  s{} [style=bold];", ctmdp.initial()).expect("writing to a String cannot fail");
    for s in 0..ctmdp.num_states() as u32 {
        writeln!(out, "  s{s} [label=\"{s}\"];").expect("writing to a String cannot fail");
        for (i, tr) in ctmdp.transitions_from(s).iter().enumerate() {
            let mid = format!("t{s}_{i}");
            let action = ctmdp.actions().name(tr.action);
            writeln!(out, "  {mid} [shape=point];").expect("writing to a String cannot fail");
            writeln!(out, "  s{s} -> {mid} [label=\"{action}\"];")
                .expect("writing to a String cannot fail");
            for &(tgt, rate) in ctmdp.rate_function(tr.rate_fn).targets() {
                writeln!(out, "  {mid} -> s{tgt} [label=\"{rate}\", style=dashed];")
                    .expect("writing to a String cannot fail");
            }
        }
    }
    writeln!(out, "}}").expect("writing to a String cannot fail");
    out
}

/// A one-line textual summary of a CTMDP (sizes, uniformity, branching).
pub fn summary(ctmdp: &Ctmdp) -> String {
    let nondet_states = (0..ctmdp.num_states() as u32)
        .filter(|&s| ctmdp.transitions_from(s).len() > 1)
        .count();
    let max_choices = (0..ctmdp.num_states() as u32)
        .map(|s| ctmdp.transitions_from(s).len())
        .max()
        .unwrap_or(0);
    let uniform = match ctmdp.uniform_rate() {
        Ok(e) => format!("uniform (E = {e})"),
        Err(e) => format!("non-uniform ({e})"),
    };
    format!(
        "{} states, {} transitions, {} rate functions ({} entries), {} \
         nondeterministic states (max {} choices), {}",
        ctmdp.num_states(),
        ctmdp.num_transitions(),
        ctmdp.num_rate_functions(),
        ctmdp.num_rate_entries(),
        nondet_states,
        max_choices,
        uniform
    )
}

/// Serializes a recorded step-dependent scheduler as plain text:
/// a header line `unicon-scheduler v1 steps=<k> states=<n>` followed by one
/// line per step, each listing the chosen transition index for every state.
///
/// The format round-trips exactly through [`scheduler_from_text`].
pub fn scheduler_to_text(sched: &StepDependent) -> String {
    let decisions = sched.decisions();
    let states = decisions.first().map_or(0, Vec::len);
    let mut out = String::new();
    writeln!(
        out,
        "unicon-scheduler v1 steps={} states={states}",
        decisions.len()
    )
    .expect("writing to a String cannot fail");
    for step in decisions {
        let mut first = true;
        for &c in step {
            if !first {
                out.push(' ');
            }
            write!(out, "{c}").expect("writing to a String cannot fail");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Error parsing a serialized scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerParseError {
    /// What went wrong, with the offending line number where applicable.
    pub message: String,
}

impl std::fmt::Display for SchedulerParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scheduler text: {}", self.message)
    }
}

impl std::error::Error for SchedulerParseError {}

fn parse_error(message: impl Into<String>) -> SchedulerParseError {
    SchedulerParseError {
        message: message.into(),
    }
}

/// Parses the textual scheduler format written by [`scheduler_to_text`].
///
/// # Errors
///
/// [`SchedulerParseError`] on a malformed header, a step/state count
/// mismatch, or a non-`u16` decision entry.
pub fn scheduler_from_text(text: &str) -> Result<StepDependent, SchedulerParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| parse_error("empty input"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("unicon-scheduler") || parts.next() != Some("v1") {
        return Err(parse_error(format!("bad header '{header}'")));
    }
    let field = |p: Option<&str>, key: &str| -> Result<usize, SchedulerParseError> {
        p.and_then(|f| f.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_error(format!("header misses '{key}<count>'")))
    };
    let steps = field(parts.next(), "steps=")?;
    let states = field(parts.next(), "states=")?;
    if steps == 0 {
        return Err(parse_error("scheduler needs at least one step"));
    }
    let mut decisions = Vec::with_capacity(steps);
    for (i, line) in lines.enumerate() {
        let row: Vec<u16> = line
            .split_whitespace()
            .map(|tok| {
                tok.parse()
                    .map_err(|_| parse_error(format!("bad entry '{tok}' in step {}", i + 1)))
            })
            .collect::<Result<_, _>>()?;
        if row.len() != states {
            return Err(parse_error(format!(
                "step {} has {} entries, expected {states}",
                i + 1,
                row.len()
            )));
        }
        decisions.push(row);
    }
    if decisions.len() != steps {
        return Err(parse_error(format!(
            "found {} steps, header promised {steps}",
            decisions.len()
        )));
    }
    Ok(StepDependent::new(decisions))
}

/// Renders a batch run's measurements as one JSON object: requested and
/// effective thread counts (the request before and after the
/// `available_parallelism` clamp), machine parallelism, the
/// value-iteration kernel and its normalized speed
/// (`kernel_ns_per_state`), per-phase timings in milliseconds,
/// weight-cache counters, and one entry per query carrying its iteration
/// count, wall time, the value from state `initial` and the deterministic
/// chunked checksum (hex-encoded bits, bitwise reproducible across
/// thread counts).
pub fn batch_to_json(batch: &BatchResult, initial: u32) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let s = &batch.stats;
    let queries: Vec<String> = s
        .queries
        .iter()
        .zip(&batch.results)
        .map(|(q, r)| {
            format!(
                "{{\"t\":{},\"objective\":\"{}\",\"iterations\":{},\"wall_ms\":{},\
                 \"value\":{:e},\"checksum\":\"{:016x}\"}}",
                q.t,
                match q.objective {
                    Objective::Maximize => "max",
                    Objective::Minimize => "min",
                },
                q.iterations,
                ms(q.wall),
                r.from_state(initial),
                q.checksum.to_bits(),
            )
        })
        .collect();
    format!(
        "{{\"threads_requested\":{},\"threads_effective\":{},\
         \"available_parallelism\":{},\"kernel\":\"{}\",\
         \"kernel_ns_per_state\":{},\"precompute_ms\":{},\
         \"weights_ms\":{},\"iterate_ms\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"total_iterations\":{},\"queries\":[{}]}}",
        s.threads_requested,
        s.threads_effective,
        std::thread::available_parallelism().map_or(1, usize::from),
        s.kernel.as_str(),
        s.kernel_ns_per_state,
        ms(s.precompute_time),
        ms(s.weights_time),
        ms(s.iterate_time),
        s.cache_hits,
        s.cache_misses,
        s.total_iterations,
        queries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;

    fn sample() -> Ctmdp {
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "left", &[(1, 1.0), (2, 1.0)]);
        b.transition(0, "right", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "stay", &[(2, 2.0)]);
        b.build()
    }

    #[test]
    fn dot_contains_all_parts() {
        let d = to_dot(&sample(), "m");
        assert!(d.starts_with("digraph"));
        assert!(d.contains("label=\"left\""));
        assert!(d.contains("label=\"right\""));
        assert!(d.contains("style=dashed"));
        assert!(d.contains("s0 [style=bold]"));
    }

    #[test]
    fn summary_reports_nondeterminism_and_uniformity() {
        let s = summary(&sample());
        assert!(s.contains("3 states"));
        assert!(s.contains("4 transitions"));
        assert!(s.contains("1 nondeterministic states (max 2 choices)"));
        assert!(s.contains("uniform (E = 2)"));
    }

    #[test]
    fn summary_flags_non_uniform() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "b", &[(0, 3.0)]);
        assert!(summary(&b.build()).contains("non-uniform"));
    }

    #[test]
    fn scheduler_text_round_trips_a_recorded_scheduler() {
        use crate::reachability::{timed_reachability, ReachOptions};

        let m = sample();
        let res = timed_reachability(
            &m,
            &[false, true, false],
            1.5,
            &ReachOptions::default().recording_decisions(),
        )
        .unwrap();
        let sched = StepDependent::from_result(&res);
        let text = scheduler_to_text(&sched);
        assert!(text.starts_with(&format!(
            "unicon-scheduler v1 steps={} states=3",
            sched.horizon()
        )));
        let back = scheduler_from_text(&text).unwrap();
        assert_eq!(back, sched);
        assert_eq!(back.decisions(), res.decisions.as_slice());
    }

    #[test]
    fn scheduler_text_round_trips_handwritten_tables() {
        let sched = StepDependent::new(vec![vec![0, 2, 1], vec![1, 0, 0]]);
        let back = scheduler_from_text(&scheduler_to_text(&sched)).unwrap();
        assert_eq!(back, sched);
    }

    #[test]
    fn scheduler_parse_rejects_malformed_input() {
        for (text, needle) in [
            ("", "empty"),
            ("bogus header\n0 1\n", "bad header"),
            ("unicon-scheduler v2 steps=1 states=2\n0 1\n", "bad header"),
            ("unicon-scheduler v1 steps=x states=2\n0 1\n", "steps="),
            (
                "unicon-scheduler v1 steps=0 states=2\n",
                "at least one step",
            ),
            ("unicon-scheduler v1 steps=1 states=2\n0\n", "entries"),
            ("unicon-scheduler v1 steps=2 states=1\n0\n", "promised 2"),
            ("unicon-scheduler v1 steps=1 states=1\n-3\n", "bad entry"),
            (
                "unicon-scheduler v1 steps=1 states=1\n99999999\n",
                "bad entry",
            ),
        ] {
            let err = scheduler_from_text(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} gave {err}, expected '{needle}'"
            );
        }
    }

    #[test]
    fn batch_json_has_phase_and_query_fields() {
        use crate::par::ReachBatch;

        let m = sample();
        let goal = [false, true, false];
        let out = ReachBatch::new(&m, &goal)
            .with_epsilon(1e-8)
            .query(1.0)
            .query(1.0)
            .run()
            .unwrap();
        let json = batch_to_json(&out, m.initial());
        for needle in [
            "\"threads_requested\":1",
            "\"threads_effective\":1",
            "\"available_parallelism\":",
            "\"kernel\":\"fused\"",
            "\"kernel_ns_per_state\":",
            "\"precompute_ms\":",
            "\"weights_ms\":",
            "\"iterate_ms\":",
            "\"cache_hits\":1",
            "\"cache_misses\":1",
            "\"queries\":[{",
            "\"objective\":\"max\"",
            "\"checksum\":\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    /// Regression: an over-subscribed request used to be silently
    /// clamped and serialized as the clamped value, so the bench file
    /// recorded `"threads":1` for a 4-thread request. Both numbers are
    /// now reported separately.
    #[test]
    fn batch_json_keeps_requested_threads_distinct_from_effective() {
        use crate::par::{resolve_threads, ReachBatch};

        let m = sample();
        let goal = [false, true, false];
        let requested = 9999;
        let out = ReachBatch::new(&m, &goal)
            .with_threads(requested)
            .query(1.0)
            .run()
            .unwrap();
        let json = batch_to_json(&out, m.initial());
        assert!(
            json.contains(&format!("\"threads_requested\":{requested}")),
            "raw request missing in {json}"
        );
        assert!(
            json.contains(&format!(
                "\"threads_effective\":{}",
                resolve_threads(requested)
            )),
            "clamped effective count missing in {json}"
        );
    }
}
