//! Discrete-event simulation of CTMDPs under a scheduler.
//!
//! Used to cross-validate Algorithm 1: replaying the extracted optimal
//! scheduler through a Monte-Carlo engine must reproduce the computed
//! reachability probability within sampling error.

use unicon_numeric::rng::{Rng, XorShift64};

use crate::model::Ctmdp;
use crate::scheduler::Scheduler;

/// Options for [`estimate_reachability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationOptions {
    /// Number of independent runs.
    pub runs: usize,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self {
            runs: 10_000,
            seed: 0x5EED,
        }
    }
}

/// A Monte-Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Fraction of runs that hit the goal within the time bound.
    pub probability: f64,
    /// Standard error `sqrt(p(1-p)/runs)`.
    pub std_error: f64,
    /// Number of runs performed.
    pub runs: usize,
}

impl Estimate {
    /// Whether `value` lies within `sigmas` standard errors of the
    /// estimate (with a small absolute floor for degenerate cases).
    pub fn is_consistent_with(&self, value: f64, sigmas: f64) -> bool {
        (value - self.probability).abs() <= sigmas * self.std_error + 1e-9
    }
}

/// Samples one timed path and reports whether it hits the goal within `t`.
///
/// The path starts at the initial state; at each visited state the
/// scheduler picks a transition, an exponential sojourn with that
/// transition's exit rate elapses, and the successor is drawn from the
/// discrete branching distribution.
pub fn simulate_run<S: Scheduler, R: Rng>(
    ctmdp: &Ctmdp,
    goal: &[bool],
    t: f64,
    scheduler: &S,
    rng: &mut R,
) -> bool {
    let mut state = ctmdp.initial();
    if goal[state as usize] {
        return true;
    }
    let mut time = 0.0f64;
    let mut step = 1usize;
    loop {
        let trans = ctmdp.transitions_from(state);
        if trans.is_empty() {
            return false;
        }
        let choice = scheduler.choose(step, state, trans.len(), rng);
        debug_assert!(choice < trans.len(), "scheduler chose out of range");
        let rf = ctmdp.rate_function(trans[choice].rate_fn);
        // Exponential sojourn with rate E_R.
        let u: f64 = rng.random_f64();
        time += -u.max(f64::MIN_POSITIVE).ln() / rf.total();
        if time > t {
            return false;
        }
        // Discrete branching.
        let mut x: f64 = rng.random_f64() * rf.total();
        let mut next = rf.targets()[rf.targets().len() - 1].0;
        for &(tgt, r) in rf.targets() {
            if x < r {
                next = tgt;
                break;
            }
            x -= r;
        }
        state = next;
        if goal[state as usize] {
            return true;
        }
        step += 1;
    }
}

/// Estimates `Pr(s₀ ⤳≤t B)` under the given scheduler by Monte-Carlo
/// simulation.
///
/// # Panics
///
/// Panics if `goal.len()` mismatches, `t` is negative/not finite, or
/// `runs == 0`.
pub fn estimate_reachability<S: Scheduler>(
    ctmdp: &Ctmdp,
    goal: &[bool],
    t: f64,
    scheduler: &S,
    opts: &SimulationOptions,
) -> Estimate {
    assert_eq!(
        goal.len(),
        ctmdp.num_states(),
        "goal vector length mismatch"
    );
    assert!(
        t.is_finite() && t >= 0.0,
        "time bound must be finite and >= 0"
    );
    assert!(opts.runs > 0, "need at least one run");
    let mut rng = XorShift64::seed_from_u64(opts.seed);
    let mut hits = 0usize;
    for _ in 0..opts.runs {
        if simulate_run(ctmdp, goal, t, scheduler, &mut rng) {
            hits += 1;
        }
    }
    let p = hits as f64 / opts.runs as f64;
    Estimate {
        probability: p,
        std_error: (p * (1.0 - p) / opts.runs as f64).sqrt(),
        runs: opts.runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CtmdpBuilder;
    use crate::reachability::{timed_reachability, ReachOptions};
    use crate::scheduler::{FirstChoice, StepDependent, UniformRandom};
    use unicon_numeric::special::exponential_cdf;

    fn race_model() -> Ctmdp {
        // state 0: "good" goes to goal at rate 2; "bad" loops away at rate 2.
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "good", &[(1, 2.0)]);
        b.transition(0, "bad", &[(2, 2.0)]);
        b.transition(1, "stay", &[(1, 2.0)]);
        b.transition(2, "back", &[(0, 2.0)]);
        b.build()
    }

    #[test]
    fn simulation_matches_exponential_cdf() {
        let m = race_model();
        let goal = [false, true, false];
        let t = 0.8;
        let est = estimate_reachability(
            &m,
            &goal,
            t,
            &FirstChoice,
            &SimulationOptions {
                runs: 40_000,
                seed: 7,
            },
        );
        let exact = exponential_cdf(2.0, t);
        assert!(
            est.is_consistent_with(exact, 4.0),
            "est {} vs exact {exact}",
            est.probability
        );
    }

    #[test]
    fn extracted_optimal_scheduler_reproduces_algorithm_value() {
        let m = race_model();
        let goal = [false, true, false];
        let t = 1.2;
        let res = timed_reachability(
            &m,
            &goal,
            t,
            &ReachOptions::default()
                .with_epsilon(1e-9)
                .recording_decisions(),
        )
        .unwrap();
        let sched = StepDependent::from_result(&res);
        let est = estimate_reachability(
            &m,
            &goal,
            t,
            &sched,
            &SimulationOptions {
                runs: 40_000,
                seed: 99,
            },
        );
        assert!(
            est.is_consistent_with(res.from_state(0), 4.0),
            "est {} vs algorithm {}",
            est.probability,
            res.from_state(0)
        );
    }

    #[test]
    fn no_scheduler_beats_the_sup() {
        let m = race_model();
        let goal = [false, true, false];
        let t = 1.0;
        let sup = timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(1e-9))
            .unwrap()
            .from_state(0);
        for seed in 0..5 {
            let est = estimate_reachability(
                &m,
                &goal,
                t,
                &UniformRandom,
                &SimulationOptions { runs: 20_000, seed },
            );
            assert!(
                est.probability <= sup + 4.0 * est.std_error,
                "simulation {} exceeded sup {sup}",
                est.probability
            );
        }
    }

    #[test]
    fn goal_at_start_hits_immediately() {
        let m = race_model();
        let goal = [true, false, false];
        let est = estimate_reachability(
            &m,
            &goal,
            0.0,
            &FirstChoice,
            &SimulationOptions { runs: 10, seed: 1 },
        );
        assert_eq!(est.probability, 1.0);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn absorbing_dead_end_never_hits() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        let m = b.build(); // state 1 has no transitions, not a goal
        let est = estimate_reachability(
            &m,
            &[false, false],
            100.0,
            &FirstChoice,
            &SimulationOptions { runs: 100, seed: 3 },
        );
        assert_eq!(est.probability, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = race_model();
        let goal = [false, true, false];
        let opts = SimulationOptions {
            runs: 1000,
            seed: 123,
        };
        let a = estimate_reachability(&m, &goal, 1.0, &UniformRandom, &opts);
        let b = estimate_reachability(&m, &goal, 1.0, &UniformRandom, &opts);
        assert_eq!(a, b);
    }
}
