//! Continuous-time Markov decision processes (CTMDPs) and the uniform
//! timed-reachability algorithm.
//!
//! This crate implements the paper's "mild variation" of CTMDPs: a
//! transition is a triple `(s, a, R)` with `R : S → ℝ⁺` a *rate function*,
//! and a state may carry several transitions with the *same* action label —
//! exactly the shape produced by the uIMC → uCTMDP transformation of
//! `unicon-transform`.
//!
//! Provided here:
//!
//! * the [`Ctmdp`] model, stored as the paper's prototype stores it: a pool
//!   of rate functions (one per Markov state of the strictly alternating
//!   IMC) referenced by sparse per-state transition lists,
//! * **Algorithm 1** — timed reachability `sup_D Pr_D(s ⤳≤t B)` for
//!   *uniform* CTMDPs by backward value iteration with Fox–Glynn Poisson
//!   weights ([`reachability::timed_reachability`]), plus the `inf` variant
//!   and optimal-scheduler extraction,
//! * randomized/deterministic time-abstract [`scheduler`]s,
//! * a discrete-event [`simulate`] engine for Monte-Carlo cross-validation.
//!
//! # Examples
//!
//! ```
//! use unicon_ctmdp::{CtmdpBuilder, reachability::{self, ReachOptions}};
//!
//! // One nondeterministic choice: a fast risky route vs a slow safe one.
//! let mut b = CtmdpBuilder::new(3, 0);
//! b.transition(0, "risky", &[(1, 1.8), (2, 0.2)]); // mostly to goal 1
//! b.transition(0, "safe", &[(2, 2.0)]);
//! b.transition(1, "stay", &[(1, 2.0)]);
//! b.transition(2, "stay", &[(2, 2.0)]);
//! let m = b.build();
//!
//! let goal = [true, false, false]; // goal: stay in state 0? no: state 0
//! let goal = [false, true, false];
//! let res = reachability::timed_reachability(&m, &goal, 1.0, &ReachOptions::default())
//!     .expect("uniform model");
//! // The maximizing scheduler picks "risky".
//! assert!(res.values[0] > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod guard;
mod model;
pub mod par;
pub mod policy;
pub mod reachability;
pub mod scheduler;
pub mod simulate;

pub use model::{Ctmdp, CtmdpBuilder, NotUniformError, RateFunction, TransitionRef};
