//! The [`Ctmdp`] model: states, actions and rate-function transitions.

use unicon_lts::{ActionId, ActionTable};
use unicon_numeric::NeumaierSum;

/// A sparse rate function `R : S → ℝ⁺` (Definition 1).
///
/// `total()` is `E_R = Σ_{s'} R(s')`, the exit rate of the transition; the
/// discrete branching probabilities are `Pr_R(s, s') = R(s') / E_R`.
#[derive(Debug, Clone, PartialEq)]
pub struct RateFunction {
    /// `(target, rate)` pairs, sorted by target, rates > 0.
    targets: Vec<(u32, f64)>,
    total: f64,
}

impl RateFunction {
    /// Builds a rate function from `(target, rate)` pairs; duplicate targets
    /// are merged by addition.
    ///
    /// # Panics
    ///
    /// Panics if empty, or if any rate is not finite and positive.
    pub fn new(mut pairs: Vec<(u32, f64)>) -> Self {
        assert!(!pairs.is_empty(), "a rate function must be non-empty");
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (t, r) in pairs {
            assert!(
                r.is_finite() && r > 0.0,
                "rates must be finite and positive"
            );
            match merged.last_mut() {
                Some((lt, lr)) if *lt == t => *lr += r,
                _ => merged.push((t, r)),
            }
        }
        let mut acc = NeumaierSum::new();
        for &(_, r) in &merged {
            acc.add(r);
        }
        Self {
            targets: merged,
            total: acc.value(),
        }
    }

    /// The `(target, rate)` pairs, sorted by target.
    pub fn targets(&self) -> &[(u32, f64)] {
        &self.targets
    }

    /// Exit rate `E_R`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// `R(target)`, 0 if absent.
    pub fn rate(&self, target: u32) -> f64 {
        match self.targets.binary_search_by_key(&target, |&(t, _)| t) {
            Ok(i) => self.targets[i].1,
            Err(_) => 0.0,
        }
    }

    /// Discrete branching probability `Pr_R(·, target)`.
    pub fn prob(&self, target: u32) -> f64 {
        self.rate(target) / self.total
    }

    /// Iterates over `(target, probability)` pairs.
    pub fn probs(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.targets.iter().map(|&(t, r)| (t, r / self.total))
    }

    /// Cumulative rate into a set of states given as a membership slice.
    pub fn rate_into(&self, set: &[bool]) -> f64 {
        self.targets
            .iter()
            .filter(|&&(t, _)| set[t as usize])
            .map(|&(_, r)| r)
            .sum()
    }
}

/// Reference to one transition `(s, a, R)`: the action and the index of the
/// rate function in the model's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRef {
    /// Action label.
    pub action: ActionId,
    /// Index into [`Ctmdp::rate_functions`].
    pub rate_fn: u32,
}

/// Error returned by analyses that require a uniform CTMDP.
#[derive(Debug, Clone, PartialEq)]
pub struct NotUniformError {
    /// Exit rate of one transition.
    pub rate_a: f64,
    /// Exit rate of a conflicting transition.
    pub rate_b: f64,
}

impl std::fmt::Display for NotUniformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CTMDP is not uniform: transitions with exit rates {} and {} \
             (lint code U001 — Algorithm 1 requires a uniform CTMDP; build it \
             by transforming a uniform IMC)",
            self.rate_a, self.rate_b
        )
    }
}

impl std::error::Error for NotUniformError {}

/// A finite continuous-time Markov decision process (Definition 1, with
/// repeated action labels allowed).
///
/// Build with [`CtmdpBuilder`]. Rate functions are pooled and deduplicated
/// structurally — the paper's observation that "Markov states are in
/// one-to-one correspondence with the rate functions" makes this the
/// natural storage layout for transformed models.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmdp {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    rate_functions: Vec<RateFunction>,
    /// Per-state transition lists, flattened.
    transitions: Vec<TransitionRef>,
    offsets: Vec<usize>,
}

impl Ctmdp {
    pub(crate) fn from_raw(
        actions: ActionTable,
        num_states: usize,
        initial: u32,
        rate_functions: Vec<RateFunction>,
        per_state: Vec<Vec<TransitionRef>>,
    ) -> Self {
        assert!(num_states > 0, "a CTMDP needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of bounds"
        );
        assert_eq!(per_state.len(), num_states, "per-state list mismatch");
        for rf in &rate_functions {
            for &(t, _) in rf.targets() {
                assert!(
                    (t as usize) < num_states,
                    "rate-function target out of bounds"
                );
            }
        }
        let mut offsets = vec![0usize; num_states + 1];
        let mut transitions = Vec::new();
        for (s, list) in per_state.iter().enumerate() {
            for tr in list {
                assert!(
                    (tr.rate_fn as usize) < rate_functions.len(),
                    "rate-function index out of bounds"
                );
                transitions.push(*tr);
            }
            offsets[s + 1] = transitions.len();
        }
        Self {
            actions,
            num_states,
            initial,
            rate_functions,
            transitions,
            offsets,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of transitions `(s, a, R)`.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Number of distinct rate functions in the pool.
    pub fn num_rate_functions(&self) -> usize {
        self.rate_functions.len()
    }

    /// Total number of `(target, rate)` entries over all rate functions —
    /// the "Markov transitions" count of Table 1.
    pub fn num_rate_entries(&self) -> usize {
        self.rate_functions.iter().map(|r| r.targets().len()).sum()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The action table.
    pub fn actions(&self) -> &ActionTable {
        &self.actions
    }

    /// The rate-function pool.
    pub fn rate_functions(&self) -> &[RateFunction] {
        &self.rate_functions
    }

    /// One rate function by index.
    pub fn rate_function(&self, idx: u32) -> &RateFunction {
        &self.rate_functions[idx as usize]
    }

    /// A structural fingerprint: FNV-1a over the state count, the initial
    /// state, the action names, the per-state transition lists and the
    /// rate-function pool (rates by bit pattern). Used by the certification
    /// layer (`unicon-verify::certify`) to tie a recorded `transform`
    /// obligation to the CTMDP actually produced.
    pub fn fingerprint(&self) -> u64 {
        let mut h = unicon_numeric::fnv::Fnv64::new();
        h.write(b"ctmdp-v1");
        h.write_u64(self.num_states as u64);
        h.write_u32(self.initial);
        h.write_u64(self.actions.len() as u64);
        for (_, name) in self.actions.iter() {
            h.write(name.as_bytes());
            h.write(&[0xff]);
        }
        h.write_u64(self.rate_functions.len() as u64);
        for rf in &self.rate_functions {
            h.write_u64(rf.targets().len() as u64);
            for &(t, r) in rf.targets() {
                h.write_u32(t);
                h.write_f64(r);
            }
        }
        for s in 0..self.num_states as u32 {
            let trs = self.transitions_from(s);
            h.write_u64(trs.len() as u64);
            for tr in trs {
                h.write_u32(tr.action.0);
                h.write_u32(tr.rate_fn);
            }
        }
        h.finish()
    }

    /// Transitions emanating from `state` (the paper's `R(s)`).
    pub fn transitions_from(&self, state: u32) -> &[TransitionRef] {
        let s = state as usize;
        &self.transitions[self.offsets[s]..self.offsets[s + 1]]
    }

    /// Whether some state has no outgoing transition.
    pub fn has_absorbing_states(&self) -> bool {
        (0..self.num_states).any(|s| self.offsets[s] == self.offsets[s + 1])
    }

    /// Checks uniformity: all transitions' exit rates `E_R` equal under the
    /// workspace-wide tolerance policy
    /// ([`unicon_numeric::rates_approx_eq`]). Returns the common rate.
    ///
    /// # Errors
    ///
    /// Returns [`NotUniformError`] with two witness rates when non-uniform.
    /// A CTMDP without any transition is vacuously uniform with rate 0.
    pub fn uniform_rate(&self) -> Result<f64, NotUniformError> {
        let mut rate: Option<f64> = None;
        for tr in &self.transitions {
            let e = self.rate_functions[tr.rate_fn as usize].total();
            match rate {
                None => rate = Some(e),
                Some(r) => {
                    if !unicon_numeric::rates_approx_eq(e, r) {
                        return Err(NotUniformError {
                            rate_a: r,
                            rate_b: e,
                        });
                    }
                }
            }
        }
        Ok(rate.unwrap_or(0.0))
    }

    /// Approximate heap footprint of the sparse representation in bytes
    /// (Table 1's "Mem" column).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.transitions.len() * size_of::<TransitionRef>()
            + self.offsets.len() * size_of::<usize>()
            + self
                .rate_functions
                .iter()
                .map(|r| std::mem::size_of_val(r.targets()) + size_of::<f64>())
                .sum::<usize>()
    }
}

/// Builder for [`Ctmdp`].
///
/// Structurally identical rate functions are pooled automatically.
///
/// # Examples
///
/// ```
/// use unicon_ctmdp::CtmdpBuilder;
///
/// let mut b = CtmdpBuilder::new(2, 0);
/// b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
/// b.transition(0, "b", &[(1, 2.0)]);
/// b.transition(1, "a", &[(0, 2.0)]);
/// let m = b.build();
/// assert_eq!(m.num_transitions(), 3);
/// assert_eq!(m.uniform_rate().unwrap(), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct CtmdpBuilder {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    rate_functions: Vec<RateFunction>,
    pool_index: std::collections::HashMap<Vec<(u32, u64)>, u32>,
    per_state: Vec<Vec<TransitionRef>>,
}

impl CtmdpBuilder {
    /// Starts a builder.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` or the initial state is out of bounds.
    pub fn new(num_states: usize, initial: u32) -> Self {
        assert!(num_states > 0, "a CTMDP needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of bounds"
        );
        Self {
            actions: ActionTable::new(),
            num_states,
            initial,
            rate_functions: Vec::new(),
            pool_index: std::collections::HashMap::new(),
            per_state: vec![Vec::new(); num_states],
        }
    }

    /// Adds a transition `(source, action, R)` where `R` is given by
    /// `(target, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds states or non-positive rates.
    pub fn transition(&mut self, source: u32, action: &str, rates: &[(u32, f64)]) -> &mut Self {
        assert!(
            (source as usize) < self.num_states,
            "source state out of bounds"
        );
        let rf = RateFunction::new(rates.to_vec());
        for &(t, _) in rf.targets() {
            assert!((t as usize) < self.num_states, "target state out of bounds");
        }
        let key: Vec<(u32, u64)> = rf
            .targets()
            .iter()
            .map(|&(t, r)| (t, r.to_bits()))
            .collect();
        let idx = match self.pool_index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.rate_functions.len() as u32;
                self.rate_functions.push(rf);
                self.pool_index.insert(key, i);
                i
            }
        };
        let action = self.actions.intern(action);
        let tr = TransitionRef {
            action,
            rate_fn: idx,
        };
        let list = &mut self.per_state[source as usize];
        if !list.contains(&tr) {
            list.push(tr);
        }
        self
    }

    /// Finalizes the CTMDP.
    pub fn build(self) -> Ctmdp {
        Ctmdp::from_raw(
            self.actions,
            self.num_states,
            self.initial,
            self.rate_functions,
            self.per_state,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_numeric::assert_close;

    #[test]
    fn rate_function_merges_and_sums() {
        let rf = RateFunction::new(vec![(2, 1.0), (0, 0.5), (2, 1.5)]);
        assert_eq!(rf.targets(), &[(0, 0.5), (2, 2.5)]);
        assert_close!(rf.total(), 3.0, 1e-12);
        assert_close!(rf.rate(2), 2.5, 1e-12);
        assert_eq!(rf.rate(1), 0.0);
        assert_close!(rf.prob(0), 0.5 / 3.0, 1e-12);
    }

    #[test]
    fn rate_into_set() {
        let rf = RateFunction::new(vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_close!(rf.rate_into(&[true, false, true]), 4.0, 1e-12);
        assert_eq!(rf.rate_into(&[false, false, false]), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rate_function_rejects_empty() {
        RateFunction::new(vec![]);
    }

    #[test]
    fn builder_pools_identical_rate_functions() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "b", &[(1, 1.0)]); // same rate function
        b.transition(0, "c", &[(0, 1.0)]);
        let m = b.build();
        assert_eq!(m.num_transitions(), 3);
        assert_eq!(m.num_rate_functions(), 2);
        assert_eq!(m.num_rate_entries(), 2);
    }

    #[test]
    fn duplicate_transitions_are_dropped() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(0, "a", &[(1, 1.0)]);
        assert_eq!(b.build().num_transitions(), 1);
    }

    #[test]
    fn same_action_different_rates_coexist() {
        // the paper's "mild variation"
        let mut b = CtmdpBuilder::new(3, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(0, "a", &[(2, 1.0)]);
        let m = b.build();
        assert_eq!(m.transitions_from(0).len(), 2);
        let actions: Vec<_> = m
            .transitions_from(0)
            .iter()
            .map(|t| m.actions().name(t.action))
            .collect();
        assert_eq!(actions, vec!["a", "a"]);
    }

    #[test]
    fn uniformity_check() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0), (0, 1.0)]);
        b.transition(1, "b", &[(0, 2.0)]);
        assert_eq!(b.build().uniform_rate().unwrap(), 2.0);

        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "b", &[(0, 2.0)]);
        let err = b.build().uniform_rate().unwrap_err();
        assert_eq!((err.rate_a, err.rate_b), (1.0, 2.0));
        assert!(err.to_string().contains("not uniform"));
    }

    #[test]
    fn empty_model_is_vacuously_uniform() {
        let m = CtmdpBuilder::new(1, 0).build();
        assert_eq!(m.uniform_rate().unwrap(), 0.0);
        assert!(m.has_absorbing_states());
    }

    #[test]
    fn memory_accounting_positive() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        assert!(b.build().memory_bytes() > 0);
    }
}
