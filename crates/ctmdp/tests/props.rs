//! Randomized tests for the uniform-CTMDP timed-reachability engine,
//! driven by the in-tree deterministic [`XorShift64`] generator (fixed
//! seeds, no external PRNG).

use unicon_ctmc::transient::{self, TransientOptions};
use unicon_ctmc::Ctmc;
use unicon_ctmdp::reachability::{timed_reachability, Objective, ReachOptions};
use unicon_ctmdp::scheduler::{StepDependent, UniformRandom};
use unicon_ctmdp::simulate::{estimate_reachability, SimulationOptions};
use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

const CASES: u64 = 64;

fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.random_f64() * (hi - lo)
}

/// A random *uniform* CTMDP: every transition's rate function sums to the
/// same rate `e`.
#[derive(Debug, Clone)]
struct RawCtmdp {
    n: usize,
    /// per state: 1..=3 transitions, each a weighted target list
    transitions: Vec<Vec<Vec<(u8, f64)>>>,
    e: f64,
}

fn raw_ctmdp(rng: &mut XorShift64, max_states: usize) -> RawCtmdp {
    let n = 2 + rng.random_range(max_states - 1);
    let transitions = (0..n)
        .map(|_| {
            let num_transitions = 1 + rng.random_range(3);
            (0..num_transitions)
                .map(|_| {
                    let num_targets = 1 + rng.random_range(3);
                    (0..num_targets)
                        .map(|_| (rng.random_range(n) as u8, uniform(rng, 0.05, 1.0)))
                        .collect()
                })
                .collect()
        })
        .collect();
    let e = uniform(rng, 0.5, 6.0);
    RawCtmdp { n, transitions, e }
}

fn build(raw: &RawCtmdp) -> Ctmdp {
    let mut b = CtmdpBuilder::new(raw.n, 0);
    for (s, trans) in raw.transitions.iter().enumerate() {
        for (i, targets) in trans.iter().enumerate() {
            let total: f64 = targets.iter().map(|&(_, w)| w).sum();
            let pairs: Vec<(u32, f64)> = targets
                .iter()
                .map(|&(t, w)| (u32::from(t), raw.e * w / total))
                .collect();
            b.transition(s as u32, &format!("a{i}"), &pairs);
        }
    }
    b.build()
}

fn goal_from_mask(n: usize, mask: u8) -> Vec<bool> {
    (0..n).map(|s| mask & (1 << (s % 8)) != 0).collect()
}

fn nonzero_mask(rng: &mut XorShift64) -> u8 {
    1 + rng.random_range(254) as u8
}

/// The generated CTMDPs are uniform.
#[test]
fn generator_is_uniform() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x6E1F + case);
        let raw = raw_ctmdp(&mut rng, 6);
        let m = build(&raw);
        let e = m.uniform_rate().expect("uniform by construction");
        assert!((e - raw.e).abs() < 1e-9 * raw.e);
    }
}

/// Values are probabilities, monotone in t, and max dominates min.
#[test]
fn value_sanity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5A17 + case);
        let raw = raw_ctmdp(&mut rng, 6);
        let mask = nonzero_mask(&mut rng);
        let t = uniform(&mut rng, 0.05, 5.0);
        let m = build(&raw);
        let goal = goal_from_mask(m.num_states(), mask);
        let opts = ReachOptions::default().with_epsilon(1e-9);
        let hi = timed_reachability(&m, &goal, t, &opts).unwrap();
        let hi2 = timed_reachability(&m, &goal, 2.0 * t, &opts).unwrap();
        let lo =
            timed_reachability(&m, &goal, t, &opts.with_objective(Objective::Minimize)).unwrap();
        for (s, &g) in goal.iter().enumerate() {
            assert!((0.0..=1.0).contains(&hi.values[s]));
            assert!(hi.values[s] >= lo.values[s] - 1e-9);
            assert!(hi2.values[s] >= hi.values[s] - 1e-9);
            if g {
                assert_eq!(hi.values[s], 1.0);
            }
        }
    }
}

/// With a single transition per state, Algorithm 1 equals the CTMC oracle.
#[test]
fn singleton_equals_ctmc() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x51E7 + case);
        let raw = raw_ctmdp(&mut rng, 6);
        let mask = nonzero_mask(&mut rng);
        let t = uniform(&mut rng, 0.05, 5.0);
        // keep only the first transition of each state
        let mut det = raw.clone();
        for trans in &mut det.transitions {
            trans.truncate(1);
        }
        let m = build(&det);
        let goal = goal_from_mask(m.num_states(), mask);
        let res =
            timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(1e-11)).unwrap();
        // equivalent CTMC
        let mut triplets = Vec::new();
        for s in 0..m.num_states() {
            let tr = m.transitions_from(s as u32)[0];
            for &(tgt, rate) in m.rate_function(tr.rate_fn).targets() {
                triplets.push((s, tgt as usize, rate));
            }
        }
        let c = Ctmc::from_rates(m.num_states(), 0, triplets);
        let oracle = transient::reachability(
            &c,
            &goal,
            t,
            &TransientOptions::default().with_epsilon(1e-11),
        );
        for s in 0..m.num_states() {
            assert!(
                (res.values[s] - oracle.values[s]).abs() < 1e-7,
                "state {s}: {} vs {}",
                res.values[s],
                oracle.values[s]
            );
        }
    }
}

/// Adding an extra transition can only increase sup and decrease inf.
#[test]
fn more_choices_widen_the_envelope() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3C40 + case);
        let raw = raw_ctmdp(&mut rng, 5);
        let num_extra = 1 + rng.random_range(2);
        let extra: Vec<(u8, f64)> = (0..num_extra)
            .map(|_| (rng.random_range(5) as u8, uniform(&mut rng, 0.05, 1.0)))
            .collect();
        let mask = nonzero_mask(&mut rng);
        let t = uniform(&mut rng, 0.1, 3.0);
        let m = build(&raw);
        let goal = goal_from_mask(m.num_states(), mask);
        let opts = ReachOptions::default().with_epsilon(1e-9);
        let hi = timed_reachability(&m, &goal, t, &opts).unwrap();
        let lo =
            timed_reachability(&m, &goal, t, &opts.with_objective(Objective::Minimize)).unwrap();

        // extend state 0 with one extra transition at the uniform rate
        let mut raw2 = raw.clone();
        let targets: Vec<(u8, f64)> = extra
            .iter()
            .map(|&(tgt, w)| (tgt % raw.n as u8, w))
            .collect();
        raw2.transitions[0].push(targets);
        let m2 = build(&raw2);
        let hi2 = timed_reachability(&m2, &goal, t, &opts).unwrap();
        let lo2 =
            timed_reachability(&m2, &goal, t, &opts.with_objective(Objective::Minimize)).unwrap();
        assert!(hi2.values[0] >= hi.values[0] - 1e-9);
        assert!(lo2.values[0] <= lo.values[0] + 1e-9);
    }
}

/// No simulated scheduler beats the computed supremum (statistically).
#[test]
fn simulation_below_sup() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x51B5 + case);
        let raw = raw_ctmdp(&mut rng, 5);
        let mask = nonzero_mask(&mut rng);
        let seed = rng.random_range(1000) as u64;
        let m = build(&raw);
        let goal = goal_from_mask(m.num_states(), mask);
        let t = 1.0;
        let sup = timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(1e-9))
            .unwrap()
            .from_state(0);
        let est = estimate_reachability(
            &m,
            &goal,
            t,
            &UniformRandom,
            &SimulationOptions { runs: 2_000, seed },
        );
        assert!(est.probability <= sup + 5.0 * est.std_error + 0.02);
    }
}

/// Exact policy evaluation agrees with Monte-Carlo replay of the same
/// stationary policy, and lies inside [inf, sup].
#[test]
fn policy_evaluation_is_exact() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x90E5 + case);
        let raw = raw_ctmdp(&mut rng, 5);
        let mask = nonzero_mask(&mut rng);
        let choice_seed = rng.random_range(8) as u16;
        use unicon_ctmdp::policy::evaluate_policy;
        use unicon_ctmdp::scheduler::Stationary;
        let m = build(&raw);
        let goal = goal_from_mask(m.num_states(), mask);
        if goal[0] {
            continue;
        }
        let t = 1.0;
        let policy = Stationary::new(
            (0..m.num_states() as u32)
                .map(|s| {
                    let k = m.transitions_from(s).len().max(1) as u16;
                    (choice_seed + s as u16) % k
                })
                .collect(),
        );
        let exact = evaluate_policy(&m, &policy, &goal, t, 1e-10);
        let opts = ReachOptions::default().with_epsilon(1e-10);
        let sup = timed_reachability(&m, &goal, t, &opts)
            .unwrap()
            .from_state(0);
        let inf = timed_reachability(&m, &goal, t, &opts.with_objective(Objective::Minimize))
            .unwrap()
            .from_state(0);
        assert!(
            exact <= sup + 1e-8 && exact >= inf - 1e-8,
            "policy value {exact} outside [{inf}, {sup}]"
        );
        let est = estimate_reachability(
            &m,
            &goal,
            t,
            &policy,
            &SimulationOptions {
                runs: 3_000,
                seed: 5,
            },
        );
        assert!(
            est.is_consistent_with(exact, 5.0) || (est.probability - exact).abs() < 0.04,
            "simulation {} vs exact {exact}",
            est.probability
        );
    }
}

/// The extracted optimal scheduler reproduces the sup (statistically).
#[test]
fn extracted_scheduler_attains_sup() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xE587 + case);
        let raw = raw_ctmdp(&mut rng, 4);
        let mask = nonzero_mask(&mut rng);
        let m = build(&raw);
        let goal = goal_from_mask(m.num_states(), mask);
        if goal[0] {
            continue;
        }
        let t = 0.8;
        let res = timed_reachability(
            &m,
            &goal,
            t,
            &ReachOptions::default()
                .with_epsilon(1e-9)
                .recording_decisions(),
        )
        .unwrap();
        let sched = StepDependent::from_result(&res);
        let est = estimate_reachability(
            &m,
            &goal,
            t,
            &sched,
            &SimulationOptions {
                runs: 4_000,
                seed: 7,
            },
        );
        assert!(
            est.is_consistent_with(res.from_state(0), 5.0)
                || (est.probability - res.from_state(0)).abs() < 0.03,
            "sim {} vs sup {}",
            est.probability,
            res.from_state(0)
        );
    }
}
