//! Differential tests of the fused value-iteration kernel.
//!
//! The fused kernel is a layout optimization, not a semantics change:
//! for every model, bound, objective, and thread count it must produce
//! values **and decisions** bitwise identical to the retained reference
//! kernel. These tests pin that contract on 40 randomly generated
//! uniform CTMDPs (XorShift64-seeded, so every run sees the same
//! models) plus the structural edge cases the fused layout special-cases
//! (empty transition rows, all-goal models, single-action models, t=0).

use unicon_ctmdp::par::timed_reachability_par;
use unicon_ctmdp::reachability::{timed_reachability, Kernel, Objective, ReachOptions};
use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

/// Builds a random uniform CTMDP: every rate function distributes
/// `UNITS * 0.5` of exit rate over up to four distinct targets, so all
/// exit rates are exactly equal (integer halves) by construction.
fn random_uniform_ctmdp(n: usize, seed: u64) -> Ctmdp {
    const UNITS: u64 = 8;
    let mut rng = XorShift64::seed_from_u64(seed);
    let mut b = CtmdpBuilder::new(n, 0);
    for s in 0..n as u32 {
        let choices = 1 + rng.random_range(3);
        for c in 0..choices {
            let k = 1 + rng.random_range(4.min(n));
            let mut targets = Vec::with_capacity(k);
            while targets.len() < k {
                let t = rng.random_range(n) as u32;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            let mut units = vec![1u64; k];
            for _ in 0..UNITS - k as u64 {
                units[rng.random_range(k)] += 1;
            }
            let rates: Vec<(u32, f64)> = targets
                .iter()
                .zip(&units)
                .map(|(&t, &u)| (t, u as f64 * 0.5))
                .collect();
            b.transition(s, &format!("a{c}"), &rates);
        }
    }
    b.build()
}

fn random_goal(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = XorShift64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut goal: Vec<bool> = (0..n).map(|_| rng.random_range(5) == 0).collect();
    goal[n - 1] = true; // never empty
    goal
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Runs both kernels over the same query (sequential engine) and
/// asserts bitwise parity at the value *and* decision level, then
/// repeats the fused run through the parallel engine at 1, 2, and 8
/// threads against the same reference result.
fn assert_kernel_parity(m: &Ctmdp, goal: &[bool], t: f64, objective: Objective, label: &str) {
    let base = ReachOptions::default()
        .with_epsilon(1e-7)
        .with_objective(objective)
        .recording_decisions();
    let reference = timed_reachability(m, goal, t, &base.with_kernel(Kernel::Reference)).unwrap();
    let fused = timed_reachability(m, goal, t, &base.with_kernel(Kernel::Fused)).unwrap();
    assert_eq!(bits(&fused.values), bits(&reference.values), "{label}");
    assert_eq!(fused.decisions, reference.decisions, "{label}");
    assert_eq!(fused.iterations, reference.iterations, "{label}");
    for threads in [1usize, 2, 8] {
        let par =
            timed_reachability_par(m, goal, t, &base.with_kernel(Kernel::Fused), threads).unwrap();
        assert_eq!(
            bits(&par.values),
            bits(&reference.values),
            "{label} threads={threads}"
        );
        assert_eq!(
            par.decisions, reference.decisions,
            "{label} threads={threads}"
        );
    }
}

#[test]
fn fused_matches_reference_on_40_random_models() {
    for seed in 0..40u64 {
        let n = 8 + (seed as usize * 7) % 41; // sizes spread over 8..=48
        let m = random_uniform_ctmdp(n, seed);
        let goal = random_goal(n, seed);
        let t = 0.5 + (seed % 5) as f64 * 0.7;
        let objective = if seed % 2 == 0 {
            Objective::Maximize
        } else {
            Objective::Minimize
        };
        assert_kernel_parity(&m, &goal, t, objective, &format!("seed={seed} n={n}"));
    }
}

#[test]
fn fused_matches_reference_with_empty_transition_rows() {
    // States 2 and 5 are absorbing (no outgoing transitions at all) —
    // the fused layout encodes them as empty groups, the reference
    // kernel as empty `transitions_from` slices; both must agree.
    let n = 7;
    let mut b = CtmdpBuilder::new(n, 0);
    for s in [0u32, 1, 3, 4, 6] {
        b.transition(s, "a", &[((s + 1) % n as u32, 1.5), (0, 0.5)]);
        b.transition(s, "b", &[(2, 2.0)]);
    }
    let m = b.build();
    assert!(m.has_absorbing_states());
    let goal = [false, true, false, false, false, false, true];
    for objective in [Objective::Maximize, Objective::Minimize] {
        assert_kernel_parity(&m, &goal, 1.2, objective, "empty-rows");
    }
}

#[test]
fn fused_matches_reference_when_every_state_is_goal() {
    // All-goal is the fused layout's fast path: every group is Fixed and
    // the whole sweep collapses into element-wise runs.
    let n = 12;
    let m = random_uniform_ctmdp(n, 99);
    let goal = vec![true; n];
    for objective in [Objective::Maximize, Objective::Minimize] {
        assert_kernel_parity(&m, &goal, 2.0, objective, "all-goal");
    }
}

#[test]
fn fused_matches_reference_on_single_action_models() {
    // One action per state: max and min coincide and every group is a
    // Single class — no best-of loop at all.
    let n = 10;
    let mut b = CtmdpBuilder::new(n, 0);
    for s in 0..n as u32 {
        b.transition(
            s,
            "only",
            &[((s + 1) % n as u32, 3.0), ((s + 2) % n as u32, 1.0)],
        );
    }
    let m = b.build();
    let goal = random_goal(n, 4242);
    for objective in [Objective::Maximize, Objective::Minimize] {
        assert_kernel_parity(&m, &goal, 1.0, objective, "single-action");
    }
}

#[test]
fn fused_matches_reference_at_time_zero() {
    // t = 0 short-circuits to the goal indicator before any sweep runs;
    // both kernels must still agree bit-for-bit (including decisions).
    let n = 15;
    let m = random_uniform_ctmdp(n, 7);
    let goal = random_goal(n, 7);
    for objective in [Objective::Maximize, Objective::Minimize] {
        assert_kernel_parity(&m, &goal, 0.0, objective, "t=0");
    }
}
