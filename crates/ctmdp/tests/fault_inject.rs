//! Deterministic fault injection against the guarded engine.
//!
//! Compiled only under `--features fault-inject`. Every fault is planned
//! by a seeded [`FaultPlan`], so each scenario replays identically:
//!
//! * an injected NaN must surface as a [`GuardError::Health`] naming the
//!   planned step and state — never a silent wrong answer;
//! * an injected worker panic under [`DegradePolicy::Sequential`] must
//!   degrade the run to one thread and still produce values **bitwise
//!   identical** to a clean run, recording a Degradation event;
//! * the same panic under [`DegradePolicy::Fail`] must be the typed
//!   [`GuardError::WorkerPanicked`];
//! * a truncated checkpoint must be detected via the checksum trailer as
//!   [`GuardError::CheckpointCorrupt`] — never undefined behaviour.
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;

use unicon_ctmdp::guard::{
    CheckpointConfig, DegradePolicy, FaultPlan, GuardError, GuardEvent, GuardOptions, HealthKind,
    RunBudget,
};
use unicon_ctmdp::par::ReachBatch;
use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

/// Same generator as the differential suite: exact half-integer rates,
/// uniform by construction.
fn random_uniform_ctmdp(n: usize, seed: u64) -> Ctmdp {
    const UNITS: u64 = 8;
    let mut rng = XorShift64::seed_from_u64(seed);
    let mut b = CtmdpBuilder::new(n, 0);
    for s in 0..n as u32 {
        let choices = 1 + rng.random_range(3);
        for c in 0..choices {
            let k = 1 + rng.random_range(4.min(n));
            let mut targets = Vec::with_capacity(k);
            while targets.len() < k {
                let t = rng.random_range(n) as u32;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            let mut units = vec![1u64; k];
            for _ in 0..UNITS - k as u64 {
                units[rng.random_range(k)] += 1;
            }
            let rates: Vec<(u32, f64)> = targets
                .iter()
                .zip(&units)
                .map(|(&t, &u)| (t, u as f64 * 0.5))
                .collect();
            b.transition(s, &format!("a{c}"), &rates);
        }
    }
    b.build()
}

fn random_goal(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = XorShift64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut goal: Vec<bool> = (0..n).map(|_| rng.random_range(5) == 0).collect();
    goal[n - 1] = true;
    goal
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn temp_ck(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("unicon_fault_{}_{name}.ck", std::process::id()))
}

const N: usize = 40;
const SEED: u64 = 7;

fn batch<'a>(m: &'a Ctmdp, goal: &[bool], threads: usize) -> ReachBatch<'a> {
    ReachBatch::new(m, goal)
        .with_epsilon(1e-8)
        .with_threads(threads)
        .query(1.5)
}

/// The iteration count of the test query, for planning faults in range.
fn steps(m: &Ctmdp, goal: &[bool]) -> usize {
    batch(m, goal, 1).run().unwrap().results[0].iterations
}

#[test]
fn injected_nan_is_a_typed_health_error_naming_step_and_state() {
    let m = random_uniform_ctmdp(N, SEED);
    let goal = random_goal(N, SEED);
    let k = steps(&m, &goal);
    for fault_seed in [1, 2, 3] {
        let plan = FaultPlan::nan(fault_seed, k, N);
        let (planned_step, planned_state) = plan.nan_at.unwrap();
        for threads in [1, 4] {
            let guard = GuardOptions::default().with_fault_plan(plan);
            let err = batch(&m, &goal, threads).run_guarded(&guard).unwrap_err();
            let GuardError::Health(health) = err else {
                panic!("expected a health error, got {err}");
            };
            assert_eq!(health.step, planned_step, "seed {fault_seed}");
            assert_eq!(health.state, planned_state, "seed {fault_seed}");
            assert_eq!(health.kind, HealthKind::NotANumber);
            // the message carries the location for log forensics
            let msg = health.to_string();
            assert!(msg.contains(&format!("step {planned_step}")), "{msg}");
            assert!(msg.contains(&format!("state {planned_state}")), "{msg}");
        }
    }
}

#[test]
fn worker_panic_degrades_to_sequential_with_bitwise_correct_values() {
    let m = random_uniform_ctmdp(N, SEED);
    let goal = random_goal(N, SEED);
    let k = steps(&m, &goal);
    let clean = batch(&m, &goal, 4).run().unwrap();
    for fault_seed in [1, 2, 3] {
        let plan = FaultPlan::worker_panic(fault_seed, k, 4);
        let (planned_step, planned_worker) = plan.panic_worker_at.unwrap();
        let guard = GuardOptions::default()
            .with_fault_plan(plan)
            .with_degrade_policy(DegradePolicy::Sequential);
        let run = batch(&m, &goal, 4).run_guarded(&guard).unwrap();
        assert!(run.is_complete(), "degraded run still completes");
        // quarantine + sequential replay keeps the determinism contract
        assert_eq!(
            bits(&run.results[0].values),
            bits(&clean.results[0].values),
            "seed {fault_seed}"
        );
        let degradations: Vec<_> = run
            .events
            .iter()
            .filter(|e| matches!(e, GuardEvent::Degradation { .. }))
            .collect();
        assert_eq!(degradations.len(), 1);
        let GuardEvent::Degradation {
            step,
            worker,
            from_threads,
            to_threads,
            ..
        } = degradations[0]
        else {
            unreachable!()
        };
        assert_eq!(*step, planned_step);
        assert_eq!(*worker, planned_worker);
        assert_eq!(*from_threads, 4);
        assert_eq!(*to_threads, 1);
    }
}

#[test]
fn degradation_emits_exactly_one_structured_guard_record() {
    let m = random_uniform_ctmdp(N, SEED);
    let goal = random_goal(N, SEED);
    let k = steps(&m, &goal);
    let plan = FaultPlan::worker_panic(2, k, 4);
    let (planned_step, _) = plan.panic_worker_at.unwrap();
    let guard = GuardOptions::default()
        .with_fault_plan(plan)
        .with_degrade_policy(DegradePolicy::Sequential);
    let (run, events) = unicon_obs::collect(|| batch(&m, &goal, 4).run_guarded(&guard).unwrap());
    assert!(run.is_complete());
    let degradations: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            unicon_obs::Event::Guard {
                kind: "degradation",
                query,
                step,
                detail,
            } => Some((*query, *step, detail.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(
        degradations.len(),
        1,
        "exactly one degradation record, got {degradations:?}"
    );
    let (query, step, detail) = &degradations[0];
    assert_eq!(*query, 0);
    assert_eq!(*step, planned_step);
    assert!(
        detail.contains("4 -> 1"),
        "detail names the thread drop: {detail}"
    );
}

#[test]
fn worker_panic_under_fail_policy_is_a_typed_error() {
    let m = random_uniform_ctmdp(N, SEED);
    let goal = random_goal(N, SEED);
    let k = steps(&m, &goal);
    let plan = FaultPlan::worker_panic(5, k, 4);
    let (planned_step, planned_worker) = plan.panic_worker_at.unwrap();
    let guard = GuardOptions::default()
        .with_fault_plan(plan)
        .with_degrade_policy(DegradePolicy::Fail);
    let err = batch(&m, &goal, 4).run_guarded(&guard).unwrap_err();
    let GuardError::WorkerPanicked {
        query,
        step,
        worker,
    } = err
    else {
        panic!("expected WorkerPanicked, got {err}");
    };
    assert_eq!(query, 0);
    assert_eq!(step, planned_step);
    assert_eq!(worker, planned_worker);
}

#[test]
fn truncated_checkpoints_are_detected_on_resume() {
    let m = random_uniform_ctmdp(N, SEED);
    let goal = random_goal(N, SEED);
    let path = temp_ck("truncate_plan");
    for chopped in [1, 64, 4096] {
        let guard = GuardOptions::default()
            .with_checkpoint(CheckpointConfig::new(&path, 2))
            .with_budget(RunBudget::default().with_max_iterations(5))
            .with_fault_plan(FaultPlan::truncate(chopped));
        let run = batch(&m, &goal, 1).run_guarded(&guard).unwrap();
        assert!(!run.is_complete());
        let err = batch(&m, &goal, 1)
            .resume(&path, &GuardOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, GuardError::CheckpointCorrupt { .. }),
            "chopped {chopped}: {err}"
        );
        // the reason names the failed validation, not a panic backtrace
        assert!(err.to_string().contains("corrupt"), "{err}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_plans_are_deterministic_given_the_seed() {
    assert_eq!(FaultPlan::nan(9, 100, 50), FaultPlan::nan(9, 100, 50));
    assert_ne!(FaultPlan::nan(9, 100, 50), FaultPlan::nan(10, 100, 50));
    let plan = FaultPlan::worker_panic(3, 20, 4);
    let (step, worker) = plan.panic_worker_at.unwrap();
    assert!((1..=20).contains(&step));
    assert!(worker < 4);
}
