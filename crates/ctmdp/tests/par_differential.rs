//! Differential tests of the parallel and batched reachability engines.
//!
//! The determinism contract says parallel results are **bitwise
//! identical** to the sequential engine's for every thread count, and a
//! batch run is bitwise identical to its queries run one by one. These
//! tests pin both claims on randomly generated uniform CTMDPs
//! (XorShift64-seeded, so every run sees the same models).

use unicon_ctmdp::par::{timed_reachability_par, ReachBatch};
use unicon_ctmdp::reachability::{timed_reachability, Objective, ReachOptions};
use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

/// Builds a random uniform CTMDP: every rate function distributes
/// `UNITS * 0.5` of exit rate over up to four distinct targets, so all
/// exit rates are exactly equal (integer halves) by construction.
fn random_uniform_ctmdp(n: usize, seed: u64) -> Ctmdp {
    const UNITS: u64 = 8;
    let mut rng = XorShift64::seed_from_u64(seed);
    let mut b = CtmdpBuilder::new(n, 0);
    for s in 0..n as u32 {
        let choices = 1 + rng.random_range(3);
        for c in 0..choices {
            let k = 1 + rng.random_range(4.min(n));
            let mut targets = Vec::with_capacity(k);
            while targets.len() < k {
                let t = rng.random_range(n) as u32;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            // one unit each, then scatter the rest — totals stay exact
            let mut units = vec![1u64; k];
            for _ in 0..UNITS - k as u64 {
                units[rng.random_range(k)] += 1;
            }
            let rates: Vec<(u32, f64)> = targets
                .iter()
                .zip(&units)
                .map(|(&t, &u)| (t, u as f64 * 0.5))
                .collect();
            b.transition(s, &format!("a{c}"), &rates);
        }
    }
    b.build()
}

fn random_goal(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = XorShift64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut goal: Vec<bool> = (0..n).map(|_| rng.random_range(5) == 0).collect();
    goal[n - 1] = true; // never empty
    goal
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn generated_models_are_uniform() {
    for seed in 0..5 {
        let m = random_uniform_ctmdp(20, seed);
        assert_eq!(m.uniform_rate().unwrap(), 4.0, "seed {seed}");
    }
}

#[test]
fn parallel_is_bitwise_equal_for_1_2_and_8_threads() {
    for (n, seed, t) in [(7, 1, 0.7), (33, 2, 3.0), (64, 3, 1.5)] {
        let m = random_uniform_ctmdp(n, seed);
        let goal = random_goal(n, seed);
        for objective in [Objective::Maximize, Objective::Minimize] {
            let opts = ReachOptions::default()
                .with_epsilon(1e-9)
                .with_objective(objective);
            let seq = timed_reachability(&m, &goal, t, &opts).unwrap();
            for threads in [1, 2, 8] {
                let par = timed_reachability_par(&m, &goal, t, &opts, threads).unwrap();
                assert_eq!(
                    bits(&par.values),
                    bits(&seq.values),
                    "n={n} seed={seed} t={t} {objective:?} threads={threads}"
                );
                assert_eq!(par.iterations, seq.iterations);
                assert_eq!(par.uniform_rate.to_bits(), seq.uniform_rate.to_bits());
            }
        }
    }
}

#[test]
fn parallel_decision_recording_is_bitwise_equal() {
    let n = 40;
    let m = random_uniform_ctmdp(n, 11);
    let goal = random_goal(n, 11);
    let opts = ReachOptions::default()
        .with_epsilon(1e-8)
        .recording_decisions();
    let seq = timed_reachability(&m, &goal, 2.0, &opts).unwrap();
    assert!(!seq.decisions.is_empty());
    for threads in [2, 8] {
        let par = timed_reachability_par(&m, &goal, 2.0, &opts, threads).unwrap();
        assert_eq!(par.decisions, seq.decisions, "threads {threads}");
        assert_eq!(bits(&par.values), bits(&seq.values));
    }
}

#[test]
fn batch_is_bitwise_equal_to_repeated_single_queries() {
    let n = 25;
    let m = random_uniform_ctmdp(n, 7);
    let goal = random_goal(n, 7);
    let eps = 1e-9;
    let bounds = [0.3, 1.0, 1.0, 4.0];
    for threads in [1, 2, 8] {
        let mut batch = ReachBatch::new(&m, &goal)
            .with_epsilon(eps)
            .with_threads(threads);
        for &t in &bounds {
            batch = batch.query(t);
        }
        let out = batch.run().unwrap();
        assert_eq!(out.results.len(), bounds.len());
        for (r, &t) in out.results.iter().zip(&bounds) {
            let single =
                timed_reachability(&m, &goal, t, &ReachOptions::default().with_epsilon(eps))
                    .unwrap();
            assert_eq!(
                bits(&r.values),
                bits(&single.values),
                "t={t} threads={threads}"
            );
            assert_eq!(r.iterations, single.iterations);
        }
        // the repeated bound re-uses its weight vector
        assert_eq!(out.stats.cache_misses, 3);
        assert_eq!(out.stats.cache_hits, 1);
    }
}

#[test]
fn batch_checksums_are_identical_across_thread_counts() {
    let n = 50;
    let m = random_uniform_ctmdp(n, 23);
    let goal = random_goal(n, 23);
    let run = |threads| {
        ReachBatch::new(&m, &goal)
            .with_epsilon(1e-9)
            .with_threads(threads)
            .query(0.5)
            .query(2.0)
            .run()
            .unwrap()
    };
    let reference = run(1);
    for threads in [2, 8] {
        let out = run(threads);
        for (a, b) in reference.stats.queries.iter().zip(&out.stats.queries) {
            assert_eq!(
                a.checksum.to_bits(),
                b.checksum.to_bits(),
                "t={} threads={threads}",
                a.t
            );
        }
    }
}

/// PR-9 regression: iterate scratch buffers are compiled once per batch
/// and reused across queries. `BatchStats::buffer_allocs` is the probe —
/// a 3-query batch must allocate exactly as much as a 1-query batch
/// (the first query warms the buffers, later ones add zero), and the
/// values computed in reused buffers must stay bitwise identical to
/// fresh single-query runs.
#[test]
fn batch_buffers_are_allocated_once_and_reused_bitwise() {
    let n = 30;
    let m = random_uniform_ctmdp(n, 13);
    let goal = random_goal(n, 13);
    let bounds = [0.8, 1.6, 2.4];
    for threads in [1, 4] {
        let one = ReachBatch::new(&m, &goal)
            .with_threads(threads)
            .query(bounds[0])
            .run()
            .unwrap();
        let mut batch = ReachBatch::new(&m, &goal).with_threads(threads);
        for &t in &bounds {
            batch = batch.query(t);
        }
        let three = batch.run().unwrap();
        assert!(one.stats.buffer_allocs > 0, "threads={threads}");
        assert_eq!(
            three.stats.buffer_allocs, one.stats.buffer_allocs,
            "3-query batch must not allocate beyond the first query's \
             warm-up (threads={threads})"
        );
        for (r, &t) in three.results.iter().zip(&bounds) {
            let single = timed_reachability(&m, &goal, t, &ReachOptions::default()).unwrap();
            assert_eq!(
                bits(&r.values),
                bits(&single.values),
                "reused buffer diverged at t={t} threads={threads}"
            );
        }
    }
}
