//! Kill/resume determinism of the guarded engine on random models.
//!
//! The guarded layer promises that a run interrupted at *any* step and
//! resumed from its checkpoint produces **bitwise identical** values to
//! an uninterrupted run, at every thread count. These tests chop runs at
//! randomized budgets on XorShift64-seeded uniform CTMDPs and compare
//! raw `f64` bits.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use unicon_ctmdp::guard::{CheckpointConfig, GuardError, GuardOptions, RunBudget, StopReason};
use unicon_ctmdp::par::ReachBatch;
use unicon_ctmdp::reachability::Objective;
use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

/// Builds a random uniform CTMDP: every rate function distributes
/// `UNITS * 0.5` of exit rate over up to four distinct targets, so all
/// exit rates are exactly equal (integer halves) by construction.
fn random_uniform_ctmdp(n: usize, seed: u64) -> Ctmdp {
    const UNITS: u64 = 8;
    let mut rng = XorShift64::seed_from_u64(seed);
    let mut b = CtmdpBuilder::new(n, 0);
    for s in 0..n as u32 {
        let choices = 1 + rng.random_range(3);
        for c in 0..choices {
            let k = 1 + rng.random_range(4.min(n));
            let mut targets = Vec::with_capacity(k);
            while targets.len() < k {
                let t = rng.random_range(n) as u32;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            let mut units = vec![1u64; k];
            for _ in 0..UNITS - k as u64 {
                units[rng.random_range(k)] += 1;
            }
            let rates: Vec<(u32, f64)> = targets
                .iter()
                .zip(&units)
                .map(|(&t, &u)| (t, u as f64 * 0.5))
                .collect();
            b.transition(s, &format!("a{c}"), &rates);
        }
    }
    b.build()
}

fn random_goal(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = XorShift64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut goal: Vec<bool> = (0..n).map(|_| rng.random_range(5) == 0).collect();
    goal[n - 1] = true; // never empty
    goal
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn temp_ck(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("unicon_ckres_{}_{name}.ck", std::process::id()))
}

/// Interrupt at a budget, resume repeatedly until complete, and demand
/// bitwise equality with the uninterrupted guarded and plain runs.
fn chop_and_resume(threads: usize, stop_after: usize, seed: u64) {
    let n = 60;
    let m = random_uniform_ctmdp(n, seed);
    let goal = random_goal(n, seed);
    let batch = ReachBatch::new(&m, &goal)
        .with_epsilon(1e-8)
        .with_threads(threads)
        .query(0.75)
        .query_with(2.0, Objective::Minimize)
        .query(2.0);
    let plain = batch.run().expect("random models are uniform");

    let path = temp_ck(&format!("t{threads}_s{stop_after}_{seed}"));
    let ck = CheckpointConfig::new(&path, 3);
    let stopper = GuardOptions::default()
        .with_checkpoint(ck.clone())
        .with_budget(RunBudget::default().with_max_iterations(stop_after));
    let first = batch.run_guarded(&stopper).unwrap();
    assert_eq!(
        first.stopped.as_ref().map(|(r, _)| *r),
        Some(StopReason::MaxIterations),
        "stop_after {stop_after} must interrupt the run"
    );

    // resume in same-size hops until the batch completes
    let mut run = batch
        .resume(&path, &stopper)
        .expect("checkpoint written at the stop");
    let mut hops = 0;
    while !run.is_complete() {
        hops += 1;
        assert!(hops < 10_000, "resume loop does not converge");
        run = batch.resume(&path, &stopper).unwrap();
    }
    assert_eq!(run.results.len(), plain.results.len());
    for (i, (g, p)) in run.results.iter().zip(&plain.results).enumerate() {
        assert_eq!(
            bits(&g.values),
            bits(&p.values),
            "threads {threads} stop_after {stop_after} query {i}"
        );
        assert_eq!(g.iterations, p.iterations);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resumed_runs_are_bitwise_identical_single_threaded() {
    for (stop_after, seed) in [(1, 11), (5, 12), (17, 13)] {
        chop_and_resume(1, stop_after, seed);
    }
}

#[test]
fn resumed_runs_are_bitwise_identical_four_threads() {
    for (stop_after, seed) in [(1, 21), (5, 22), (17, 23)] {
        chop_and_resume(4, stop_after, seed);
    }
}

#[test]
fn resume_crosses_thread_counts_bitwise() {
    // interrupt at 4 threads, finish at 1 thread — the checkpoint stores
    // raw iterate bits, so even mixed-thread histories stay identical
    let n = 40;
    let m = random_uniform_ctmdp(n, 31);
    let goal = random_goal(n, 31);
    let path = temp_ck("cross_threads");
    let par = ReachBatch::new(&m, &goal)
        .with_epsilon(1e-8)
        .with_threads(4)
        .query(1.5);
    let seq = ReachBatch::new(&m, &goal)
        .with_epsilon(1e-8)
        .with_threads(1)
        .query(1.5);
    let reference = seq.run().unwrap();

    let stopper = GuardOptions::default()
        .with_checkpoint(CheckpointConfig::new(&path, 2))
        .with_budget(RunBudget::default().with_max_iterations(4));
    assert!(!par.run_guarded(&stopper).unwrap().is_complete());
    let finished = seq.resume(&path, &GuardOptions::default()).unwrap();
    assert!(finished.is_complete());
    assert_eq!(
        bits(&finished.results[0].values),
        bits(&reference.results[0].values)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancel_flag_stop_is_resumable_too() {
    let n = 40;
    let m = random_uniform_ctmdp(n, 41);
    let goal = random_goal(n, 41);
    let path = temp_ck("cancelled");
    let batch = ReachBatch::new(&m, &goal).with_epsilon(1e-8).query(1.0);
    let reference = batch.run().unwrap();

    let flag = Arc::new(AtomicBool::new(true));
    let guard = GuardOptions::default()
        .with_checkpoint(CheckpointConfig::new(&path, 2))
        .with_budget(RunBudget::default().with_cancel_flag(flag));
    let run = batch.run_guarded(&guard).unwrap();
    assert_eq!(run.stopped.unwrap().0, StopReason::Cancelled);

    let finished = batch.resume(&path, &GuardOptions::default()).unwrap();
    assert!(finished.is_complete());
    assert_eq!(
        bits(&finished.results[0].values),
        bits(&reference.results[0].values)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_against_a_different_model_is_rejected() {
    let m = random_uniform_ctmdp(40, 51);
    let goal = random_goal(40, 51);
    let path = temp_ck("wrong_model");
    let batch = ReachBatch::new(&m, &goal).with_epsilon(1e-8).query(1.0);
    let guard = GuardOptions::default()
        .with_checkpoint(CheckpointConfig::new(&path, 1))
        .with_budget(RunBudget::default().with_max_iterations(2));
    batch.run_guarded(&guard).unwrap();

    let other = random_uniform_ctmdp(48, 52);
    let other_goal = random_goal(48, 52);
    let err = ReachBatch::new(&other, &other_goal)
        .with_epsilon(1e-8)
        .query(1.0)
        .resume(&path, &GuardOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, GuardError::CheckpointMismatch { .. }),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}
