//! Determinism source lint: scans this workspace's own Rust sources for
//! constructs that would silently undermine replayability.
//!
//! The certificate checker ([`crate::certify`]) leans on one assumption:
//! re-running a construction operator on the same inputs reproduces the
//! same output, bit for bit. That assumption is easy to break from the
//! source side — iterate a `HashMap` while accumulating floats and the
//! result depends on the allocator's whim; read the wall clock inside an
//! algorithm and replays diverge. This lint makes the assumption
//! enforceable in CI.
//!
//! # Rules
//!
//! | rule | scope | flags |
//! |------|-------|-------|
//! | `hash-iter` | hot paths | iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain(…)`, `.into_iter()`, `for … in map`) — hash order is randomized per process |
//! | `clock` | hot paths | `Instant::now` / `SystemTime::now` — wall-clock reads inside numeric kernels |
//! | `float-sum` | hot paths | `.sum()` reductions — additive float folds must go through `NeumaierSum` |
//! | `rng` | everywhere | entropy-seeded randomness (`thread_rng`, `rand::random`, `from_entropy`) — only the seeded in-tree generator is allowed |
//!
//! *Hot paths* are the files where numeric results are produced (value
//! iteration, partition refinement, sparse kernels, transient analysis);
//! elsewhere a `HashMap` loop or a timer read is ordinary engineering.
//! The `rng` rule has no such safe harbor.
//!
//! # Waivers
//!
//! A finding is suppressed by a comment on the same line or on the
//! directly preceding comment block:
//!
//! ```text
//! // det-lint: allow(hash-iter): drained into a Vec and sorted below.
//! for (k, v) in map { … }
//! ```
//!
//! Waivers name the rule they silence, so an allow for `clock` does not
//! blanket-suppress a `hash-iter` finding on the same line. Code after
//! the file's first `#[cfg(test)]` attribute is not scanned — tests may
//! time things and stress hash order freely.

use std::fs;
use std::path::{Path, PathBuf};

/// Names of every lint rule, in report order.
pub const RULES: [&str; 4] = ["hash-iter", "clock", "float-sum", "rng"];

/// Files (workspace-relative, `/`-separated; trailing `/` means the whole
/// directory) whose numeric output must be reproducible bit for bit.
const HOT_PATHS: [&str; 10] = [
    "crates/ctmdp/src/reachability.rs",
    "crates/ctmdp/src/par.rs",
    "crates/ctmdp/src/guard.rs",
    "crates/numeric/src/sum.rs",
    "crates/numeric/src/foxglynn.rs",
    "crates/numeric/src/special.rs",
    "crates/sparse/src/",
    "crates/ctmc/src/transient.rs",
    "crates/ctmc/src/steady.rs",
    "crates/imc/src/bisim/",
];

/// Whether a workspace-relative path is on the reproducibility-critical
/// hot list.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATHS.iter().any(|h| {
        if h.ends_with('/') {
            rel.starts_with(h)
        } else {
            rel == *h
        }
    })
}

/// One determinism hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// What was found and why it matters.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// The patterns are assembled from halves so this file never matches its
// own pattern table when the workspace is scanned.
fn clock_patterns() -> [String; 2] {
    [
        concat!("Instant::", "now").to_owned(),
        concat!("SystemTime::", "now").to_owned(),
    ]
}

fn rng_patterns() -> [String; 4] {
    [
        concat!("thread_", "rng").to_owned(),
        concat!("rand::", "random").to_owned(),
        concat!("from_", "entropy").to_owned(),
        concat!("get", "random::").to_owned(),
    ]
}

fn float_sum_patterns() -> [String; 2] {
    [
        concat!(".su", "m()").to_owned(),
        concat!(".su", "m::<").to_owned(),
    ]
}

fn hash_iter_methods() -> [String; 5] {
    [
        concat!(".it", "er()").to_owned(),
        concat!(".ke", "ys()").to_owned(),
        concat!(".val", "ues()").to_owned(),
        concat!(".dr", "ain(").to_owned(),
        concat!(".into_it", "er()").to_owned(),
    ]
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The trailing identifier of `s`, if `s` ends with one.
fn trailing_ident(s: &str) -> Option<&str> {
    let end = s.trim_end();
    let start = end
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()?
        .0;
    let ident = &end[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Identifiers bound to `HashMap`/`HashSet` values in `lines` (before the
/// test cutoff): `let [mut] name: Hash…`, `let [mut] name = Hash…::`, and
/// struct fields `name: Hash…`.
fn hash_bound_names(lines: &[&str]) -> Vec<String> {
    let map_marker = concat!("Hash", "Map");
    let set_marker = concat!("Hash", "Set");
    let mut names = Vec::new();
    for line in lines {
        if !line.contains(map_marker) && !line.contains(set_marker) {
            continue;
        }
        let name = if let Some(pos) = line.find("let ") {
            let rest = line[pos + 4..].trim_start().trim_start_matches("mut ");
            rest.split(|c: char| !is_ident_char(c)).next()
        } else {
            // Struct field or closure parameter: `name: HashMap<…>`.
            let trimmed = line.trim_start().trim_start_matches("pub ");
            match trimmed.split_once(':') {
                Some((head, _)) if head.chars().all(is_ident_char) && !head.is_empty() => {
                    Some(head)
                }
                _ => None,
            }
        };
        if let Some(name) = name {
            if !name.is_empty() && !names.iter().any(|n| n == name) {
                names.push(name.to_owned());
            }
        }
    }
    names
}

/// Whether the finding on `lines[idx]` is waived for `rule` — by a marker
/// on the line itself or in the comment block directly above it.
fn is_waived(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("det-lint: allow({rule})");
    if lines[idx].contains(&marker) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") {
            if t.contains(&marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Scans one source text. `file` labels the findings; `hot` enables the
/// hot-path-only rules.
pub fn scan_source(file: &str, text: &str, hot: bool) -> Vec<Finding> {
    let all_lines: Vec<&str> = text.lines().collect();
    let cutoff_marker = concat!("#[cfg(te", "st)]");
    let cutoff = all_lines
        .iter()
        .position(|l| l.contains(cutoff_marker))
        .unwrap_or(all_lines.len());
    let lines = &all_lines[..cutoff];
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        if !is_waived(lines, line, rule) {
            findings.push(Finding {
                file: file.to_owned(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    for (i, line) in lines.iter().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        for p in rng_patterns() {
            if code.contains(&p) {
                push(
                    i,
                    "rng",
                    format!(
                        "entropy-seeded randomness (`{p}`) — use the seeded in-tree \
                         generator so runs replay"
                    ),
                );
            }
        }
        if !hot {
            continue;
        }
        for p in clock_patterns() {
            if code.contains(&p) {
                push(
                    i,
                    "clock",
                    format!(
                        "wall-clock read (`{p}`) on a hot path — results must not depend \
                         on timing"
                    ),
                );
            }
        }
        for p in float_sum_patterns() {
            if code.contains(&p) {
                push(
                    i,
                    "float-sum",
                    concat!(
                        "additive float reduction (`.su",
                        "m`) on a hot path — route it \
                         through `NeumaierSum` (or waive for integer sums)"
                    )
                    .to_owned(),
                );
            }
        }
    }

    if hot {
        let names = hash_bound_names(lines);
        if !names.is_empty() {
            for (i, line) in lines.iter().enumerate() {
                let code = line.split("//").next().unwrap_or("");
                // `for … in map` / `for … in &map` / `for … in &mut map`.
                if let Some(pos) = code.find(" in ") {
                    let subject = code[pos + 4..]
                        .trim_start()
                        .trim_start_matches('&')
                        .trim_start_matches("mut ");
                    let ident: String = subject.chars().take_while(|c| is_ident_char(*c)).collect();
                    let after = &subject[ident.len()..];
                    if names.contains(&ident)
                        && (after.is_empty() || after.starts_with(' ') || after.starts_with('{'))
                    {
                        push(
                            i,
                            "hash-iter",
                            format!(
                                "iterating hash collection `{ident}` — hash order is \
                                 randomized per process"
                            ),
                        );
                    }
                }
                for m in hash_iter_methods() {
                    let mut from = 0;
                    while let Some(off) = code[from..].find(&m) {
                        let pos = from + off;
                        from = pos + m.len();
                        // The receiver: trailing identifier before the call,
                        // or — for a continuation line starting with `.` —
                        // the previous line's trailing identifier.
                        let receiver = match trailing_ident(&code[..pos]) {
                            Some(r) => Some(r.to_owned()),
                            None if code[..pos].trim().is_empty() && i > 0 => {
                                trailing_ident(lines[i - 1].split("//").next().unwrap_or(""))
                                    .map(str::to_owned)
                            }
                            None => None,
                        };
                        if let Some(r) = receiver {
                            if names.contains(&r) {
                                push(
                                    i,
                                    "hash-iter",
                                    format!(
                                        "iterating hash collection `{r}` via `{m}` — hash \
                                         order is randomized per process"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scans the workspace rooted at `root`: every `crates/*/src` tree plus
/// the root `src/`. The walk order is sorted, so output is deterministic.
pub fn scan_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);

    let mut findings = Vec::new();
    for path in files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(scan_source(&rel, &text, is_hot_path(&rel)));
    }
    findings
}

/// Renders findings as one JSON object:
/// `{"findings":[{"file":…,"line":…,"rule":…,"message":…}],"count":N}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        push_str(&mut out, &f.file);
        out.push_str(&format!(
            ",\"line\":{},\"rule\":\"{}\",\"message\":",
            f.line, f.rule
        ));
        push_str(&mut out, &f.message);
        out.push('}');
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_fires_on_hot_paths_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(scan_source("a.rs", src, true).len(), 1);
        assert!(scan_source("a.rs", src, false).is_empty());
    }

    #[test]
    fn rng_fires_everywhere() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        let cold = scan_source("a.rs", src, false);
        assert_eq!(cold.len(), 1);
        assert_eq!(cold[0].rule, "rng");
    }

    #[test]
    fn hash_iteration_is_traced_to_the_binding() {
        let src = "\
fn f() {
    let mut m: HashMap<u32, f64> = HashMap::new();
    let v: Vec<u32> = vec![];
    for (k, _) in &m {}
    let _ = v.iter().count();
    let _ = m.keys().count();
}
";
        let findings = scan_source("a.rs", src, true);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().all(|f| f.rule == "hash-iter"));
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[1].line, 6);
    }

    #[test]
    fn continuation_line_receiver_is_resolved() {
        let src = "\
fn f() {
    let mut m: HashMap<u32, f64> = HashMap::new();
    let v: Vec<(u32, f64)> = m
        .into_iter()
        .collect();
}
";
        let findings = scan_source("a.rs", src, true);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn waiver_silences_only_the_named_rule() {
        let src = "\
fn f() {
    // det-lint: allow(hash-iter): sorted right after.
    let mut m: HashMap<u32, f64> = HashMap::new();
    for (k, _) in &m {}
}
";
        // The waiver is two lines above the loop, separated by code: it
        // must NOT apply.
        assert_eq!(scan_source("a.rs", src, true).len(), 1);
        let adjacent = "\
fn f() {
    let mut m: HashMap<u32, f64> = HashMap::new();
    // det-lint: allow(hash-iter): sorted right after.
    for (k, _) in &m {}
}
";
        assert!(scan_source("a.rs", adjacent, true).is_empty());
        let wrong_rule = "\
fn f() {
    let mut m: HashMap<u32, f64> = HashMap::new();
    // det-lint: allow(clock): wrong rule.
    for (k, _) in &m {}
}
";
        assert_eq!(scan_source("a.rs", wrong_rule, true).len(), 1);
    }

    #[test]
    fn test_modules_are_not_scanned() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { let t = Instant::now(); }
}
";
        assert!(scan_source("a.rs", src, true).is_empty());
    }

    #[test]
    fn float_sum_fires_and_comments_do_not() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum() } // .sum() in a comment\n";
        let findings = scan_source("a.rs", src, true);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "float-sum");
    }

    #[test]
    fn workspace_scan_is_clean() {
        // The real tree must have zero unwaived findings — this is the
        // same gate ci.sh enforces via `unicon det-lint`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_workspace(&root);
        assert!(
            findings.is_empty(),
            "determinism hazards in the tree:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let f = vec![Finding {
            file: "a\"b.rs".into(),
            line: 3,
            rule: "rng",
            message: "x".into(),
        }];
        let json = to_json(&f);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.ends_with("\"count\":1}"));
    }
}
