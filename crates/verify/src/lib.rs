//! Static model analysis: proves that *uniformity by construction*
//! actually held.
//!
//! The library's composition operators ([Lemmas 1–3 of the paper]) promise
//! that building models from uniform parts yields uniform results; the
//! transformation (Theorem 1) promises a strictly alternating IMC and a
//! uniform CTMDP. This crate re-checks those promises **after the fact**,
//! as a lint pass over finished models, and reports violations as
//! structured [`Diagnostic`]s instead of booleans:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | U001 | error/warning | exit rates of reachable stable states differ (Definition 4) |
//! | U002 | error | cached rate sums disagree with recomputed ones |
//! | U003 | error | negative, NaN or infinite rate |
//! | U004 | warning | no reachable stable state under the closed view (model still open) |
//! | U005 | error | strict-alternation normal form violated (Section 4.1) |
//! | U006 | warning/info | reachable deadlock/absorbing state (`S_A ≠ ∅`) |
//! | U007 | warning | unreachable states |
//! | U008 | error/info | interactive cycle (Zeno) / pre-empted Markov rates |
//! | U009 | warning | rate spread exceeds Fox–Glynn resolution at default epsilon |
//! | U010 | warning | large τ-SCC makes per-state τ-closures quadratic |
//! | U011 | error | τ-divergence trap: maximal progress livelocks the model |
//! | U012 | warning | component states excluded from every product state |
//! | U013 | info | confluent τ-branches: spurious nondeterminism in a closed model |
//! | U014 | warning | epsilon below the Fox–Glynn certifiable floor at `E·t` |
//! | U015 | error | certificate gap: construction step with no obligation on file |
//!
//! A model "lints clean" when no errors **and** no warnings fire
//! ([`Report::is_clean`]); informational findings are always allowed.
//!
//! All rate comparisons use the workspace-wide tolerance policy
//! [`rates_approx_eq`] (re-exported from `unicon-numeric`), so the lints
//! can never disagree with the model types' own uniformity checks.
//!
//! Beyond the lint passes, [`certify`] replays the obligation ledger that
//! the certified construction operators record (`unicon_imc::audit`) and
//! independently re-establishes every claim — the machine-checkable side
//! of "uniformity by construction". [`srclint`] is the companion *source*
//! lint: it scans this workspace's own code for determinism hazards
//! (hash-order iteration, wall-clock reads, naive float reductions on hot
//! paths) that would silently undermine replayability.
//!
//! # Examples
//!
//! ```
//! use unicon_imc::ImcBuilder;
//! use unicon_verify::{lint_imc, LintOptions};
//!
//! // A uniform closed model: ticks between two Markov states at rate 3,
//! // with an interactive decision in between.
//! let mut b = ImcBuilder::new(3, 0);
//! b.markov(0, 3.0, 1);
//! b.markov(1, 3.0, 2);
//! b.interactive("retry", 2, 0);
//! let report = lint_imc(&b.build(), &LintOptions::default());
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
mod diag;
mod lints;
pub mod srclint;

pub use certify::{certify, AuditOutcome, StepVerdict};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use lints::{
    lint_alternation, lint_ctmc, lint_ctmdp, lint_imc, lint_product, lint_transform_output,
    lint_truncation, LintOptions,
};
// The shared tolerance policy all rate comparisons go through.
pub use unicon_numeric::{rate_tolerance, rates_approx_eq, RATE_RTOL};
