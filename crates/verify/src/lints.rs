//! The lint passes over IMCs, CTMCs, CTMDPs and transformation output.

use unicon_ctmc::Ctmc;
use unicon_ctmdp::Ctmdp;
use unicon_imc::{Imc, StateKind, Uniformity, View};
use unicon_numeric::rates_approx_eq;
use unicon_transform::TransformOutput;

use crate::diag::{Code, Diagnostic, Report, Severity};

/// How many individual loci a lint names before aggregating.
const MAX_LISTED: usize = 8;

/// τ-strongly-connected components larger than this trip U010: every
/// member's τ-closure contains the whole component, so closure-based
/// analyses (weak/branching signatures, maximal progress) do Ω(K²) work
/// on it.
const TAU_SCC_LIMIT: usize = 16;

/// Smallest branch probability `v / E` the Fox–Glynn weights still
/// resolve at the engine's default `ε = 1e-6`: the weights are computed
/// in double precision and normalised to total ≈ 1, so per-jump
/// contributions below ~1e-12 drown in the accumulated rounding noise
/// and the truncation slack. U009 warns below this floor.
const FOXGLYNN_SPREAD_FLOOR: f64 = 1e-12;

/// Options controlling a lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// Which stability notion U001/U004/U008 quantify over. Defaults to
    /// [`View::Closed`]: the lint is a pre-flight check for the
    /// transformation, which operates on complete models under urgency.
    pub view: View,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self { view: View::Closed }
    }
}

fn fmt_states(states: &[u32]) -> String {
    if states.len() <= MAX_LISTED {
        format!("{states:?}")
    } else {
        let head: Vec<u32> = states[..MAX_LISTED].to_vec();
        format!("{head:?} and {} more", states.len() - MAX_LISTED)
    }
}

/// Searches the *reachable* interactive subgraph for a cycle, optionally
/// restricted to τ transitions (the open view's maximal-progress edges).
fn reachable_interactive_cycle(imc: &Imc, reachable: &[bool], tau_only: bool) -> Option<Vec<u32>> {
    let n = imc.num_states();
    let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
    let mut parent = vec![u32::MAX; n];
    for root in 0..n as u32 {
        if color[root as usize] != 0 || !reachable[root as usize] {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        color[root as usize] = 1;
        while let Some(&mut (s, ref mut idx)) = stack.last_mut() {
            let trans = imc.interactive_from(s);
            if *idx < trans.len() {
                let tr = trans[*idx];
                *idx += 1;
                if tau_only && !tr.action.is_tau() {
                    continue;
                }
                let t = tr.target;
                match color[t as usize] {
                    0 => {
                        color[t as usize] = 1;
                        parent[t as usize] = s;
                        stack.push((t, 0));
                    }
                    1 => {
                        let mut cycle = vec![s];
                        let mut cur = s;
                        while cur != t {
                            cur = parent[cur as usize];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[s as usize] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// All reachable τ-strongly-connected components with at least two states,
/// each sorted ascending (Kosaraju's two-pass algorithm, iterative).
/// Singleton SCCs with a τ self-loop also count as nontrivial.
fn nontrivial_tau_sccs(imc: &Imc, reachable: &[bool]) -> Vec<Vec<u32>> {
    let n = imc.num_states();
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        if !reachable[s as usize] {
            continue;
        }
        for t in imc.interactive_from(s) {
            if t.action.is_tau() && reachable[t.target as usize] {
                fwd[s as usize].push(t.target);
                rev[t.target as usize].push(s);
            }
        }
    }
    // Pass 1: forward DFS finish order.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] || !reachable[root] {
            continue;
        }
        seen[root] = true;
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        while let Some(&mut (s, ref mut idx)) = stack.last_mut() {
            if *idx < fwd[s as usize].len() {
                let t = fwd[s as usize][*idx];
                *idx += 1;
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push((t, 0));
                }
            } else {
                order.push(s);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse DFS in reverse finish order; each tree is one SCC.
    let mut assigned = vec![false; n];
    let mut out = Vec::new();
    for &root in order.iter().rev() {
        if assigned[root as usize] {
            continue;
        }
        assigned[root as usize] = true;
        let mut scc = vec![root];
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            for &t in &rev[s as usize] {
                if !assigned[t as usize] {
                    assigned[t as usize] = true;
                    scc.push(t);
                    stack.push(t);
                }
            }
        }
        let self_loop = scc.len() == 1
            && imc
                .interactive_from(scc[0])
                .iter()
                .any(|t| t.action.is_tau() && t.target == scc[0]);
        if scc.len() > 1 || self_loop {
            scc.sort_unstable();
            out.push(scc);
        }
    }
    out
}

/// Whether a τ-SCC is a *divergence trap*: no member offers a visible
/// action and no member has an interactive transition leaving the SCC.
/// Maximal progress then pre-empts every Markov rate forever.
fn is_tau_trap(imc: &Imc, scc: &[u32]) -> bool {
    let inside = |s: u32| scc.binary_search(&s).is_ok();
    scc.iter().all(|&s| {
        imc.interactive_from(s)
            .iter()
            .all(|t| t.action.is_tau() && inside(t.target))
    })
}

/// The stable states (under `view`) reachable from `from` via τ-only
/// interactive paths, sorted ascending. `from` itself is included if
/// stable.
fn tau_stable_closure(imc: &Imc, view: View, from: u32) -> Vec<u32> {
    let mut seen = vec![false; imc.num_states()];
    let mut out = Vec::new();
    let mut stack = vec![from];
    seen[from as usize] = true;
    while let Some(s) = stack.pop() {
        if imc.is_stable(s, view) {
            out.push(s);
        }
        for t in imc.interactive_from(s) {
            if t.action.is_tau() && !seen[t.target as usize] {
                seen[t.target as usize] = true;
                stack.push(t.target);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Lints an IMC: uniformity (U001), rate well-formedness (U003),
/// closedness (U004), deadlocks (U006), unreachable states (U007),
/// Zeno/pre-emption findings (U008), large τ-SCCs (U010), τ-divergence
/// traps (U011) and confluent τ-branches (U013).
///
/// # Examples
///
/// ```
/// use unicon_imc::ImcBuilder;
/// use unicon_verify::{lint_imc, Code, LintOptions};
///
/// let mut b = ImcBuilder::new(2, 0);
/// b.markov(0, 1.0, 1);
/// b.markov(1, 2.0, 0); // different exit rate: not uniform
/// let report = lint_imc(&b.build(), &LintOptions::default());
/// assert_eq!(report.diagnostics()[0].code, Code::U001);
/// assert!(report.has_errors());
/// ```
pub fn lint_imc(imc: &Imc, opts: &LintOptions) -> Report {
    let mut r = Report::new();
    let reachable = imc.reachable_states();

    // U003: ill-formed rates. The builders reject these, so a hit means an
    // upstream invariant was broken — checked anyway as defence in depth.
    for m in imc.markov() {
        if !(m.rate.is_finite() && m.rate > 0.0) {
            r.push(
                Diagnostic::new(
                    Code::U003,
                    Severity::Error,
                    format!(
                        "Markov transition to state {} has rate {}",
                        m.target, m.rate
                    ),
                )
                .with_state(m.source)
                .with_hint("rates must be finite and strictly positive"),
            );
        }
    }
    for s in 0..imc.num_states() as u32 {
        if !imc.exit_rate(s).is_finite() {
            r.push(
                Diagnostic::new(
                    Code::U003,
                    Severity::Error,
                    format!("exit rate overflows to {}", imc.exit_rate(s)),
                )
                .with_state(s)
                .with_hint("rescale the model's rates"),
            );
        }
    }

    // U001 / U004: uniformity under the chosen view (Definition 4).
    match imc.uniformity(opts.view) {
        Uniformity::Uniform(_) => {}
        Uniformity::Vacuous => {
            if opts.view == View::Closed {
                r.push(
                    Diagnostic::new(
                        Code::U004,
                        Severity::Warning,
                        "no reachable stable state under the closed view: every reachable \
                         state offers interactive transitions, so the model is still open \
                         and no time can pass under urgency",
                    )
                    .with_state(imc.initial())
                    .with_hint(
                        "compose the model with its environment (or hide its actions) \
                         before closing it",
                    ),
                );
            }
        }
        Uniformity::NonUniform {
            state_a,
            rate_a,
            state_b,
            rate_b,
        } => {
            r.push(
                Diagnostic::new(
                    Code::U001,
                    Severity::Error,
                    format!(
                        "reachable stable states {state_a} and {state_b} have different \
                         exit rates {rate_a} and {rate_b}"
                    ),
                )
                .with_state(state_b)
                .with_hint(
                    "uniformity by construction failed: uniformize the components at a \
                     shared rate (e.g. via elapse/shared_elapse) before composing",
                ),
            );
        }
    }

    // U006: reachable absorbing states (the paper assumes S_A = ∅).
    for s in 0..imc.num_states() as u32 {
        if reachable[s as usize] && imc.kind(s) == StateKind::Absorbing {
            r.push(
                Diagnostic::new(
                    Code::U006,
                    Severity::Warning,
                    "reachable absorbing state: no outgoing transitions",
                )
                .with_state(s)
                .with_hint(
                    "the transformation rejects dead ends; add a self-loop or repair \
                            transition",
                ),
            );
        }
    }

    // U007: unreachable states.
    let unreachable: Vec<u32> = (0..imc.num_states() as u32)
        .filter(|&s| !reachable[s as usize])
        .collect();
    if !unreachable.is_empty() {
        r.push(
            Diagnostic::new(
                Code::U007,
                Severity::Warning,
                format!(
                    "{} of {} states are unreachable from the initial state: {}",
                    unreachable.len(),
                    imc.num_states(),
                    fmt_states(&unreachable)
                ),
            )
            .with_hint(
                "drop them with restrict_to_reachable(); uniformity only quantifies \
                        over reachable states, so dead states can hide rate mismatches",
            ),
        );
    }

    // U008: interactive cycles — Zeno behaviour. Under the closed view any
    // interactive cycle diverges in zero time (and the transformation
    // rejects it); under the open view only τ-cycles are instantaneous.
    let tau_only = opts.view == View::Open;
    if let Some(cycle) = reachable_interactive_cycle(imc, &reachable, tau_only) {
        let kind = if tau_only {
            "τ-cycle"
        } else {
            "interactive cycle"
        };
        r.push(
            Diagnostic::new(
                Code::U008,
                Severity::Error,
                format!(
                    "{kind} through states {}: Zeno behaviour (infinitely many actions \
                         in zero time)",
                    fmt_states(&cycle)
                ),
            )
            .with_state(cycle[0])
            .with_hint("break the cycle with a Markov delay, or keep the model open"),
        );
    }

    // U008 (info): Markov rates that can never fire because the state is
    // unstable under the chosen view — pre-empted, dead weight.
    let pre_empted: Vec<u32> = (0..imc.num_states() as u32)
        .filter(|&s| {
            reachable[s as usize] && !imc.is_stable(s, opts.view) && !imc.markov_from(s).is_empty()
        })
        .collect();
    if !pre_empted.is_empty() {
        let what = match opts.view {
            View::Closed => "urgency",
            View::Open => "maximal progress",
        };
        r.push(
            Diagnostic::new(
                Code::U008,
                Severity::Info,
                format!(
                    "{} reachable states carry Markov rates that {what} pre-empts: {}",
                    pre_empted.len(),
                    fmt_states(&pre_empted)
                ),
            )
            .with_hint("harmless — the transformation cuts these transitions (step 1)"),
        );
    }

    // U010 / U011: τ-SCC findings. U010 is the performance smell (large
    // components make closure-based analyses quadratic); U011 is the
    // semantic trap — a component nobody can leave and that offers no
    // visible action livelocks the model under maximal progress, pre-empting
    // its Markov rates forever.
    for scc in nontrivial_tau_sccs(imc, &reachable) {
        if scc.len() > TAU_SCC_LIMIT {
            r.push(
                Diagnostic::new(
                    Code::U010,
                    Severity::Warning,
                    format!(
                        "τ-strongly-connected component spans {} states (> {TAU_SCC_LIMIT}): \
                         each member's τ-closure walks the whole component, making \
                         closure-based analyses quadratic in its size: {}",
                        scc.len(),
                        fmt_states(&scc)
                    ),
                )
                .with_state(scc[0])
                .with_hint(
                    "minimize the components before composing — weak bisimulation collapses \
                     a τ-SCC to a single state",
                ),
            );
        }
        if is_tau_trap(imc, &scc) {
            r.push(
                Diagnostic::new(
                    Code::U011,
                    Severity::Error,
                    format!(
                        "τ-divergence trap: the {} states {} form a τ-SCC with no visible \
                         action and no interactive escape, so maximal progress pre-empts \
                         every Markov rate forever (livelock in zero time)",
                        scc.len(),
                        fmt_states(&scc)
                    ),
                )
                .with_state(scc[0])
                .with_hint(
                    "break the internal cycle with a Markov delay, or leave one of the \
                     cycle's actions visible so the environment can interrupt it",
                ),
            );
        }
    }

    // U013: confluent τ-branches. A state whose τ-alternatives all commit
    // to the same stable states is not a real decision point — IOSA-style
    // confluence says the nondeterminism is an artifact of interleaving.
    // Informational: harmless for worst-case analyses (every resolution
    // yields the same measure) but worth collapsing before scaling up.
    let mut confluent: Vec<u32> = Vec::new();
    for s in 0..imc.num_states() as u32 {
        if !reachable[s as usize] {
            continue;
        }
        let mut tau_targets: Vec<u32> = imc
            .interactive_from(s)
            .iter()
            .filter(|t| t.action.is_tau() && t.target != s)
            .map(|t| t.target)
            .collect();
        tau_targets.sort_unstable();
        tau_targets.dedup();
        if tau_targets.len() < 2 {
            continue;
        }
        let first = tau_stable_closure(imc, opts.view, tau_targets[0]);
        if !first.is_empty()
            && tau_targets[1..]
                .iter()
                .all(|&t| tau_stable_closure(imc, opts.view, t) == first)
        {
            confluent.push(s);
        }
    }
    if !confluent.is_empty() {
        r.push(
            Diagnostic::new(
                Code::U013,
                Severity::Info,
                format!(
                    "{} states have confluent τ-branches (all alternatives commit to the \
                     same stable states): {} — the nondeterminism is spurious",
                    confluent.len(),
                    fmt_states(&confluent)
                ),
            )
            .with_state(confluent[0])
            .with_hint(
                "branching-bisimulation minimization merges confluent branches; run \
                 minimize() before the transformation",
            ),
        );
    }

    r
}

/// Lints a parallel composition's product map (U012): component states that
/// appear in **no** product state. The synchronization set then structurally
/// excludes part of a component — usually a misspelled action name or a
/// constraint wired to the wrong restart action.
///
/// `map[p] = (l, r)` gives the component states of product state `p`, as
/// returned by `Imc::parallel_with_map`; `left`/`right` are the component
/// state counts.
pub fn lint_product(left: usize, right: usize, map: &[(u32, u32)]) -> Report {
    let mut r = Report::new();
    let mut seen_l = vec![false; left];
    let mut seen_r = vec![false; right];
    for &(l, rr) in map {
        if let Some(slot) = seen_l.get_mut(l as usize) {
            *slot = true;
        }
        if let Some(slot) = seen_r.get_mut(rr as usize) {
            *slot = true;
        }
    }
    for (side, seen, n) in [("left", &seen_l, left), ("right", &seen_r, right)] {
        let missing: Vec<u32> = (0..n as u32).filter(|&s| !seen[s as usize]).collect();
        if !missing.is_empty() {
            r.push(
                Diagnostic::new(
                    Code::U012,
                    Severity::Warning,
                    format!(
                        "{} of {n} {side}-component states appear in no product state: {}",
                        missing.len(),
                        fmt_states(&missing)
                    ),
                )
                .with_state(missing[0])
                .with_hint(
                    "the synchronization set excludes these states structurally — check \
                     the synchronized action names and the components' initial states",
                ),
            );
        }
    }
    r
}

/// Lints a transient analysis request against the Fox–Glynn certifiable
/// floor (U014): at uniformization rate `E` and horizon `t`, the weights
/// can only certify truncation error down to
/// `FoxGlynn::min_certifiable_epsilon(E·t)`; a tighter `epsilon` silently
/// degrades to the floor (or fails), so the reported precision is a lie.
pub fn lint_truncation(ctmdp: &Ctmdp, t: f64, epsilon: f64) -> Report {
    let mut r = Report::new();
    let Ok(rate) = ctmdp.uniform_rate() else {
        // Non-uniform models are U001 territory (lint_ctmdp); without a
        // single E there is no λ = E·t to condition on.
        return r;
    };
    let lambda = rate * t;
    if !(lambda.is_finite() && lambda > 0.0) {
        return r;
    }
    let floor = unicon_numeric::foxglynn::FoxGlynn::min_certifiable_epsilon(lambda);
    if epsilon < floor {
        r.push(
            Diagnostic::new(
                Code::U014,
                Severity::Warning,
                format!(
                    "requested epsilon {epsilon:e} is below the Fox–Glynn certifiable \
                     floor {floor:.3e} at λ = E·t = {lambda} (E = {rate}, t = {t}): the \
                     truncation window cannot guarantee that precision"
                ),
            )
            .with_hint(
                "raise epsilon to at least the floor, or shorten the horizon / lower the \
                 uniform rate (e.g. via a coarser shared_elapse timer)",
            ),
        );
    }
    r
}

/// Lints a CTMC: uniformity (U001, a warning — uniformization can repair
/// it), exit-rate bookkeeping (U002), rate well-formedness (U003),
/// absorbing states (U006, informational) and unreachable states (U007).
pub fn lint_ctmc(ctmc: &Ctmc) -> Report {
    let mut r = Report::new();
    let n = ctmc.num_states();

    // U003 first: ill-formed entries make every later judgement moot.
    for (s, t, v) in ctmc.rates().triplets() {
        if !(v.is_finite() && v > 0.0) {
            r.push(
                Diagnostic::new(
                    Code::U003,
                    Severity::Error,
                    format!("rate R({s},{t}) = {v}"),
                )
                .with_state(s as u32)
                .with_hint("rates must be finite and strictly positive"),
            );
        }
    }

    // U002: the cached exit rates must match the row sums they cache.
    for s in 0..n {
        let recomputed: f64 = ctmc.rates().row(s).map(|(_, v)| v).sum();
        if !rates_approx_eq(ctmc.exit_rate(s), recomputed) {
            r.push(
                Diagnostic::new(
                    Code::U002,
                    Severity::Error,
                    format!(
                        "cached exit rate {} disagrees with recomputed row sum {}",
                        ctmc.exit_rate(s),
                        recomputed
                    ),
                )
                .with_state(s as u32)
                .with_hint("internal inconsistency — please report this as a bug"),
            );
        }
    }

    // U001: non-uniform CTMCs are legitimate inputs (uniformize() exists),
    // so this is only a warning here.
    if ctmc.uniform_rate().is_none() {
        let mut witness: Option<(usize, f64)> = None;
        for s in 0..n {
            let e = ctmc.exit_rate(s);
            match witness {
                None => witness = Some((s, e)),
                Some((w, ew)) => {
                    if !rates_approx_eq(e, ew) {
                        r.push(
                            Diagnostic::new(
                                Code::U001,
                                Severity::Warning,
                                format!(
                                    "states {w} and {s} have different exit rates {ew} and {e}"
                                ),
                            )
                            .with_state(s as u32)
                            .with_hint(
                                "apply uniformize(rate) with rate ≥ the maximal exit \
                                        rate",
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }

    // Reachability over the rate graph.
    let mut reachable = vec![false; n];
    reachable[ctmc.initial() as usize] = true;
    let mut stack = vec![ctmc.initial() as usize];
    while let Some(s) = stack.pop() {
        for (t, _) in ctmc.rates().row(s) {
            if !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }

    // U006: absorbing states are meaningful for CTMCs (phase-type
    // completion states), so only note them.
    for (s, _) in reachable.iter().enumerate().filter(|&(_, &re)| re) {
        if ctmc.is_absorbing(s) {
            r.push(
                Diagnostic::new(Code::U006, Severity::Info, "absorbing state (exit rate 0)")
                    .with_state(s as u32),
            );
        }
    }

    // U007: unreachable states.
    let unreachable: Vec<u32> = (0..n as u32).filter(|&s| !reachable[s as usize]).collect();
    if !unreachable.is_empty() {
        r.push(
            Diagnostic::new(
                Code::U007,
                Severity::Warning,
                format!(
                    "{} of {n} states are unreachable from the initial state: {}",
                    unreachable.len(),
                    fmt_states(&unreachable)
                ),
            )
            .with_hint("unreachable states distort the uniformity judgement"),
        );
    }

    r
}

/// Lints a CTMDP: uniformity (U001 — Algorithm 1's precondition, an
/// error), rate-function bookkeeping (U002), rate well-formedness (U003),
/// action-less states (U006) and unreachable states (U007).
pub fn lint_ctmdp(ctmdp: &Ctmdp) -> Report {
    let mut r = Report::new();
    let n = ctmdp.num_states();

    // U003: ill-formed rate-function entries.
    for (i, rf) in ctmdp.rate_functions().iter().enumerate() {
        for &(t, v) in rf.targets() {
            if !(v.is_finite() && v > 0.0) {
                r.push(
                    Diagnostic::new(
                        Code::U003,
                        Severity::Error,
                        format!("rate function {i} maps state {t} to rate {v}"),
                    )
                    .with_hint("rates must be finite and strictly positive"),
                );
            }
        }
        // U002: the cached total must equal the branch sum.
        let recomputed: f64 = rf.targets().iter().map(|&(_, v)| v).sum();
        if !rates_approx_eq(rf.total(), recomputed) {
            r.push(
                Diagnostic::new(
                    Code::U002,
                    Severity::Error,
                    format!(
                        "rate function {i}: cached exit rate {} disagrees with branch sum {}",
                        rf.total(),
                        recomputed
                    ),
                )
                .with_hint("internal inconsistency — please report this as a bug"),
            );
        }
    }

    // U001: Algorithm 1 is only correct on uniform CTMDPs, so this is an
    // error — the same check reachability::timed_reachability enforces.
    if let Err(e) = ctmdp.uniform_rate() {
        r.push(
            Diagnostic::new(
                Code::U001,
                Severity::Error,
                format!(
                    "transitions with different exit rates {} and {}",
                    e.rate_a, e.rate_b
                ),
            )
            .with_hint(
                "Algorithm 1 requires a uniform CTMDP; obtain one by transforming a \
                 uniform IMC (uniformity by construction) instead of building directly",
            ),
        );
    }

    // U009: rate magnitudes spread wider than Fox–Glynn resolves. The
    // uniformization rate E is pinned by the fastest transition, and a
    // branch of rate v only contributes probability v/E per jump — once
    // that ratio sinks below the weights' floating-point floor, the slow
    // branch silently contributes nothing to any transient analysis.
    let max_exit = ctmdp
        .rate_functions()
        .iter()
        .map(|rf| rf.total())
        .filter(|e| e.is_finite())
        .fold(0.0f64, f64::max);
    let min_branch = ctmdp
        .rate_functions()
        .iter()
        .flat_map(|rf| rf.targets().iter())
        .map(|&(_, v)| v)
        .filter(|v| v.is_finite() && *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    if max_exit > 0.0 && min_branch.is_finite() && min_branch / max_exit < FOXGLYNN_SPREAD_FLOOR {
        r.push(
            Diagnostic::new(
                Code::U009,
                Severity::Warning,
                format!(
                    "rate magnitudes spread over {:.1e}: smallest branch rate {min_branch:e} \
                     against fastest exit rate {max_exit:e}, so the slow branch's per-jump \
                     probability {:.1e} is below the {FOXGLYNN_SPREAD_FLOOR:e} resolution of \
                     the Fox–Glynn weights at the default epsilon 1e-6",
                    max_exit / min_branch,
                    min_branch / max_exit
                ),
            )
            .with_hint(
                "the uniformization rate is driven by the fastest transition; rescale the \
                 slow rates, analyse the fast subsystem separately, or tighten epsilon only \
                 as far as min_certifiable_epsilon allows",
            ),
        );
    }

    // Reachability over chosen-transition branches.
    let mut reachable = vec![false; n];
    reachable[ctmdp.initial() as usize] = true;
    let mut stack = vec![ctmdp.initial()];
    while let Some(s) = stack.pop() {
        for tr in ctmdp.transitions_from(s) {
            for &(t, _) in ctmdp.rate_function(tr.rate_fn).targets() {
                if !reachable[t as usize] {
                    reachable[t as usize] = true;
                    stack.push(t);
                }
            }
        }
    }

    // U006: reachable states without any transition (`R(s) = ∅`).
    for s in 0..n as u32 {
        if reachable[s as usize] && ctmdp.transitions_from(s).is_empty() {
            r.push(
                Diagnostic::new(
                    Code::U006,
                    Severity::Warning,
                    "reachable state offers no transition (Definition 1 forbids R(s) = ∅)",
                )
                .with_state(s)
                .with_hint("the probability mass entering this state is stuck forever"),
            );
        }
    }

    // U007: unreachable states.
    let unreachable: Vec<u32> = (0..n as u32).filter(|&s| !reachable[s as usize]).collect();
    if !unreachable.is_empty() {
        r.push(
            Diagnostic::new(
                Code::U007,
                Severity::Warning,
                format!(
                    "{} of {n} states are unreachable from the initial state: {}",
                    unreachable.len(),
                    fmt_states(&unreachable)
                ),
            )
            .with_hint("unreachable states distort the uniformity judgement"),
        );
    }

    r
}

/// Lints the strict-alternation normal form (U005): every state is purely
/// interactive or purely Markov, interactive transitions end in Markov
/// states, Markov transitions in interactive states, and the initial state
/// is interactive — the shape Theorem 1's CTMDP reading requires.
pub fn lint_alternation(imc: &Imc) -> Report {
    let mut r = Report::new();
    for s in 0..imc.num_states() as u32 {
        match imc.kind(s) {
            StateKind::Hybrid => {
                r.push(
                    Diagnostic::new(
                        Code::U005,
                        Severity::Error,
                        "hybrid state (both interactive and Markov transitions) in a \
                         strictly alternating IMC",
                    )
                    .with_state(s)
                    .with_hint("run make_alternating (step 1) to cut the pre-empted rates"),
                );
            }
            StateKind::Absorbing => {
                r.push(
                    Diagnostic::new(
                        Code::U005,
                        Severity::Error,
                        "absorbing state in a strictly alternating IMC",
                    )
                    .with_state(s)
                    .with_hint("strict alternation forbids dead ends"),
                );
            }
            StateKind::Interactive => {
                for t in imc.interactive_from(s) {
                    if imc.kind(t.target) != StateKind::Markov {
                        r.push(
                            Diagnostic::new(
                                Code::U005,
                                Severity::Error,
                                format!(
                                    "interactive transition ends in non-Markov state {}",
                                    t.target
                                ),
                            )
                            .with_state(s)
                            .with_action(imc.actions().name(t.action))
                            .with_hint(
                                "run make_interactive_alternating (step 3) to \
                                        compress interactive sequences into words",
                            ),
                        );
                    }
                }
            }
            StateKind::Markov => {
                for m in imc.markov_from(s) {
                    if imc.kind(m.target) != StateKind::Interactive {
                        r.push(
                            Diagnostic::new(
                                Code::U005,
                                Severity::Error,
                                format!(
                                    "Markov transition ends in non-interactive state {}",
                                    m.target
                                ),
                            )
                            .with_state(s)
                            .with_hint(
                                "run make_markov_alternating (step 2) to split \
                                        Markov→Markov edges",
                            ),
                        );
                    }
                }
            }
        }
    }
    if imc.kind(imc.initial()) != StateKind::Interactive {
        r.push(
            Diagnostic::new(
                Code::U005,
                Severity::Error,
                "initial state is not interactive (Definition 1 requires s₀ ∈ S_I)",
            )
            .with_state(imc.initial())
            .with_hint("prepend a fresh τ-initial state"),
        );
    }
    r
}

/// Lints a completed transformation: the strictly alternating IMC must be
/// in normal form (U005), the extracted CTMDP must lint clean, and the
/// origin/zero-closure maps must be consistent with both (U002).
///
/// `input` is the IMC the transformation ran on; the maps translate CTMDP
/// states back into its state space.
pub fn lint_transform_output(input: &Imc, out: &TransformOutput) -> Report {
    let mut r = lint_alternation(&out.strictly_alternating);
    r.merge(lint_ctmdp(&out.ctmdp));

    let n_ctmdp = out.ctmdp.num_states();
    if out.ctmdp_state_origin.len() != n_ctmdp {
        r.push(
            Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!(
                    "origin map has {} entries for {n_ctmdp} CTMDP states",
                    out.ctmdp_state_origin.len()
                ),
            )
            .with_hint("internal inconsistency — please report this as a bug"),
        );
    }
    if out.ctmdp_zero_closure.len() != n_ctmdp {
        r.push(
            Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!(
                    "zero-closure map has {} entries for {n_ctmdp} CTMDP states",
                    out.ctmdp_zero_closure.len()
                ),
            )
            .with_hint("internal inconsistency — please report this as a bug"),
        );
    }
    let n_input = input.num_states() as u32;
    for (s, &origin) in out.ctmdp_state_origin.iter().enumerate() {
        if origin >= n_input {
            r.push(
                Diagnostic::new(
                    Code::U002,
                    Severity::Error,
                    format!("origin {origin} of CTMDP state {s} is not an input state"),
                )
                .with_state(s as u32)
                .with_hint("internal inconsistency — please report this as a bug"),
            );
        } else if let Some(closure) = out.ctmdp_zero_closure.get(s) {
            if !closure.contains(&origin) {
                r.push(
                    Diagnostic::new(
                        Code::U002,
                        Severity::Error,
                        format!("zero closure of CTMDP state {s} misses its own origin {origin}"),
                    )
                    .with_state(s as u32)
                    .with_hint("internal inconsistency — please report this as a bug"),
                );
            }
            if let Some(&bad) = closure.iter().find(|&&o| o >= n_input) {
                r.push(
                    Diagnostic::new(
                        Code::U002,
                        Severity::Error,
                        format!(
                            "zero closure of CTMDP state {s} contains non-input state \
                                 {bad}"
                        ),
                    )
                    .with_state(s as u32)
                    .with_hint("internal inconsistency — please report this as a bug"),
                );
            }
        }
    }
    if out.stats.interactive_states != n_ctmdp {
        r.push(
            Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!(
                    "statistics report {} interactive states but the CTMDP has {n_ctmdp}",
                    out.stats.interactive_states
                ),
            )
            .with_hint("internal inconsistency — please report this as a bug"),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_ctmdp::CtmdpBuilder;
    use unicon_imc::ImcBuilder;
    use unicon_transform::transform;

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn uniform_closed_model_lints_clean() {
        // 0 --tick--> 1, both Markov at rate 2, decision at 2.
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 2.0, 1);
        b.markov(1, 2.0, 2);
        b.interactive("left", 2, 0);
        b.interactive("right", 2, 1);
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(
            r.is_clean(),
            "unexpected diagnostics: {:?}",
            r.diagnostics()
        );
    }

    #[test]
    fn non_uniform_fires_u001() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 2.0, 0);
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(codes(&r).contains(&Code::U001));
        assert!(r.has_errors());
    }

    #[test]
    fn open_model_fires_u004_under_closed_view() {
        // Every state interactive: vacuously uniform, but no time passes.
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("ping", 0, 1);
        b.interactive("pong", 1, 0);
        b.markov(0, 1.0, 1); // pre-empted by urgency
        let imc = b.build();
        let r = lint_imc(&imc, &LintOptions::default());
        assert!(codes(&r).contains(&Code::U004));
        assert!(!r.is_clean());
        // ...but under the open view the same model is fine (states are
        // τ-free, hence stable; rate mismatch 1 vs 0 fires U001 instead).
        let r_open = lint_imc(&imc, &LintOptions { view: View::Open });
        assert!(!codes(&r_open).contains(&Code::U004));
    }

    #[test]
    fn deadlock_fires_u006() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1); // state 1 absorbing
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(codes(&r).contains(&Code::U006));
    }

    #[test]
    fn unreachable_fires_u007_aggregated() {
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        b.markov(2, 1.0, 3);
        b.markov(3, 1.0, 2);
        let r = lint_imc(&b.build(), &LintOptions::default());
        let u7: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::U007)
            .collect();
        assert_eq!(u7.len(), 1);
        assert!(u7[0].message.contains("2 of 4"));
    }

    #[test]
    fn interactive_cycle_fires_u008_closed_only_for_visible() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("a", 0, 1);
        b.interactive("b", 1, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 0);
        let imc = b.build();
        // Closed view: visible cycle is Zeno under urgency.
        let r = lint_imc(&imc, &LintOptions::default());
        assert!(codes(&r).contains(&Code::U008));
        assert!(r.has_errors());
        // Open view: visible actions are delayable, no Zeno.
        let r_open = lint_imc(&imc, &LintOptions { view: View::Open });
        assert!(r_open
            .diagnostics()
            .iter()
            .all(|d| !(d.code == Code::U008 && d.severity == Severity::Error)));
    }

    #[test]
    fn tau_cycle_fires_u008_under_open_view() {
        let mut b = ImcBuilder::new(2, 0);
        b.tau(0, 1);
        b.tau(1, 0);
        b.markov(0, 1.0, 1);
        let r = lint_imc(&b.build(), &LintOptions { view: View::Open });
        assert!(codes(&r).contains(&Code::U008));
        assert!(r.has_errors());
    }

    #[test]
    fn unreachable_cycle_does_not_fire_u008() {
        // The τ-cycle lives in an unreachable component: transform() never
        // sees it, so neither does the lint (only U007 flags the dead part).
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 1.0, 0);
        b.tau(1, 2);
        b.tau(2, 1);
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(!codes(&r).contains(&Code::U008));
        assert!(codes(&r).contains(&Code::U007));
    }

    #[test]
    fn pre_empted_rates_are_informational() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("go", 0, 1);
        b.markov(0, 5.0, 1); // hybrid: urgency cuts this rate
        b.markov(1, 5.0, 0);
        let r = lint_imc(&b.build(), &LintOptions::default());
        let info: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::U008)
            .collect();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].severity, Severity::Info);
        assert!(r.is_clean());
    }

    #[test]
    fn ctmc_lints() {
        let c = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (1, 0, 2.0)]);
        let r = lint_ctmc(&c);
        assert!(codes(&r).contains(&Code::U001));
        assert!(!r.has_errors(), "non-uniform CTMC is only a warning");

        let u = c.uniformize(2.0);
        assert!(lint_ctmc(&u).is_clean());
    }

    #[test]
    fn ctmc_absorbing_is_info_unreachable_is_warning() {
        let c = Ctmc::from_rates(3, 0, [(0, 1, 1.0), (1, 1, 1.0)]);
        let r = lint_ctmc(&c);
        // state 2 unreachable; no absorbing state reachable
        assert!(codes(&r).contains(&Code::U007));
        let c2 = Ctmc::from_rates(2, 0, [(0, 1, 1.0)]);
        let r2 = lint_ctmc(&c2);
        let abs: Vec<_> = r2
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::U006)
            .collect();
        assert_eq!(abs.len(), 1);
        assert_eq!(abs[0].severity, Severity::Info);
    }

    #[test]
    fn ctmdp_non_uniform_is_error() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        b.transition(1, "b", &[(0, 2.0)]);
        let r = lint_ctmdp(&b.build());
        assert!(codes(&r).contains(&Code::U001));
        assert!(r.has_errors());
    }

    #[test]
    fn ctmdp_action_less_state_is_u006() {
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1.0)]);
        let r = lint_ctmdp(&b.build());
        assert!(codes(&r).contains(&Code::U006));
    }

    #[test]
    fn ctmdp_extreme_rate_spread_fires_u009() {
        // branch probability 1e-7 / (1e9 + 1e-7) ≈ 1e-16 < 1e-12: the slow
        // branch is invisible to Fox–Glynn at the default epsilon
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1e9), (0, 1e-7)]);
        b.transition(1, "b", &[(0, 1e9 + 1e-7)]);
        let r = lint_ctmdp(&b.build());
        let u9: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::U009)
            .collect();
        assert_eq!(u9.len(), 1, "diagnostics: {:?}", r.diagnostics());
        assert_eq!(u9[0].severity, Severity::Warning);
        assert!(u9[0].message.contains("spread"), "{}", u9[0].message);
        assert!(
            u9[0]
                .hint
                .as_deref()
                .unwrap_or("")
                .contains("uniformization"),
            "hint must point at the uniformization rate"
        );
    }

    #[test]
    fn ctmdp_moderate_rate_spread_stays_silent() {
        // spread 1e6: comfortably within Fox–Glynn resolution
        let mut b = CtmdpBuilder::new(2, 0);
        b.transition(0, "a", &[(1, 1e3), (0, 1e-3)]);
        b.transition(1, "b", &[(0, 1e3 + 1e-3)]);
        let r = lint_ctmdp(&b.build());
        assert!(!codes(&r).contains(&Code::U009), "{:?}", r.diagnostics());
    }

    #[test]
    fn large_tau_scc_fires_u010() {
        // τ-ring of 20 states: one SCC above the limit. (It also fires
        // U008 — Zeno — but U010 is the performance finding.)
        let n = 20u32;
        let mut b = ImcBuilder::new(n as usize, 0);
        for s in 0..n {
            b.tau(s, (s + 1) % n);
        }
        let r = lint_imc(&b.build(), &LintOptions::default());
        let u10: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::U010)
            .collect();
        assert_eq!(u10.len(), 1, "diagnostics: {:?}", r.diagnostics());
        assert_eq!(u10[0].severity, Severity::Warning);
        assert!(u10[0].message.contains("20 states"), "{}", u10[0].message);
        assert!(
            u10[0].hint.as_deref().unwrap_or("").contains("minimize"),
            "hint must recommend minimizing before composing"
        );
    }

    #[test]
    fn small_tau_cycle_does_not_fire_u010() {
        let mut b = ImcBuilder::new(2, 0);
        b.tau(0, 1);
        b.tau(1, 0);
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(!codes(&r).contains(&Code::U010), "{:?}", r.diagnostics());
    }

    #[test]
    fn unreachable_tau_scc_does_not_fire_u010() {
        // A big τ-ring in a dead component: the lint only inspects the
        // reachable subgraph (matching U008's behaviour).
        let n = 24u32;
        let mut b = ImcBuilder::new(n as usize, 0);
        b.markov(0, 1.0, 0);
        for s in 1..n {
            let next = if s + 1 == n { 1 } else { s + 1 };
            b.tau(s, next);
        }
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(!codes(&r).contains(&Code::U010), "{:?}", r.diagnostics());
        assert!(codes(&r).contains(&Code::U007));
    }

    #[test]
    fn tau_chain_without_cycle_does_not_fire_u010() {
        // 30 τ-steps in a line: no SCC bigger than a singleton.
        let n = 31u32;
        let mut b = ImcBuilder::new(n as usize, 0);
        for s in 0..n - 1 {
            b.tau(s, s + 1);
        }
        b.markov(n - 1, 1.0, 0);
        let r = lint_imc(&b.build(), &LintOptions::default());
        assert!(!codes(&r).contains(&Code::U010), "{:?}", r.diagnostics());
    }

    #[test]
    fn alternation_violations_fire_u005() {
        // hybrid initial state + Markov→Markov edge + absorbing state
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("a", 0, 1);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 2);
        let r = lint_alternation(&b.build());
        assert!(r.has_errors());
        assert!(codes(&r).iter().all(|&c| c == Code::U005));
        // hybrid state 0, Markov(1)->Markov? state 2 absorbing, 1->2 markov
        // to absorbing (non-interactive target), initial not interactive.
        assert!(r.num_errors() >= 3);
    }

    #[test]
    fn transform_output_lints_clean() {
        let mut b = ImcBuilder::new(5, 0);
        b.interactive("left", 0, 1);
        b.interactive("right", 0, 2);
        b.markov(1, 2.0, 3);
        b.markov(2, 1.5, 3);
        b.markov(2, 0.5, 4);
        b.tau(3, 0);
        b.interactive("reset", 4, 0);
        let imc = b.build();
        let out = transform(&imc).expect("transformable");
        let r = lint_transform_output(&imc, &out);
        assert!(
            r.is_clean(),
            "unexpected diagnostics: {:?}",
            r.diagnostics()
        );
    }

    #[test]
    fn hand_broken_alternation_is_caught() {
        // Looks like a transform output but a Markov→Markov edge sneaks in.
        let mut b = ImcBuilder::new(4, 0);
        b.interactive("w", 0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 3); // Markov→Markov: not strictly alternating
        b.interactive("v", 3, 1);
        let imc = b.build();
        let r = lint_alternation(&imc);
        assert!(r.has_errors());
        assert!(
            !unicon_transform::is_strictly_alternating(&imc),
            "sanity: the checker agrees"
        );
    }

    #[test]
    fn lint_agrees_with_is_strictly_alternating_on_transform_output() {
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.markov(1, 2.0, 2);
        b.tau(2, 0);
        let imc = b.build();
        let out = transform(&imc).expect("transformable");
        assert!(unicon_transform::is_strictly_alternating(
            &out.strictly_alternating
        ));
        assert!(lint_alternation(&out.strictly_alternating).is_clean());
    }
}
