//! Diagnostic vocabulary: severities, codes, diagnostics and reports.

use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered: `Info < Warning < Error`, so [`Report::max_severity`] can be
/// compared against a threshold directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — never affects cleanliness.
    Info,
    /// Suspicious but not necessarily wrong; fails `--deny warnings`.
    Warning,
    /// A property the analyses rely on is violated.
    Error,
}

impl Severity {
    /// Lower-case label, as printed in front of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The lint codes, each tied to a definition or lemma of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Non-uniform exit rates at reachable stable states (Definition 4).
    U001,
    /// Internal rate-accounting inconsistency (cached vs. recomputed sums).
    U002,
    /// Ill-formed rate: negative, NaN or infinite.
    U003,
    /// Model is open under the closed view: no reachable stable state.
    U004,
    /// Strict-alternation normal form violated (Section 4.1, steps 1–3).
    U005,
    /// Reachable deadlock/absorbing state (the paper assumes `S_A = ∅`).
    U006,
    /// Unreachable states (dead weight; uniformity only quantifies over
    /// reachable states, so these may hide rate mismatches).
    U007,
    /// Zeno behaviour / pre-empted rates: interactive cycles (error) or
    /// Markov transitions that urgency makes unfirable (info).
    U008,
    /// Rate magnitudes spread wider than Fox–Glynn can resolve at the
    /// default epsilon: branch probabilities below the weights'
    /// floating-point floor silently contribute nothing.
    U009,
    /// A large τ-strongly-connected component: every state of the SCC
    /// reaches every other via internal steps, so per-state τ-closures
    /// (weak/branching signatures, maximal-progress analyses) each walk
    /// the whole component — quadratic blow-up in the SCC size.
    U010,
    /// A τ-divergence trap: a reachable τ-SCC no member of which offers a
    /// visible action or an interactive escape — maximal progress pre-empts
    /// every Markov rate forever, so the model livelocks in zero time.
    U011,
    /// Component states that appear in no reachable product state: the
    /// synchronization structurally excludes part of a component.
    U012,
    /// Spurious nondeterminism in a closed model: a state's τ-branches are
    /// confluent (they commit to the same stable states), so the
    /// nondeterminism is an artifact, not a real decision.
    U013,
    /// Fox–Glynn truncation risk: the requested epsilon is below what the
    /// weights can certify at the analysis's `E·t`.
    U014,
    /// Certificate gap: a pipeline object with no obligation on file — an
    /// off-ledger construction step broke the proof chain.
    U015,
}

impl Code {
    /// All codes, in order.
    pub const ALL: [Code; 15] = [
        Code::U001,
        Code::U002,
        Code::U003,
        Code::U004,
        Code::U005,
        Code::U006,
        Code::U007,
        Code::U008,
        Code::U009,
        Code::U010,
        Code::U011,
        Code::U012,
        Code::U013,
        Code::U014,
        Code::U015,
    ];

    /// The code as printed, e.g. `"U001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::U001 => "U001",
            Code::U002 => "U002",
            Code::U003 => "U003",
            Code::U004 => "U004",
            Code::U005 => "U005",
            Code::U006 => "U006",
            Code::U007 => "U007",
            Code::U008 => "U008",
            Code::U009 => "U009",
            Code::U010 => "U010",
            Code::U011 => "U011",
            Code::U012 => "U012",
            Code::U013 => "U013",
            Code::U014 => "U014",
            Code::U015 => "U015",
        }
    }

    /// One-line description of what the code checks.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::U001 => "non-uniform exit rates at reachable stable states",
            Code::U002 => "internal rate-accounting inconsistency",
            Code::U003 => "ill-formed rate (negative, NaN or infinite)",
            Code::U004 => "no reachable stable state under the closed view",
            Code::U005 => "strict-alternation normal form violated",
            Code::U006 => "reachable deadlock/absorbing state",
            Code::U007 => "unreachable states",
            Code::U008 => "interactive cycle (Zeno) or pre-empted Markov rates",
            Code::U009 => "rate spread exceeds Fox–Glynn resolution at default epsilon",
            Code::U010 => "large τ-SCC makes per-state τ-closures quadratic",
            Code::U011 => "τ-divergence trap: maximal progress livelocks the model",
            Code::U012 => "component states excluded from every product state",
            Code::U013 => "confluent τ-branches: spurious nondeterminism in a closed model",
            Code::U014 => "epsilon below the Fox–Glynn certifiable floor at E·t",
            Code::U015 => "certificate gap: construction step with no obligation on file",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a severity, an optional locus, a message and an
/// optional hint on how to fix it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: Code,
    /// How serious it is.
    pub severity: Severity,
    /// The state the finding is anchored at, if any.
    pub state: Option<u32>,
    /// The action label involved, if any.
    pub action: Option<String>,
    /// Human-readable description of the finding.
    pub message: String,
    /// Suggestion on how to repair the model.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Starts a diagnostic without locus or hint.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            state: None,
            action: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Anchors the diagnostic at a state.
    pub fn with_state(mut self, state: u32) -> Self {
        self.state = Some(state);
        self
    }

    /// Attaches an action label.
    pub fn with_action(mut self, action: impl Into<String>) -> Self {
        self.action = Some(action.into());
        self
    }

    /// Attaches a repair hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(s) = self.state {
            write!(f, " state {s}")?;
        }
        if let Some(a) = &self.action {
            write!(f, " action `{a}`")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(h) = &self.hint {
            write!(f, " (hint: {h})")?;
        }
        Ok(())
    }
}

/// The outcome of a lint pass: an ordered list of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The diagnostics, in the order the checks produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether the model lints clean: no errors **and** no warnings
    /// (informational diagnostics are allowed).
    pub fn is_clean(&self) -> bool {
        self.max_severity() < Some(Severity::Warning)
    }

    /// Whether any error-level diagnostic fired.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Number of error-level diagnostics.
    pub fn num_errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// The most severe level present, `None` for an empty report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Renders the report as a JSON object with a `diagnostics` array and
    /// summary counters — stable enough to be consumed by scripts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"state\":");
            match d.state {
                Some(s) => out.push_str(&s.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"action\":");
            push_json_opt_str(&mut out, d.action.as_deref());
            out.push_str(",\"message\":");
            push_json_str(&mut out, &d.message);
            out.push_str(",\"hint\":");
            push_json_opt_str(&mut out, d.hint.as_deref());
            out.push('}');
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.num_errors().to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.num_warnings().to_string());
        out.push_str(",\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push('}');
        out
    }
}

fn push_json_opt_str(out: &mut String, s: Option<&str>) {
    match s {
        Some(s) => push_json_str(out, s),
        None => out.push_str("null"),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_has_code_state_and_hint() {
        let d = Diagnostic::new(Code::U001, Severity::Error, "rates differ")
            .with_state(3)
            .with_hint("uniformize first");
        let s = d.to_string();
        assert_eq!(
            s,
            "error[U001] state 3: rates differ (hint: uniformize first)"
        );
    }

    #[test]
    fn report_counters_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.push(Diagnostic::new(Code::U008, Severity::Info, "fyi"));
        assert!(r.is_clean());
        r.push(Diagnostic::new(Code::U006, Severity::Warning, "deadlock"));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::U003, Severity::Error, "NaN"));
        assert!(r.has_errors());
        assert_eq!(r.num_errors(), 1);
        assert_eq!(r.num_warnings(), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Diagnostic::new(Code::U001, Severity::Error, "x"));
        let mut b = Report::new();
        b.push(Diagnostic::new(Code::U007, Severity::Warning, "y"));
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::U005, Severity::Error, "bad \"word\"\n")
                .with_state(1)
                .with_action("a.b"),
        );
        let j = r.to_json();
        assert!(j.contains("\"code\":\"U005\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"state\":1"));
        assert!(j.contains("\"action\":\"a.b\""));
        assert!(j.contains("bad \\\"word\\\"\\n"));
        assert!(j.contains("\"hint\":null"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"clean\":false"));
    }

    #[test]
    fn all_codes_have_distinct_names() {
        let names: std::collections::HashSet<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names.len(), Code::ALL.len());
    }
}
