//! The independent certificate checker: replays construction obligations.
//!
//! `unicon-imc::audit` records what the certified construction operators
//! *claim* they did — the lemma invoked, clones of the inputs and the
//! output, uniform rates, and op-specific witness data. Nothing in those
//! [`Obligation`]s is trusted here. [`certify`] re-establishes every claim
//! against the recorded objects themselves:
//!
//! * **Replay**: `hide`, `relabel` and `parallel` are re-executed from the
//!   recorded inputs and the result compared to the recorded output by
//!   structural fingerprint; `transform` is replayed through the full
//!   uIMC → uCTMDP trajectory and cross-checked against the witness CTMDP
//!   fingerprint.
//! * **Independent recomputation**: a `minimize` obligation's quotient map
//!   is checked for well-formedness and label refinement, its quotient is
//!   rebuilt, and the partition itself is recomputed with the *reference*
//!   refiner backend — not the worklist backend that produced it — and
//!   required to match exactly.
//! * **Rate arithmetic**: the uniform rates claimed at record time are
//!   recomputed from the objects, and the lemma's rate equation (`E_out =
//!   Σ E_in`, one operand for the unary operators) is re-verified under the
//!   workspace tolerance policy.
//! * **Chain linkage**: every non-leaf input must be the output of an
//!   earlier obligation (by fingerprint). A pipeline step executed
//!   off-ledger — e.g. a weak minimization, which is *not* a certified
//!   operation — breaks the chain and is reported as a [`Code::U015`]
//!   certificate gap.
//!
//! The result is an [`AuditOutcome`]: one [`StepVerdict`] per obligation
//! plus a [`Report`] of chain-level findings (U012 product-coverage
//! warnings from replayed compositions, U015 gaps).
//!
//! # Certificates on disk
//!
//! [`records`] summarizes obligations into flat [`CertRecord`]s —
//! fingerprints, rates and witness summaries, no models — which
//! [`to_jsonl`] serializes one-per-line and [`parse_jsonl`] reads back.
//! [`check_records`] re-validates a parsed certificate at the record level
//! (sequential ids, chain linkage, lemma rate arithmetic); it cannot replay
//! operations (the models are not in the file) but detects tampered or
//! truncated certificates.

use std::collections::HashSet;

use unicon_imc::audit::{lemma, with_recording, Obligation, Witness};
use unicon_imc::bisim::{self, Partition};
use unicon_imc::{Imc, Uniformity, View};
use unicon_numeric::rates_approx_eq;

use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::lints::lint_product;

/// The verdict on one obligation: either every re-established claim held,
/// or the list of claims that did not.
#[derive(Debug, Clone, PartialEq)]
pub struct StepVerdict {
    /// The obligation's sequence number.
    pub id: usize,
    /// The operation (`"hide"`, `"parallel"`, …).
    pub op: &'static str,
    /// The lemma tag the obligation invoked.
    pub lemma: &'static str,
    /// Whether every check passed.
    pub ok: bool,
    /// Human-readable descriptions of the failed checks.
    pub failures: Vec<String>,
}

/// The outcome of certifying an obligation ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// One verdict per obligation, in ledger order.
    pub steps: Vec<StepVerdict>,
    /// Chain-level findings: U015 certificate gaps (errors) and U012
    /// product-coverage warnings from replayed compositions.
    pub report: Report,
}

impl AuditOutcome {
    /// Whether the whole chain certifies: every step's claims held and no
    /// error-level chain finding fired. Warnings (e.g. U012) are surfaced
    /// but do not revoke the certificate.
    pub fn is_certified(&self) -> bool {
        self.steps.iter().all(|s| s.ok) && !self.report.has_errors()
    }

    /// The steps that failed, in ledger order.
    pub fn failed(&self) -> Vec<&StepVerdict> {
        self.steps.iter().filter(|s| !s.ok).collect()
    }

    /// Renders the outcome as one JSON object (`certified`, `steps`,
    /// `report`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"certified\":");
        out.push_str(if self.is_certified() { "true" } else { "false" });
        out.push_str(",\"steps\":[");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"op\":\"{}\",\"lemma\":\"{}\",\"ok\":{},\"failures\":[",
                s.id, s.op, s.lemma, s.ok
            ));
            for (j, f) in s.failures.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, f);
            }
            out.push_str("]}");
        }
        out.push_str("],\"report\":");
        out.push_str(&self.report.to_json());
        out.push('}');
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn view_str(view: View) -> &'static str {
    match view {
        View::Open => "open",
        View::Closed => "closed",
    }
}

fn opt_rate_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => rates_approx_eq(a, b),
        (None, None) => true,
        _ => false,
    }
}

/// Certifies an obligation ledger: replays every step, recomputes every
/// claim, and checks the fingerprint chain for gaps.
///
/// Replayed operations record nothing (an inner recording session swallows
/// and discards their obligations), so certifying inside an active
/// recording session is safe.
pub fn certify(obligations: &[Obligation]) -> AuditOutcome {
    let (outcome, _replay_obligations) = with_recording(|| certify_inner(obligations));
    outcome
}

fn certify_inner(obligations: &[Obligation]) -> AuditOutcome {
    let mut report = Report::new();
    let mut produced: HashSet<u64> = HashSet::new();
    let mut steps = Vec::with_capacity(obligations.len());
    for ob in obligations {
        let mut failures = claim_failures(ob, &mut report);
        for (k, input) in ob.inputs.iter().enumerate() {
            let fp = input.fingerprint();
            if !produced.contains(&fp) {
                report.push(
                    Diagnostic::new(
                        Code::U015,
                        Severity::Error,
                        format!(
                            "obligation #{} ({}): input {k} with fingerprint {fp:016x} was \
                             not produced by any earlier obligation — an off-ledger \
                             construction step broke the proof chain",
                            ob.id, ob.op
                        ),
                    )
                    .with_hint(
                        "only the certified operators (from_lts/from_ctmc, elapse, hide, \
                         relabel, parallel, branching minimize, transform) record \
                         obligations; route the pipeline through them or certify the \
                         missing step separately",
                    ),
                );
                failures.push(format!(
                    "input {k} fingerprint {fp:016x} has no producing obligation (U015)"
                ));
            }
        }
        produced.insert(ob.output.fingerprint());
        steps.push(StepVerdict {
            id: ob.id,
            op: ob.op,
            lemma: ob.lemma,
            ok: failures.is_empty(),
            failures,
        });
    }
    AuditOutcome { steps, report }
}

/// Re-establishes one obligation's claims; returns the failures. U012
/// product-coverage findings from replayed compositions go into `report`.
fn claim_failures(ob: &Obligation, report: &mut Report) -> Vec<String> {
    let mut f = Vec::new();

    // The recorded uniform rates must match what the objects actually say.
    for (i, (input, claimed)) in ob.inputs.iter().zip(&ob.input_rates).enumerate() {
        let actual = input.uniformity(ob.view).rate();
        if !opt_rate_eq(actual, *claimed) {
            f.push(format!(
                "input {i}: recorded uniform rate {claimed:?} but the object says {actual:?}"
            ));
        }
    }
    let actual_out = ob.output.uniformity(ob.view);
    if !opt_rate_eq(actual_out.rate(), ob.output_rate) {
        f.push(format!(
            "output: recorded uniform rate {:?} but the object says {:?}",
            ob.output_rate,
            actual_out.rate()
        ));
    }

    // The lemma's preservation claim: uniform inputs must yield a uniform
    // output, and when every rate is definite, E_out = Σ E_in.
    if !ob.inputs.is_empty() {
        let in_u: Vec<Uniformity> = ob.inputs.iter().map(|i| i.uniformity(ob.view)).collect();
        if in_u.iter().all(Uniformity::is_uniform) && !actual_out.is_uniform() {
            f.push(format!(
                "{}: uniform inputs produced a non-uniform output ({actual_out:?})",
                ob.lemma
            ));
        }
        let expected: Option<f64> = in_u.iter().map(Uniformity::rate).sum();
        if let (Some(expected), Some(actual)) = (expected, actual_out.rate()) {
            if !rates_approx_eq(expected, actual) {
                f.push(format!(
                    "{}: rate equation violated — inputs sum to {expected} but the \
                     output's uniform rate is {actual}",
                    ob.lemma
                ));
            }
        }
    }

    match &ob.witness {
        Witness::Lts => {
            if ob.output.num_markov() != 0 {
                f.push("from_lts output carries Markov transitions".into());
            }
        }
        Witness::Ctmc { ctmc_fingerprint } => {
            if ob.output.num_interactive() != 0 {
                f.push("from_ctmc output carries interactive transitions".into());
            }
            // The embedding copies the CTMC's triplets verbatim, so the
            // source chain's fingerprint is recomputable from the output.
            let mut h = unicon_numeric::fnv::Fnv64::new();
            h.write(b"ctmc-v1");
            h.write_u64(ob.output.num_states() as u64);
            h.write_u32(ob.output.initial());
            h.write_u64(ob.output.markov().len() as u64);
            for m in ob.output.markov() {
                h.write_u32(m.source);
                h.write_f64(m.rate);
                h.write_u32(m.target);
            }
            let recomputed = h.finish();
            if recomputed != *ctmc_fingerprint {
                f.push(format!(
                    "witness CTMC fingerprint {ctmc_fingerprint:016x} does not match the \
                     chain recomputed from the output ({recomputed:016x})"
                ));
            }
        }
        Witness::Elapse {
            rate,
            gate,
            restart,
            ..
        } => {
            check_constant_exit_rate(&ob.output, *rate, &mut f);
            for (what, name) in [("gate", gate), ("restart", restart)] {
                if ob.output.actions().lookup(name).is_none() {
                    f.push(format!(
                        "elapse {what} action `{name}` is absent from the output's alphabet"
                    ));
                }
            }
        }
        Witness::SharedElapse { rate } => {
            check_constant_exit_rate(&ob.output, *rate, &mut f);
        }
        Witness::Hide { hidden } => {
            let refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
            let replay = ob.inputs[0].hide(&refs);
            if replay.fingerprint() != ob.output.fingerprint() {
                f.push(format!(
                    "replaying hide({hidden:?}) on the recorded input does not reproduce \
                     the recorded output"
                ));
            }
        }
        Witness::Relabel { map } => {
            let refs: Vec<(&str, &str)> =
                map.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let replay = ob.inputs[0].relabel(&refs);
            if replay.fingerprint() != ob.output.fingerprint() {
                f.push(format!(
                    "replaying relabel({map:?}) on the recorded input does not reproduce \
                     the recorded output"
                ));
            }
        }
        Witness::Parallel { sync } => {
            let refs: Vec<&str> = sync.iter().map(String::as_str).collect();
            let (replay, map) = ob.inputs[0].parallel_with_map(&ob.inputs[1], &refs);
            if replay.fingerprint() != ob.output.fingerprint() {
                f.push(format!(
                    "replaying parallel with sync set {sync:?} does not reproduce the \
                     recorded output"
                ));
            }
            report.merge(lint_product(
                ob.inputs[0].num_states(),
                ob.inputs[1].num_states(),
                &map,
            ));
        }
        Witness::Minimize {
            view,
            block,
            num_blocks,
            labels,
        } => check_minimize(ob, *view, block, *num_blocks, labels.as_deref(), &mut f),
        Witness::Transform {
            ctmdp_fingerprint,
            rate,
        } => {
            if !unicon_transform::is_strictly_alternating(&ob.output) {
                f.push("transform output is not strictly alternating".into());
            }
            match unicon_transform::transform(&ob.inputs[0]) {
                Ok(replay) => {
                    if replay.strictly_alternating.fingerprint() != ob.output.fingerprint() {
                        f.push(
                            "replaying the transformation does not reproduce the recorded \
                             strictly alternating IMC"
                                .into(),
                        );
                    }
                    let replay_fp = replay.ctmdp.fingerprint();
                    if replay_fp != *ctmdp_fingerprint {
                        f.push(format!(
                            "witness CTMDP fingerprint {ctmdp_fingerprint:016x} does not \
                             match the replayed extraction ({replay_fp:016x})"
                        ));
                    }
                    if !opt_rate_eq(replay.ctmdp.uniform_rate().ok(), *rate) {
                        f.push(format!(
                            "witness CTMDP rate {rate:?} does not match the replayed \
                             CTMDP's uniform rate {:?}",
                            replay.ctmdp.uniform_rate().ok()
                        ));
                    }
                }
                Err(e) => f.push(format!(
                    "replaying the transformation on the recorded input failed: {e}"
                )),
            }
        }
    }
    f
}

/// Theorem-level claim of the elapse operators: *every* state carries the
/// full uniformization rate (not just the stable ones — that is what makes
/// Lemma 2's rate addition work in every product state).
fn check_constant_exit_rate(out: &Imc, rate: f64, f: &mut Vec<String>) {
    for s in 0..out.num_states() as u32 {
        if !rates_approx_eq(out.exit_rate(s), rate) {
            f.push(format!(
                "state {s} has exit rate {} instead of the witness rate {rate}",
                out.exit_rate(s)
            ));
            return;
        }
    }
}

/// Lemma 3: the witness partition must be a well-formed, label-refining
/// quotient map; rebuilding the quotient must reproduce the output; and an
/// independent recomputation with the reference refiner backend must yield
/// the *same* partition (the coarsest one — so the witness is neither too
/// coarse nor too fine).
fn check_minimize(
    ob: &Obligation,
    view: View,
    block: &[u32],
    num_blocks: usize,
    labels: Option<&[u32]>,
    f: &mut Vec<String>,
) {
    if view != ob.view {
        f.push(format!(
            "witness view {view:?} disagrees with the obligation's view {:?}",
            ob.view
        ));
    }
    let input = &ob.inputs[0];
    let n = input.num_states();
    if block.len() != n {
        f.push(format!(
            "quotient map covers {} states but the input has {n}",
            block.len()
        ));
        return;
    }
    let mut seen = vec![false; num_blocks];
    for (s, &b) in block.iter().enumerate() {
        if (b as usize) >= num_blocks {
            f.push(format!(
                "state {s} is mapped to block {b}, beyond the claimed {num_blocks} blocks"
            ));
            return;
        }
        seen[b as usize] = true;
    }
    if let Some(empty) = seen.iter().position(|&s| !s) {
        f.push(format!("block {empty} of the quotient map is empty"));
        return;
    }
    if let Some(labels) = labels {
        if labels.len() != n {
            f.push(format!(
                "label vector covers {} states but the input has {n}",
                labels.len()
            ));
            return;
        }
        // The partition must refine the labels: merged states agree.
        let mut label_of_block: Vec<Option<u32>> = vec![None; num_blocks];
        for (s, &b) in block.iter().enumerate() {
            match label_of_block[b as usize] {
                None => label_of_block[b as usize] = Some(labels[s]),
                Some(l) if l != labels[s] => {
                    f.push(format!(
                        "block {b} merges states with different labels {l} and {} — the \
                         quotient would conflate goal and non-goal states",
                        labels[s]
                    ));
                    return;
                }
                _ => {}
            }
        }
    }
    let part = Partition {
        block: block.to_vec(),
        num_blocks,
    };
    let replay = bisim::quotient(input, &part, view).restrict_to_reachable();
    if replay.fingerprint() != ob.output.fingerprint() {
        f.push(
            "rebuilding the quotient from the witness partition does not reproduce the \
             recorded output"
                .into(),
        );
    }
    // Independent recomputation: the reference backend (full resweep, not
    // the worklist refiner that produced the witness) must agree exactly.
    let independent = match labels {
        Some(labels) => {
            bisim::reference::stochastic_branching_bisimulation_labeled(input, view, labels)
        }
        None => bisim::reference::stochastic_branching_bisimulation(input, view),
    };
    if independent != part {
        f.push(format!(
            "the reference refiner computes a different partition ({} blocks) than the \
             witness ({num_blocks} blocks) — the witness is not the coarsest stochastic \
             branching bisimulation",
            independent.num_blocks
        ));
    }
}

// ---------------------------------------------------------------------------
// Certificates on disk: flat records, JSONL in, JSONL out.
// ---------------------------------------------------------------------------

/// One certificate record: the obligation's fingerprints, rates and witness
/// summary — everything needed for record-level re-checking, nothing that
/// needs the models themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRecord {
    /// Sequence number (position in the ledger).
    pub id: usize,
    /// Operation name.
    pub op: String,
    /// Lemma tag.
    pub lemma: String,
    /// `"open"` or `"closed"`.
    pub view: String,
    /// Input fingerprints, 16 hex digits each.
    pub inputs: Vec<String>,
    /// Output fingerprint, 16 hex digits.
    pub output: String,
    /// Claimed input uniform rates.
    pub input_rates: Vec<Option<f64>>,
    /// Claimed output uniform rate.
    pub output_rate: Option<f64>,
    /// Witness kind tag (`"hide"`, `"minimize"`, …).
    pub witness_kind: String,
    /// Witness fingerprint (source CTMC, phase-type chain or extracted
    /// CTMDP), if the witness carries one.
    pub witness_fp: Option<String>,
    /// Witness rate (elapse/transform), if the witness carries one.
    pub witness_rate: Option<f64>,
    /// Witness action names (hidden/sync sets, relabel pairs as
    /// `"from->to"`, elapse gate/restart).
    pub witness_actions: Vec<String>,
    /// Number of quotient blocks (minimize witnesses).
    pub witness_blocks: Option<usize>,
}

fn fp_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Summarizes obligations into flat [`CertRecord`]s.
pub fn records(obligations: &[Obligation]) -> Vec<CertRecord> {
    obligations
        .iter()
        .map(|ob| {
            let (witness_fp, witness_rate, witness_actions, witness_blocks) = match &ob.witness {
                Witness::Lts => (None, None, Vec::new(), None),
                Witness::Ctmc { ctmc_fingerprint } => {
                    (Some(fp_hex(*ctmc_fingerprint)), None, Vec::new(), None)
                }
                Witness::Elapse {
                    rate,
                    gate,
                    restart,
                    phase_fingerprint,
                } => (
                    Some(fp_hex(*phase_fingerprint)),
                    Some(*rate),
                    vec![gate.clone(), restart.clone()],
                    None,
                ),
                Witness::SharedElapse { rate } => (None, Some(*rate), Vec::new(), None),
                Witness::Hide { hidden } => (None, None, hidden.clone(), None),
                Witness::Relabel { map } => (
                    None,
                    None,
                    map.iter().map(|(a, b)| format!("{a}->{b}")).collect(),
                    None,
                ),
                Witness::Parallel { sync } => (None, None, sync.clone(), None),
                Witness::Minimize { num_blocks, .. } => (None, None, Vec::new(), Some(*num_blocks)),
                Witness::Transform {
                    ctmdp_fingerprint,
                    rate,
                } => (Some(fp_hex(*ctmdp_fingerprint)), *rate, Vec::new(), None),
            };
            CertRecord {
                id: ob.id,
                op: ob.op.to_owned(),
                lemma: ob.lemma.to_owned(),
                view: view_str(ob.view).to_owned(),
                inputs: ob.inputs.iter().map(|i| fp_hex(i.fingerprint())).collect(),
                output: fp_hex(ob.output.fingerprint()),
                input_rates: ob.input_rates.clone(),
                output_rate: ob.output_rate,
                witness_kind: ob.witness.kind().to_owned(),
                witness_fp,
                witness_rate,
                witness_actions,
                witness_blocks,
            }
        })
        .collect()
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => out.push_str(&format!("{v}")),
        None => out.push_str("null"),
    }
}

/// Serializes records as JSON Lines: one record object per line.
pub fn to_jsonl(records: &[CertRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"id\":{},\"op\":\"{}\",\"lemma\":\"{}\",\"view\":\"{}\",\"inputs\":[",
            r.id, r.op, r.lemma, r.view
        ));
        for (i, fp) in r.inputs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, fp);
        }
        out.push_str("],\"output\":");
        push_json_str(&mut out, &r.output);
        out.push_str(",\"input_rates\":[");
        for (i, rate) in r.input_rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_opt_f64(&mut out, *rate);
        }
        out.push_str("],\"output_rate\":");
        push_opt_f64(&mut out, r.output_rate);
        out.push_str(",\"witness\":{\"kind\":");
        push_json_str(&mut out, &r.witness_kind);
        out.push_str(",\"fp\":");
        match &r.witness_fp {
            Some(fp) => push_json_str(&mut out, fp),
            None => out.push_str("null"),
        }
        out.push_str(",\"rate\":");
        push_opt_f64(&mut out, r.witness_rate);
        out.push_str(",\"actions\":[");
        for (i, a) in r.witness_actions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, a);
        }
        out.push_str("],\"blocks\":");
        match r.witness_blocks {
            Some(b) => out.push_str(&b.to_string()),
            None => out.push_str("null"),
        }
        out.push_str("}}\n");
    }
    out
}

// --- A minimal JSON reader, enough for the certificate schema. -------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: find the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn get<'v>(obj: &'v [(String, JsonValue)], key: &str) -> Result<&'v JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn as_str(v: &JsonValue, key: &str) -> Result<String, String> {
    match v {
        JsonValue::Str(s) => Ok(s.clone()),
        _ => Err(format!("field `{key}` is not a string")),
    }
}

fn as_opt_str(v: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match v {
        JsonValue::Null => Ok(None),
        JsonValue::Str(s) => Ok(Some(s.clone())),
        _ => Err(format!("field `{key}` is not a string or null")),
    }
}

fn as_opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match v {
        JsonValue::Null => Ok(None),
        JsonValue::Num(n) => Ok(Some(*n)),
        _ => Err(format!("field `{key}` is not a number or null")),
    }
}

fn as_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    match v {
        JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        _ => Err(format!("field `{key}` is not a non-negative integer")),
    }
}

fn as_arr<'v>(v: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], String> {
    match v {
        JsonValue::Arr(items) => Ok(items),
        _ => Err(format!("field `{key}` is not an array")),
    }
}

/// Parses a JSONL certificate back into records.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<CertRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut p = JsonParser::new(line);
        let v = p.value().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let JsonValue::Obj(obj) = v else {
            return Err(format!("line {}: record is not an object", lineno + 1));
        };
        let rec = (|| -> Result<CertRecord, String> {
            let witness = match get(&obj, "witness")? {
                JsonValue::Obj(w) => w.clone(),
                _ => return Err("field `witness` is not an object".into()),
            };
            Ok(CertRecord {
                id: as_usize(get(&obj, "id")?, "id")?,
                op: as_str(get(&obj, "op")?, "op")?,
                lemma: as_str(get(&obj, "lemma")?, "lemma")?,
                view: as_str(get(&obj, "view")?, "view")?,
                inputs: as_arr(get(&obj, "inputs")?, "inputs")?
                    .iter()
                    .map(|v| as_str(v, "inputs[]"))
                    .collect::<Result<_, _>>()?,
                output: as_str(get(&obj, "output")?, "output")?,
                input_rates: as_arr(get(&obj, "input_rates")?, "input_rates")?
                    .iter()
                    .map(|v| as_opt_f64(v, "input_rates[]"))
                    .collect::<Result<_, _>>()?,
                output_rate: as_opt_f64(get(&obj, "output_rate")?, "output_rate")?,
                witness_kind: as_str(get(&witness, "kind")?, "witness.kind")?,
                witness_fp: as_opt_str(get(&witness, "fp")?, "witness.fp")?,
                witness_rate: as_opt_f64(get(&witness, "rate")?, "witness.rate")?,
                witness_actions: as_arr(get(&witness, "actions")?, "witness.actions")?
                    .iter()
                    .map(|v| as_str(v, "witness.actions[]"))
                    .collect::<Result<_, _>>()?,
                witness_blocks: match get(&witness, "blocks")? {
                    JsonValue::Null => None,
                    v => Some(as_usize(v, "witness.blocks")?),
                },
            })
        })()
        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Record-level re-check of a certificate: sequential ids, well-formed
/// fingerprints and views, chain linkage (U015) and lemma rate arithmetic.
/// Cannot replay operations — the models are not in the file — but detects
/// tampered, truncated or re-ordered certificates.
pub fn check_records(records: &[CertRecord]) -> Report {
    let mut r = Report::new();
    let mut produced: HashSet<u64> = HashSet::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.id != i {
            r.push(
                Diagnostic::new(
                    Code::U002,
                    Severity::Error,
                    format!(
                        "record {i} carries id {} — certificate re-ordered or truncated",
                        rec.id
                    ),
                )
                .with_hint("regenerate the certificate with `unicon audit --cert-out`"),
            );
        }
        if rec.view != "open" && rec.view != "closed" {
            r.push(Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!("record {i}: unknown view `{}`", rec.view),
            ));
        }
        let mut fps = Vec::new();
        for (k, fp) in rec
            .inputs
            .iter()
            .chain(std::iter::once(&rec.output))
            .enumerate()
        {
            match u64::from_str_radix(fp, 16) {
                Ok(v) => fps.push(v),
                Err(_) => {
                    r.push(Diagnostic::new(
                        Code::U002,
                        Severity::Error,
                        format!("record {i}: fingerprint {k} (`{fp}`) is not 64-bit hex"),
                    ));
                }
            }
        }
        if fps.len() == rec.inputs.len() + 1 {
            for (k, &fp) in fps[..rec.inputs.len()].iter().enumerate() {
                if !produced.contains(&fp) {
                    r.push(
                        Diagnostic::new(
                            Code::U015,
                            Severity::Error,
                            format!(
                                "record {i} ({}): input {k} with fingerprint {fp:016x} was \
                                 not produced by any earlier record — certificate gap",
                                rec.op
                            ),
                        )
                        .with_hint(
                            "an off-ledger construction step (or a deleted record) broke \
                             the proof chain",
                        ),
                    );
                }
            }
            produced.insert(*fps.last().expect("output fingerprint parsed"));
        }
        if rec.input_rates.len() != rec.inputs.len() {
            r.push(Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!(
                    "record {i}: {} input rates for {} inputs",
                    rec.input_rates.len(),
                    rec.inputs.len()
                ),
            ));
        }
        // Lemma rate arithmetic, from the record's own claims.
        if !rec.inputs.is_empty() {
            let expected: Option<f64> = rec.input_rates.iter().copied().sum();
            if let (Some(expected), Some(actual)) = (expected, rec.output_rate) {
                if !rates_approx_eq(expected, actual) {
                    r.push(
                        Diagnostic::new(
                            Code::U001,
                            Severity::Error,
                            format!(
                                "record {i} ({}, {}): claimed input rates sum to {expected} \
                                 but the claimed output rate is {actual}",
                                rec.op, rec.lemma
                            ),
                        )
                        .with_hint("the certificate's rate claims violate the lemma"),
                    );
                }
            }
        }
        // Leaf rate claims: the elapse witnesses pin the output rate.
        if (rec.witness_kind == "elapse" || rec.witness_kind == "shared_elapse")
            && !opt_rate_eq(rec.output_rate, rec.witness_rate)
        {
            r.push(Diagnostic::new(
                Code::U001,
                Severity::Error,
                format!(
                    "record {i} ({}): witness rate {:?} disagrees with the claimed output \
                     rate {:?}",
                    rec.op, rec.witness_rate, rec.output_rate
                ),
            ));
        }
        if rec.lemma == lemma::THEOREM1 && rec.witness_fp.is_none() {
            r.push(Diagnostic::new(
                Code::U002,
                Severity::Error,
                format!("record {i}: transform record without a CTMDP fingerprint"),
            ));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_ctmc::PhaseType;
    use unicon_imc::elapse;
    use unicon_imc::ImcBuilder;
    use unicon_lts::LtsBuilder;

    fn pipeline() -> (Imc, Vec<Obligation>) {
        with_recording(|| {
            let mut b = LtsBuilder::new(2, 0);
            b.add("fail", 0, 1);
            b.add("repair", 1, 0);
            let component = Imc::from_lts(&b.build());
            let delay = PhaseType::exponential(0.5).uniformize_at_max();
            let constraint = elapse::elapse(&delay, "fail", "repair");
            let timed = constraint.parallel(&component, &["fail", "repair"]);
            let hidden = timed.hide(&["fail", "repair"]);
            bisim::minimize(&hidden, View::Open)
        })
    }

    #[test]
    fn clean_pipeline_certifies() {
        let (_, obligations) = pipeline();
        assert!(obligations.len() >= 5, "ops: {:?}", obligations.len());
        let outcome = certify(&obligations);
        assert!(
            outcome.is_certified(),
            "failures: {:#?}, report: {:?}",
            outcome.failed(),
            outcome.report.diagnostics()
        );
        assert!(outcome.to_json().contains("\"certified\":true"));
    }

    #[test]
    fn off_ledger_step_leaves_a_u015_gap() {
        let ((), obligations) = with_recording(|| {
            let mut b = ImcBuilder::new(3, 0);
            b.markov(0, 2.0, 1);
            b.markov(1, 2.0, 2);
            b.interactive("a", 2, 0);
            let m = b.build();
            // minimize_strong is intentionally uncertified: its output
            // enters the next op with no producing obligation.
            let reduced = bisim::minimize_strong(&m, View::Open);
            let _ = reduced.hide(&["a"]);
        });
        let outcome = certify(&obligations);
        assert!(!outcome.is_certified());
        assert!(outcome
            .report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::U015));
    }

    #[test]
    fn tampered_minimize_witness_is_rejected() {
        let (_, mut obligations) = pipeline();
        let idx = obligations
            .iter()
            .position(|o| matches!(o.witness, Witness::Minimize { .. }))
            .expect("pipeline minimizes");
        if let Witness::Minimize { block, .. } = &mut obligations[idx].witness {
            // Move one state into a different (existing) block.
            let n = block.len();
            block[n - 1] = (block[n - 1] + 1) % 2;
        }
        let outcome = certify(&obligations);
        assert!(!outcome.is_certified());
        assert!(!outcome.steps[idx].ok, "{:#?}", outcome.steps[idx]);
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let (_, obligations) = pipeline();
        let recs = records(&obligations);
        let text = to_jsonl(&recs);
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, recs);
        assert!(check_records(&parsed).is_clean());
    }

    #[test]
    fn truncated_certificate_fails_record_check() {
        let (_, obligations) = pipeline();
        let recs = records(&obligations);
        // Drop the first record: later inputs lose their producer.
        let report = check_records(&recs[1..]);
        assert!(report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::U015 || d.code == Code::U002));
    }

    #[test]
    fn tampered_rate_claim_fails_record_check() {
        let (_, obligations) = pipeline();
        let mut recs = records(&obligations);
        let idx = recs
            .iter()
            .position(|r| r.op == "parallel")
            .expect("pipeline composes");
        recs[idx].output_rate = Some(recs[idx].output_rate.unwrap_or(1.0) * 3.0);
        let report = check_records(&recs);
        assert!(report.has_errors());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_jsonl("{\"id\":0").is_err());
        assert!(parse_jsonl("[]").is_err());
        assert!(parse_jsonl("{\"id\":0}").is_err());
    }
}
