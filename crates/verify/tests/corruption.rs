//! Corruption detection: seeded mutations of recorded witness data must
//! each make certification fail at exactly the tampered obligation.
//!
//! These tests are the negative side of the `certify` contract. The
//! positive side (a clean pipeline certifies) is covered in the crate's
//! unit tests and the FTWC integration tests; here we prove the checker
//! is not vacuous — every class of witness it consumes is load-bearing,
//! and a single corrupted claim is pinpointed without collateral
//! failures at other obligations.

use unicon_ctmc::PhaseType;
use unicon_imc::audit::{with_recording, Obligation, Witness};
use unicon_imc::{bisim, elapse, Imc, View};
use unicon_lts::LtsBuilder;
use unicon_numeric::rng::{Rng, XorShift64};
use unicon_verify::certify;

/// A small certified pipeline exercising every witness class the FTWC
/// route uses: leaf, elapse, parallel, hide, minimize.
fn pipeline() -> Vec<Obligation> {
    let (_, obligations) = with_recording(|| -> Imc {
        let mut b = LtsBuilder::new(2, 0);
        b.add("fail", 0, 1);
        b.add("repair", 1, 0);
        let component = Imc::from_lts(&b.build());
        let delay = PhaseType::erlang(2, 1.5).uniformize_at_max();
        let constraint = elapse::elapse(&delay, "fail", "repair");
        let timed = constraint.parallel(&component, &["fail", "repair"]);
        let hidden = timed.hide(&["fail", "repair"]);
        // Alternating labels keep the quotient from collapsing to one
        // block, so there is a second block to misassign states into.
        let labels: Vec<u32> = (0..hidden.num_states() as u32).map(|s| s % 2).collect();
        bisim::minimize_labeled(&hidden, View::Open, &labels).0
    });
    obligations
}

/// Asserts that exactly the obligation at `idx` fails and every other
/// step still verifies — corruption is *localized*, not cascading.
fn assert_only_step_fails(obligations: &[Obligation], idx: usize) {
    let outcome = certify(obligations);
    assert!(!outcome.is_certified(), "tampered chain must not certify");
    for s in &outcome.steps {
        if s.id == idx {
            assert!(!s.ok, "obligation #{idx} must fail: {s:#?}");
            assert!(!s.failures.is_empty());
        } else {
            assert!(
                s.ok,
                "only obligation #{idx} should fail, but #{} did too: {:?}",
                s.id, s.failures
            );
        }
    }
}

#[test]
fn clean_pipeline_is_the_baseline() {
    let obligations = pipeline();
    let outcome = certify(&obligations);
    assert!(
        outcome.is_certified(),
        "baseline must certify before corruption tests mean anything: {:#?}",
        outcome.failed()
    );
}

#[test]
fn corrupted_quotient_map_is_caught_at_the_minimize_obligation() {
    let mut rng = XorShift64::seed_from_u64(0xB10C);
    let mut obligations = pipeline();
    let idx = obligations
        .iter()
        .position(|o| matches!(o.witness, Witness::Minimize { .. }))
        .expect("pipeline minimizes");
    let Witness::Minimize {
        block, num_blocks, ..
    } = &mut obligations[idx].witness
    else {
        unreachable!()
    };
    assert!(*num_blocks >= 2, "need at least two blocks to misassign");
    // Move a seeded-random state into a different (existing) block, so the
    // map stays well-formed and only the semantics are wrong.
    let s = (rng.next_u64() as usize) % block.len();
    block[s] = (block[s] + 1) % *num_blocks as u32;
    assert_only_step_fails(&obligations, idx);
}

#[test]
fn corrupted_hidden_action_set_is_caught_at_the_hide_obligation() {
    let mut rng = XorShift64::seed_from_u64(0x41DE);
    let mut obligations = pipeline();
    let idx = obligations
        .iter()
        .position(|o| matches!(o.witness, Witness::Hide { .. }))
        .expect("pipeline hides");
    let Witness::Hide { hidden } = &mut obligations[idx].witness else {
        unreachable!()
    };
    assert!(hidden.len() >= 2);
    // Drop a seeded-random action from the recorded hiding set: the
    // replayed hide no longer reproduces the recorded output.
    let drop = (rng.next_u64() as usize) % hidden.len();
    hidden.remove(drop);
    assert_only_step_fails(&obligations, idx);
}

#[test]
fn corrupted_exit_rate_witness_is_caught_at_the_elapse_obligation() {
    let mut rng = XorShift64::seed_from_u64(0xE1A9);
    let mut obligations = pipeline();
    let idx = obligations
        .iter()
        .position(|o| matches!(o.witness, Witness::Elapse { .. }))
        .expect("pipeline elapses");
    let Witness::Elapse { rate, .. } = &mut obligations[idx].witness else {
        unreachable!()
    };
    // Scale the claimed uniformization rate by a seeded factor in
    // [1.5, 2.5) — far outside the rate tolerance.
    let factor = 1.5 + (rng.next_u64() as f64 / u64::MAX as f64);
    *rate *= factor;
    assert_only_step_fails(&obligations, idx);
}

#[test]
fn every_seed_localizes_the_corruption() {
    // The three mutation classes above, re-run across seeds: detection
    // must not depend on which state/action the seed happens to pick.
    for seed in 0..8u64 {
        let mut rng = XorShift64::seed_from_u64(seed);
        let mut obligations = pipeline();
        let idx = match seed % 3 {
            0 => {
                let idx = obligations
                    .iter()
                    .position(|o| matches!(o.witness, Witness::Minimize { .. }))
                    .unwrap();
                if let Witness::Minimize {
                    block, num_blocks, ..
                } = &mut obligations[idx].witness
                {
                    let s = (rng.next_u64() as usize) % block.len();
                    block[s] = (block[s] + 1) % *num_blocks as u32;
                }
                idx
            }
            1 => {
                let idx = obligations
                    .iter()
                    .position(|o| matches!(o.witness, Witness::Hide { .. }))
                    .unwrap();
                if let Witness::Hide { hidden } = &mut obligations[idx].witness {
                    let drop = (rng.next_u64() as usize) % hidden.len();
                    hidden.remove(drop);
                }
                idx
            }
            _ => {
                let idx = obligations
                    .iter()
                    .position(|o| matches!(o.witness, Witness::Elapse { .. }))
                    .unwrap();
                if let Witness::Elapse { rate, .. } = &mut obligations[idx].witness {
                    *rate *= 1.5 + (rng.next_u64() as f64 / u64::MAX as f64);
                }
                idx
            }
        };
        assert_only_step_fails(&obligations, idx);
    }
}
