//! Uniformity by construction: the paper's headline API.
//!
//! [`UniformImc`] wraps an IMC together with its uniform rate and only
//! offers operations that *provably preserve uniformity* — hiding (Lemma 1),
//! parallel composition (Lemma 2, rates add), relabelling, and stochastic
//! branching bisimulation minimization (Lemma 3 / Corollary 1). A model
//! assembled through this type is therefore uniform by construction, and
//! [`PreparedModel`] closes it, runs the uIMC → uCTMDP transformation and
//! exposes worst-/best-case timed reachability.
//!
//! In debug builds every operation re-verifies the invariant; release
//! builds trust the lemmas (that is the point of the paper).
//!
//! # Examples
//!
//! A two-component system — a job that can only finish after an
//! exponentially distributed service delay, competing against a deadline:
//!
//! ```
//! use unicon_core::{PreparedModel, UniformImc};
//! use unicon_ctmc::PhaseType;
//! use unicon_lts::LtsBuilder;
//!
//! // Functional behaviour: work --finish--> done (--restart--> work).
//! let mut b = LtsBuilder::new(2, 0);
//! b.add("finish", 0, 1);
//! b.add("restart", 1, 0);
//! let job = UniformImc::from_lts(&b.build());
//!
//! // Timing: `finish` takes an Erlang(2) distributed delay, restarting on
//! // `restart`.
//! let delay = PhaseType::erlang(2, 3.0).uniformize_at_max();
//! let constraint = UniformImc::from_elapse(&delay, "finish", "restart");
//!
//! // Uniform by construction: 0 (LTS) + 3.0 (constraint).
//! let system = constraint.parallel(&job, &["finish", "restart"]);
//! assert_eq!(system.rate(), 3.0);
//!
//! // Goal: the job is done.
//! let goal: Vec<bool> = (0..system.imc().num_states())
//!     .map(|s| {
//!         system.imc().interactive_from(s as u32).iter().any(|t| {
//!             system.imc().actions().name(t.action) == "restart"
//!         })
//!     })
//!     .collect();
//! let prepared = PreparedModel::new(&system.close(), &goal).expect("transformable");
//! let res = prepared.worst_case(1.0, 1e-9).expect("uniform");
//! let p = res.values[prepared.ctmdp.initial() as usize];
//! assert!(p > 0.0 && p < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use unicon_ctmc::phase_type::UniformPhaseType;
use unicon_ctmdp::par::ReachBatch;
use unicon_ctmdp::reachability::{self, Objective, ReachError, ReachOptions, ReachResult};
use unicon_ctmdp::Ctmdp;
use unicon_imc::{bisim, elapse, Imc, Uniformity, View};

pub use unicon_imc::bisim::Refiner;
use unicon_lts::Lts;
use unicon_transform::{transform, TransformError, TransformStats};

/// Error returned when a model fails the uniformity check.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformityError {
    /// The offending check result.
    pub details: Uniformity,
}

impl std::fmt::Display for UniformityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.details {
            Uniformity::NonUniform {
                state_a,
                rate_a,
                state_b,
                rate_b,
            } => write!(
                f,
                "model is not uniform: stable state {state_a} has exit rate {rate_a}, \
                 stable state {state_b} has exit rate {rate_b}"
            ),
            _ => write!(f, "model unexpectedly failed the uniformity check"),
        }
    }
}

impl std::error::Error for UniformityError {}

/// An IMC that is **uniform by construction**.
///
/// Every constructor establishes the invariant (checking it where it is not
/// guaranteed by a lemma) and every operation preserves it, so the wrapped
/// model can always be fed to the uniform-CTMDP timed-reachability
/// algorithm after transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformImc {
    imc: Imc,
    rate: f64,
}

impl UniformImc {
    /// Wraps an arbitrary IMC after verifying uniformity (open view, over
    /// reachable states).
    ///
    /// # Errors
    ///
    /// [`UniformityError`] if two reachable stable states have different
    /// exit rates.
    pub fn try_new(imc: Imc) -> Result<Self, UniformityError> {
        match imc.uniformity(View::Open) {
            Uniformity::Uniform(rate) => Ok(Self { imc, rate }),
            Uniformity::Vacuous => Ok(Self { imc, rate: 0.0 }),
            details @ Uniformity::NonUniform { .. } => Err(UniformityError { details }),
        }
    }

    /// Embeds an LTS — uniform with rate 0 by definition.
    pub fn from_lts(lts: &Lts) -> Self {
        Self {
            imc: Imc::from_lts(lts),
            rate: 0.0,
        }
    }

    /// Builds a time-constraint IMC `El(Ph, f, r)` — uniform with the
    /// phase-type's uniformization rate by construction.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`elapse::elapse`].
    pub fn from_elapse(ph: &UniformPhaseType, f: &str, r: &str) -> Self {
        let imc = elapse::elapse(ph, f, r);
        let out = Self {
            imc,
            rate: ph.rate(),
        };
        out.debug_check();
        out
    }

    /// Builds a shared (mutually exclusive) multi-way time constraint —
    /// see [`elapse::shared_elapse`].
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`elapse::shared_elapse`].
    pub fn from_shared_elapse(branches: &[(&str, &str, &UniformPhaseType)]) -> Self {
        let rate = branches
            .first()
            .map(|(_, _, ph)| ph.rate())
            .unwrap_or_default();
        let out = Self {
            imc: elapse::shared_elapse(branches),
            rate,
        };
        out.debug_check();
        out
    }

    /// The uniform rate `E`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The wrapped IMC.
    pub fn imc(&self) -> &Imc {
        &self.imc
    }

    /// Unwraps the IMC.
    pub fn into_inner(self) -> Imc {
        self.imc
    }

    /// Parallel composition (Lemma 2): uniform with rate
    /// `self.rate() + other.rate()`.
    ///
    /// # Panics
    ///
    /// Panics if `sync` contains τ.
    pub fn parallel(&self, other: &UniformImc, sync: &[&str]) -> UniformImc {
        let out = Self {
            imc: self.imc.parallel(&other.imc, sync),
            rate: self.rate + other.rate,
        };
        out.debug_check();
        out
    }

    /// Alphabetized parallel composition: synchronizes on **all** visible
    /// actions the two alphabets share (CSP-style `A ‖ B`).
    ///
    /// This is the safe default when composing time constraints that
    /// reference each other's actions — e.g. a failure-delay constraint
    /// restarted by `repair` together with a repair-delay constraint
    /// restarted by `fail`: a single occurrence of `fail` must be the gate
    /// of one constraint *and* the restart of the other simultaneously.
    /// Interleaving shared actions instead silently drops the gating.
    pub fn compose(&self, other: &UniformImc) -> UniformImc {
        let shared: Vec<&str> = self.imc.shared_alphabet(&other.imc);
        self.parallel(other, &shared)
    }

    /// Like [`UniformImc::compose`], additionally returning the per-product
    /// state component pair.
    pub fn compose_with_map(&self, other: &UniformImc) -> (UniformImc, Vec<(u32, u32)>) {
        let shared: Vec<&str> = self.imc.shared_alphabet(&other.imc);
        self.parallel_with_map(other, &shared)
    }

    /// Like [`UniformImc::parallel`], additionally returning, for every
    /// product state, the pair of component states it represents — needed
    /// to evaluate state predicates (goal sets) on the composition.
    ///
    /// # Panics
    ///
    /// Panics if `sync` contains τ.
    pub fn parallel_with_map(
        &self,
        other: &UniformImc,
        sync: &[&str],
    ) -> (UniformImc, Vec<(u32, u32)>) {
        let (imc, map) = self.imc.parallel_with_map(&other.imc, sync);
        let out = Self {
            imc,
            rate: self.rate + other.rate,
        };
        out.debug_check();
        (out, map)
    }

    /// Hiding (Lemma 1): uniformity and rate are preserved.
    pub fn hide(&self, actions: &[&str]) -> UniformImc {
        let out = Self {
            imc: self.imc.hide(actions),
            rate: self.rate,
        };
        out.debug_check();
        out
    }

    /// Relabelling: purely syntactic, preserves uniformity.
    ///
    /// # Panics
    ///
    /// Panics if τ appears as a source label.
    pub fn relabel(&self, map: &[(&str, &str)]) -> UniformImc {
        let out = Self {
            imc: self.imc.relabel(map),
            rate: self.rate,
        };
        out.debug_check();
        out
    }

    /// Stochastic branching bisimulation minimization (Lemma 3 /
    /// Corollary 1): the quotient is uniform with the same rate.
    pub fn minimize(&self) -> UniformImc {
        let out = Self {
            imc: bisim::minimize(&self.imc, View::Open),
            rate: self.rate,
        };
        out.debug_check();
        out
    }

    /// Label-respecting minimization: returns the quotient and the labels
    /// of its states.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the state count.
    pub fn minimize_labeled(&self, labels: &[u32]) -> (UniformImc, Vec<u32>) {
        self.minimize_labeled_with(labels, Refiner::default())
    }

    /// Like [`UniformImc::minimize_labeled`], with an explicit refiner
    /// backend. Both backends produce bitwise-identical quotients; the
    /// reference backend exists so `bench-build` can time the seed
    /// algorithm on the same pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the state count.
    pub fn minimize_labeled_with(
        &self,
        labels: &[u32],
        refiner: Refiner,
    ) -> (UniformImc, Vec<u32>) {
        let (imc, new_labels) =
            bisim::minimize_labeled_with(&self.imc, View::Open, labels, refiner);
        let out = Self {
            imc,
            rate: self.rate,
        };
        out.debug_check();
        (out, new_labels)
    }

    /// Restricts to reachable states.
    pub fn restrict_to_reachable(&self) -> UniformImc {
        Self {
            imc: self.imc.restrict_to_reachable(),
            rate: self.rate,
        }
    }

    /// Switches to the **closed system view**: the model is complete, no
    /// further composition will happen, and the urgency assumption (every
    /// interactive transition pre-empts Markov transitions) applies.
    ///
    /// Sound because closed-view stability implies open-view stability:
    /// every state the urgency check inspects was already checked by the
    /// open-view invariant.
    pub fn close(&self) -> ClosedModel {
        ClosedModel {
            imc: self.imc.clone(),
            rate: self.rate,
        }
    }

    /// In debug builds: re-verify the invariant the lemmas guarantee.
    fn debug_check(&self) {
        debug_assert!(
            {
                let u = self.imc.uniformity(View::Open);
                match u {
                    Uniformity::Uniform(e) => unicon_numeric::rates_approx_eq(e, self.rate),
                    Uniformity::Vacuous => true,
                    Uniformity::NonUniform { .. } => false,
                }
            },
            "uniformity-by-construction invariant violated: {:?}",
            self.imc.uniformity(View::Open)
        );
        // Route the same claim through the static-analysis pass: an open
        // model under construction must never trip the uniformity lint.
        #[cfg(debug_assertions)]
        {
            let report = unicon_verify::lint_imc(
                &self.imc,
                &unicon_verify::LintOptions { view: View::Open },
            );
            let uniformity_errors: Vec<_> = report
                .diagnostics()
                .iter()
                .filter(|d| d.code == unicon_verify::Code::U001)
                .collect();
            assert!(
                uniformity_errors.is_empty(),
                "unicon-verify flags a model the lemmas promised uniform: \
                 {uniformity_errors:?}"
            );
        }
    }
}

/// A *complete* model under the closed system view: uniform with respect to
/// urgency (every interactive transition pre-empts Markov transitions).
///
/// Unlike [`UniformImc`], a closed model offers **no composition
/// operators** — the urgency assumption is incompatible with composition,
/// as the paper stresses. Obtain one via [`UniformImc::close`] (for models
/// built compositionally) or [`ClosedModel::try_new`] (for models generated
/// directly in closed form, like the FTWC counter generator, whose
/// visible decision actions make them non-uniform under maximal progress
/// but uniform under urgency).
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedModel {
    imc: Imc,
    rate: f64,
}

impl ClosedModel {
    /// Wraps a complete IMC after verifying uniformity under the closed
    /// view (urgency) over reachable states.
    ///
    /// # Errors
    ///
    /// [`UniformityError`] if two reachable urgency-stable states have
    /// different exit rates.
    pub fn try_new(imc: Imc) -> Result<Self, UniformityError> {
        match imc.uniformity(View::Closed) {
            Uniformity::Uniform(rate) => Ok(Self { imc, rate }),
            Uniformity::Vacuous => Ok(Self { imc, rate: 0.0 }),
            details @ Uniformity::NonUniform { .. } => Err(UniformityError { details }),
        }
    }

    /// The uniform rate `E`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The wrapped IMC.
    pub fn imc(&self) -> &Imc {
        &self.imc
    }

    /// Unwraps the IMC.
    pub fn into_inner(self) -> Imc {
        self.imc
    }
}

/// A closed, transformed model ready for timed reachability analysis.
#[derive(Debug, Clone)]
pub struct PreparedModel {
    /// The extracted uniform CTMDP.
    pub ctmdp: Ctmdp,
    /// Goal vector over the CTMDP's states.
    pub goal: Vec<bool>,
    /// Transformation statistics (Table-1 columns).
    pub stats: TransformStats,
}

impl PreparedModel {
    /// Transforms a closed model to a uniform CTMDP and maps the goal
    /// predicate through the transformation (zero-time-closure semantics,
    /// see [`unicon_transform::TransformOutput::goal_vector`]).
    ///
    /// Visible action labels survive into the CTMDP's words, keeping the
    /// remaining nondeterminism legible; the transformation's urgency step
    /// treats visible and internal actions alike, as the closed view
    /// demands.
    ///
    /// `goal[s]` refers to state `s` of `model.imc()`.
    ///
    /// # Errors
    ///
    /// [`TransformError`] on Zeno behaviour or reachable dead ends.
    ///
    /// # Panics
    ///
    /// Panics if `goal.len()` does not match the model's state count.
    pub fn new(model: &ClosedModel, goal: &[bool]) -> Result<Self, TransformError> {
        assert_eq!(
            goal.len(),
            model.imc().num_states(),
            "goal vector length mismatch"
        );
        let out = transform(model.imc())?;
        let goal = out.goal_vector(goal);
        Ok(Self {
            ctmdp: out.ctmdp,
            goal,
            stats: out.stats,
        })
    }

    /// Worst-case (supremum over schedulers) timed reachability of the goal
    /// within `t`.
    ///
    /// # Errors
    ///
    /// [`ReachError::NotUniform`] if the CTMDP is non-uniform (cannot
    /// happen for models built through [`UniformImc`]) and
    /// [`ReachError::InvalidEpsilon`] if `epsilon` lies outside `(0, 1)`.
    pub fn worst_case(&self, t: f64, epsilon: f64) -> Result<ReachResult, ReachError> {
        reachability::timed_reachability(
            &self.ctmdp,
            &self.goal,
            t,
            &ReachOptions::default().with_epsilon(epsilon),
        )
    }

    /// Best-case (infimum over schedulers) timed reachability.
    ///
    /// # Errors
    ///
    /// See [`PreparedModel::worst_case`].
    pub fn best_case(&self, t: f64, epsilon: f64) -> Result<ReachResult, ReachError> {
        reachability::timed_reachability(
            &self.ctmdp,
            &self.goal,
            t,
            &ReachOptions::default()
                .with_epsilon(epsilon)
                .with_objective(Objective::Minimize),
        )
    }

    /// Starts a batched timed-reachability request against the prepared
    /// CTMDP and goal: many time bounds answered in one pass, sharing the
    /// CSR traversal structures and Fox–Glynn weight vectors, optionally
    /// split over worker threads (results stay bitwise identical to
    /// single-query, single-threaded analysis).
    pub fn reach_batch(&self) -> ReachBatch<'_> {
        ReachBatch::new(&self.ctmdp, &self.goal)
    }

    /// Worst-case probability from the initial state.
    ///
    /// # Errors
    ///
    /// See [`PreparedModel::worst_case`].
    pub fn worst_case_from_initial(&self, t: f64, epsilon: f64) -> Result<f64, ReachError> {
        Ok(self
            .worst_case(t, epsilon)?
            .from_state(self.ctmdp.initial()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_ctmc::PhaseType;
    use unicon_imc::ImcBuilder;
    use unicon_lts::LtsBuilder;
    use unicon_numeric::assert_close;
    use unicon_numeric::special::erlang_cdf;

    fn job_lts() -> Lts {
        let mut b = LtsBuilder::new(2, 0);
        b.add("finish", 0, 1);
        b.add("restart", 1, 0);
        b.build()
    }

    #[test]
    fn lts_is_rate_zero() {
        let u = UniformImc::from_lts(&job_lts());
        assert_eq!(u.rate(), 0.0);
    }

    #[test]
    fn try_new_accepts_uniform_and_rejects_nonuniform() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 2.0, 1);
        b.markov(1, 2.0, 0);
        assert!(UniformImc::try_new(b.build()).is_ok());

        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 2.0, 0);
        let e = UniformImc::try_new(b.build()).unwrap_err();
        assert!(e.to_string().contains("not uniform"));
    }

    #[test]
    fn composition_adds_rates() {
        let a =
            UniformImc::from_elapse(&PhaseType::exponential(1.5).uniformize_at_max(), "f1", "r1");
        let b = UniformImc::from_elapse(&PhaseType::erlang(2, 2.0).uniformize_at_max(), "f2", "r2");
        let c = a.parallel(&b, &[]);
        assert_close!(c.rate(), 3.5, 1e-12);
    }

    #[test]
    fn hide_relabel_minimize_keep_rate() {
        let a = UniformImc::from_elapse(&PhaseType::exponential(1.0).uniformize_at_max(), "f", "r");
        assert_eq!(a.hide(&["f"]).rate(), 1.0);
        assert_eq!(a.relabel(&[("f", "g")]).rate(), 1.0);
        assert_eq!(a.minimize().rate(), 1.0);
    }

    #[test]
    fn end_to_end_erlang_deadline() {
        // The probability that the Erlang(2, 3) delayed `finish` happens
        // within t equals the Erlang cdf; there is no nondeterminism, so
        // worst and best case coincide with it.
        let delay = PhaseType::erlang(2, 3.0).uniformize_at_max();
        let constraint = UniformImc::from_elapse(&delay, "finish", "restart");
        let job = UniformImc::from_lts(&job_lts());
        let system = constraint.parallel(&job, &["finish", "restart"]);
        // goal: job component in state "done", i.e. offers `restart`
        let goal: Vec<bool> = (0..system.imc().num_states() as u32)
            .map(|s| {
                system
                    .imc()
                    .interactive_from(s)
                    .iter()
                    .any(|t| system.imc().actions().name(t.action) == "restart")
            })
            .collect();
        let prepared = PreparedModel::new(&system.close(), &goal).expect("transformable");
        for t in [0.2, 0.7, 2.0] {
            let worst = prepared.worst_case_from_initial(t, 1e-10).unwrap();
            assert_close!(worst, erlang_cdf(2, 3.0, t), 1e-8);
            let best = prepared
                .best_case(t, 1e-10)
                .unwrap()
                .from_state(prepared.ctmdp.initial());
            assert_close!(best, worst, 1e-8);
        }
    }

    #[test]
    fn minimize_labeled_keeps_goal_distinction() {
        let delay = PhaseType::erlang(3, 2.0).uniformize_at_max();
        let constraint = UniformImc::from_elapse(&delay, "finish", "restart");
        let job = UniformImc::from_lts(&job_lts());
        let system = constraint.parallel(&job, &["finish", "restart"]);
        let labels: Vec<u32> = (0..system.imc().num_states() as u32)
            .map(|s| {
                u32::from(
                    system
                        .imc()
                        .interactive_from(s)
                        .iter()
                        .any(|t| system.imc().actions().name(t.action) == "restart"),
                )
            })
            .collect();
        let (small, new_labels) = system.minimize_labeled(&labels);
        assert!(small.imc().num_states() <= system.imc().num_states());
        assert_eq!(new_labels.len(), small.imc().num_states());
        // both label classes survive
        assert!(new_labels.contains(&0) && new_labels.contains(&1));
        // minimized-then-analyzed equals directly-analyzed
        let goal_small: Vec<bool> = new_labels.iter().map(|&l| l == 1).collect();
        let goal_big: Vec<bool> = labels.iter().map(|&l| l == 1).collect();
        let p_small = PreparedModel::new(&small.close(), &goal_small)
            .unwrap()
            .worst_case_from_initial(1.0, 1e-10)
            .unwrap();
        let p_big = PreparedModel::new(&system.close(), &goal_big)
            .unwrap()
            .worst_case_from_initial(1.0, 1e-10)
            .unwrap();
        assert_close!(p_small, p_big, 1e-8);
    }

    #[test]
    fn closed_model_checks_urgency_view() {
        // A state with a visible action and Markov rate 0 is stable under
        // maximal progress (open view) but unstable under urgency.
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("decide", 0, 1);
        b.markov(1, 2.0, 0);
        let imc = b.build();
        // open view: state 0 stable with rate 0, state 1 stable with 2.0
        assert!(UniformImc::try_new(imc.clone()).is_err());
        // closed view: state 0 is pre-empted, only state 1 counts
        let closed = ClosedModel::try_new(imc).expect("closed-uniform");
        assert_eq!(closed.rate(), 2.0);
        assert_eq!(closed.imc().num_states(), 2);
    }

    #[test]
    fn close_preserves_rate_and_model() {
        let u = UniformImc::from_elapse(&PhaseType::exponential(1.5).uniformize_at_max(), "f", "r");
        let c = u.close();
        assert_eq!(c.rate(), u.rate());
        assert_eq!(c.imc(), u.imc());
        let inner = c.into_inner();
        assert_eq!(&inner, u.imc());
    }

    #[test]
    fn compose_synchronizes_on_shared_alphabet() {
        // Two constraints referencing each other's actions: `compose`
        // must synchronize both shared actions, `parallel(&[], ..)` would
        // interleave them and break the gating.
        let a = UniformImc::from_elapse(&PhaseType::exponential(1.0).uniformize_at_max(), "f", "r");
        let b = UniformImc::from_elapse(&PhaseType::exponential(2.0).uniformize_at_max(), "r", "f");
        let composed = a.compose(&b);
        assert_eq!(composed.rate(), 3.0);
        // in the composition, `f` is only enabled when constraint a's
        // completion state is reached: the initial state offers nothing
        let f = composed.imc().actions().lookup("f").unwrap();
        assert!(composed
            .imc()
            .interactive_from(composed.imc().initial())
            .iter()
            .all(|t| t.action != f));
        // interleaving instead offers f immediately (via b's restart alone)
        let interleaved = a.parallel(&b, &[]);
        let f2 = interleaved.imc().actions().lookup("f").unwrap();
        assert!(interleaved
            .imc()
            .interactive_from(interleaved.imc().initial())
            .iter()
            .any(|t| t.action == f2));
    }

    #[test]
    fn compose_with_disjoint_alphabets_interleaves() {
        let a =
            UniformImc::from_elapse(&PhaseType::exponential(1.0).uniformize_at_max(), "f1", "r1");
        let b =
            UniformImc::from_elapse(&PhaseType::exponential(2.0).uniformize_at_max(), "f2", "r2");
        let c1 = a.compose(&b);
        let c2 = a.parallel(&b, &[]);
        assert_eq!(c1.imc().num_states(), c2.imc().num_states());
        assert_eq!(c1.imc().num_interactive(), c2.imc().num_interactive());
    }

    #[test]
    fn reach_batch_matches_single_queries_bitwise() {
        let delay = PhaseType::erlang(2, 3.0).uniformize_at_max();
        let constraint = UniformImc::from_elapse(&delay, "finish", "restart");
        let job = UniformImc::from_lts(&job_lts());
        let system = constraint.parallel(&job, &["finish", "restart"]);
        let goal: Vec<bool> = (0..system.imc().num_states() as u32)
            .map(|s| {
                system
                    .imc()
                    .interactive_from(s)
                    .iter()
                    .any(|t| system.imc().actions().name(t.action) == "restart")
            })
            .collect();
        let prepared = PreparedModel::new(&system.close(), &goal).expect("transformable");
        let bounds = [0.2, 0.7, 2.0];
        let eps = 1e-10;
        let mut batch = prepared.reach_batch().with_epsilon(eps).with_threads(2);
        for &t in &bounds {
            batch = batch.query(t);
        }
        let out = batch.run().expect("uniform");
        assert_eq!(out.results.len(), bounds.len());
        assert_eq!(out.stats.cache_misses, bounds.len());
        for (r, &t) in out.results.iter().zip(&bounds) {
            let single = prepared.worst_case(t, eps).expect("uniform");
            let batch_bits: Vec<u64> = r.values.iter().map(|v| v.to_bits()).collect();
            let single_bits: Vec<u64> = single.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_bits, single_bits, "t = {t}");
        }
    }

    #[test]
    fn prepared_model_rejects_mismatched_goal() {
        let u = UniformImc::from_lts(&job_lts());
        let result = std::panic::catch_unwind(|| {
            PreparedModel::new(&u.close(), &[true]) // wrong length
        });
        assert!(result.is_err());
    }

    #[test]
    fn worst_dominates_best_with_nondeterminism() {
        // Two alternative routes to completion: a fast and a slow delay,
        // chosen nondeterministically via distinct grab actions.
        let mut b = LtsBuilder::new(5, 0);
        b.add("go_fast", 0, 1);
        b.add("go_slow", 0, 2);
        b.add("finish_fast", 1, 3);
        b.add("finish_slow", 2, 4);
        let sys = UniformImc::from_lts(&b.build());
        let fast = UniformImc::from_elapse(
            &PhaseType::exponential(5.0).uniformize_at_max(),
            "finish_fast",
            "go_fast",
        );
        let slow = UniformImc::from_elapse(
            &PhaseType::exponential(0.5).uniformize_at_max(),
            "finish_slow",
            "go_slow",
        );
        let combined = fast.parallel(&slow, &[]);
        let (timed, map) =
            combined.parallel_with_map(&sys, &["finish_fast", "finish_slow", "go_fast", "go_slow"]);
        // goal: the job component reached state 3 or 4 (finished)
        let goal: Vec<bool> = map.iter().map(|&(_, job)| job >= 3).collect();
        let prepared = PreparedModel::new(&timed.close(), &goal).expect("transformable");
        let t = 0.8;
        let worst = prepared.worst_case_from_initial(t, 1e-9).unwrap();
        let best = prepared
            .best_case(t, 1e-9)
            .unwrap()
            .from_state(prepared.ctmdp.initial());
        assert!(worst > best + 0.05, "worst {worst} vs best {best}");
        // sanity: worst is at most the fast route's exponential cdf
        assert!(worst <= unicon_numeric::special::exponential_cdf(5.0, t) + 1e-6);
    }
}
