//! The transformation steps and the CTMDP extraction.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use unicon_ctmdp::{Ctmdp, CtmdpBuilder};
use unicon_imc::{analysis, Imc, ImcBuilder, MarkovTransition, StateKind, View};
use unicon_lts::{ActionId, Transition};

/// Output of [`make_interactive_alternating_with_map`]: the strictly
/// alternating IMC, the per-state origin map, and the per-state zero-time
/// closures.
pub type Step3Output = (Imc, Vec<u32>, Vec<Vec<u32>>);

/// Why a model cannot be transformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// A cycle of interactive transitions (Zeno behaviour under urgency).
    Zeno {
        /// States on the offending cycle.
        cycle: Vec<u32>,
    },
    /// A reachable state with no outgoing transitions. The paper assumes
    /// `S_A = ∅`; in a uniform model with positive rate absorbing states
    /// cannot occur, so hitting one indicates a modelling error.
    DeadEnd {
        /// The absorbing state.
        state: u32,
    },
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Zeno { cycle } => {
                write!(
                    f,
                    "interactive cycle (Zeno behaviour) through states {cycle:?}"
                )
            }
            TransformError::DeadEnd { state } => {
                write!(
                    f,
                    "reachable absorbing state {state} (the paper assumes S_A = ∅)"
                )
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Size and timing statistics of a transformation — the quantities reported
/// in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformStats {
    /// Interactive states of the strictly alternating IMC (= CTMDP states).
    pub interactive_states: usize,
    /// Markov states (= distinct rate functions).
    pub markov_states: usize,
    /// Compressed (word-labeled) interactive transitions (= CTMDP
    /// transitions).
    pub interactive_transitions: usize,
    /// Markov transitions (= rate-function entries).
    pub markov_transitions: usize,
    /// Approximate memory footprint of the CTMDP representation in bytes.
    pub memory_bytes: usize,
    /// Wall-clock time of the whole transformation.
    pub transform_time: Duration,
}

/// Result of [`transform`].
#[derive(Debug, Clone)]
pub struct TransformOutput {
    /// The extracted CTMDP.
    pub ctmdp: Ctmdp,
    /// The strictly alternating IMC it was read from (interactive states
    /// first, i.e. state `i` of the CTMDP is state `i` here).
    pub strictly_alternating: Imc,
    /// For every CTMDP state, the state of the *input* IMC it represents
    /// (fresh interactive splitter states are instantaneous prefixes of
    /// their successors and inherit their origin). Use this to translate a
    /// state-level goal predicate through the transformation.
    pub ctmdp_state_origin: Vec<u32>,
    /// For every CTMDP state, all input-IMC states reachable from it in
    /// zero time (along interactive paths), including itself and the Markov
    /// endpoints — the basis of the sup-faithful goal translation.
    pub ctmdp_zero_closure: Vec<Vec<u32>>,
    /// Table-1-style statistics.
    pub stats: TransformStats,
}

impl TransformOutput {
    /// Translates a per-state goal predicate on the input IMC into the goal
    /// vector for the extracted CTMDP, using **zero-time closure**
    /// semantics: a CTMDP state is a goal state if any input state its
    /// instantaneous interactive paths traverse is a goal state.
    ///
    /// This is faithful for the worst-case (`sup`) analysis: the maximizing
    /// scheduler may always steer a zero-time word through the goal region,
    /// and reachability is sticky. For goal regions that are only left by
    /// Markov jumps (every dwelling goal region, e.g. the FTWC's
    /// premium-down states), it coincides with [`Self::goal_vector_exact`]
    /// up to the instantaneous entry prefix.
    ///
    /// # Panics
    ///
    /// Panics if `goal.len()` does not match the input IMC's state count.
    pub fn goal_vector(&self, goal: &[bool]) -> Vec<bool> {
        self.ctmdp_zero_closure
            .iter()
            .map(|c| c.iter().any(|&o| goal[o as usize]))
            .collect()
    }

    /// Translates a goal predicate using only each CTMDP state's immediate
    /// origin — no zero-time closure. Goal states that are merely traversed
    /// instantaneously inside compressed words are *not* counted.
    ///
    /// # Panics
    ///
    /// Panics if `goal.len()` does not match the input IMC's state count.
    pub fn goal_vector_exact(&self, goal: &[bool]) -> Vec<bool> {
        self.ctmdp_state_origin
            .iter()
            .map(|&o| goal[o as usize])
            .collect()
    }
}

/// Step (1): cut the Markov transitions of hybrid states (urgency of the
/// closed-system view) and restrict to reachable states.
pub fn make_alternating(imc: &Imc) -> Imc {
    imc.apply_pre_emption(View::Closed).restrict_to_reachable()
}

/// Step (2): split every Markov→Markov edge `s --λ--> s'` through a fresh
/// interactive state, so each Markov transition ends in an interactive
/// state.
///
/// # Panics
///
/// Panics if the input still has hybrid states (run [`make_alternating`]
/// first).
pub fn make_markov_alternating(imc: &Imc) -> Imc {
    make_markov_alternating_with_entries(imc).0
}

/// Like [`make_markov_alternating`], additionally returning the Markov
/// states the fresh *entry* states belong to: fresh state `n + i` is the
/// interactive entry of Markov state `entries[i]`.
///
/// The paper's Step (2) formally introduces one splitter per Markov→Markov
/// *edge* `(s, s')`; all splitters of the same target `s'` are strongly
/// bisimilar (each has exactly the τ move to `s'`), so we introduce one
/// entry state per *target* instead — this quotiented form is what the
/// paper's own Table 1 state counts correspond to.
///
/// # Panics
///
/// See [`make_markov_alternating`].
pub fn make_markov_alternating_with_entries(imc: &Imc) -> (Imc, Vec<u32>) {
    let n = imc.num_states();
    for s in 0..n as u32 {
        assert!(
            imc.kind(s) != StateKind::Hybrid,
            "state {s} is hybrid; apply make_alternating first"
        );
    }
    // Markov states with at least one Markov predecessor need an entry.
    let mut entries: Vec<u32> = imc
        .markov()
        .iter()
        .filter(|m| imc.kind(m.target) == StateKind::Markov)
        .map(|m| m.target)
        .collect();
    entries.sort_unstable();
    entries.dedup();
    let fresh_base = n as u32;
    let entry_of = |t: u32| -> Option<u32> {
        entries
            .binary_search(&t)
            .ok()
            .map(|i| fresh_base + i as u32)
    };

    let mut interactive: Vec<Transition> = imc.interactive().to_vec();
    let mut markov: Vec<MarkovTransition> = Vec::with_capacity(imc.num_markov());
    for m in imc.markov() {
        match entry_of(m.target) {
            Some(entry) => markov.push(MarkovTransition {
                source: m.source,
                rate: m.rate,
                target: entry,
            }),
            None => markov.push(*m),
        }
    }
    for (i, &t) in entries.iter().enumerate() {
        interactive.push(Transition {
            source: fresh_base + i as u32,
            action: ActionId::TAU,
            target: t,
        });
    }
    let out = rebuild(imc, n + entries.len(), imc.initial(), interactive, markov);
    (out, entries)
}

/// Step (3): compress maximal interactive sequences into word-labeled
/// transitions ending in Markov states, dropping interactive states without
/// Markov predecessors (except the initial state).
///
/// Words are rendered as the non-τ action names joined by `"."`; an
/// all-internal sequence is labeled `tau`.
///
/// # Errors
///
/// [`TransformError::Zeno`] on interactive cycles,
/// [`TransformError::DeadEnd`] if an interactive path runs into an
/// absorbing state.
///
/// # Panics
///
/// Panics if the input is not Markov alternating.
pub fn make_interactive_alternating(imc: &Imc) -> Result<Imc, TransformError> {
    Ok(make_interactive_alternating_with_map(imc)?.0)
}

/// Like [`make_interactive_alternating`], additionally returning, for every
/// state of the result, the input state it came from, and for every kept
/// interactive state the set of input states its zero-time interactive
/// paths traverse (including itself and the Markov endpoints).
///
/// # Errors
///
/// See [`make_interactive_alternating`].
pub fn make_interactive_alternating_with_map(imc: &Imc) -> Result<Step3Output, TransformError> {
    if let Some(cycle) = analysis::interactive_cycle(imc) {
        return Err(TransformError::Zeno { cycle });
    }
    let n = imc.num_states();
    for m in imc.markov() {
        assert!(
            !imc.interactive_from(m.target).is_empty() || imc.markov_from(m.target).is_empty(),
            "input is not Markov alternating (run make_markov_alternating first)"
        );
    }

    // S_I' = interactive states with a Markov predecessor, plus the initial
    // state (which transform() guarantees to be interactive).
    let mut keep = vec![false; n];
    keep[imc.initial() as usize] = true;
    for m in imc.markov() {
        keep[m.target as usize] = true;
    }
    for (s, k) in keep.iter_mut().enumerate() {
        if imc.kind(s as u32) == StateKind::Markov {
            *k = false;
        }
    }

    // Enumerate all interactive paths from each kept state to Markov states,
    // recording which input states each kept state can touch in zero time.
    let mut word_transitions: Vec<(u32, Vec<ActionId>, u32)> = Vec::new();
    let mut closures: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        if !keep[s as usize] {
            continue;
        }
        let mut touched: Vec<u32> = vec![s];
        let mut seen: HashSet<(Vec<ActionId>, u32)> = HashSet::new();
        // DFS over (state, word-so-far); interactive graph is acyclic here.
        let mut stack: Vec<(u32, Vec<ActionId>)> = vec![(s, Vec::new())];
        while let Some((cur, word)) = stack.pop() {
            let outs = imc.interactive_from(cur);
            if outs.is_empty() && imc.markov_from(cur).is_empty() {
                return Err(TransformError::DeadEnd { state: cur });
            }
            for t in outs {
                let mut w = word.clone();
                if !t.action.is_tau() {
                    w.push(t.action);
                }
                touched.push(t.target);
                match imc.kind(t.target) {
                    StateKind::Markov => {
                        if seen.insert((w.clone(), t.target)) {
                            word_transitions.push((s, w, t.target));
                        }
                    }
                    StateKind::Absorbing => {
                        return Err(TransformError::DeadEnd { state: t.target })
                    }
                    _ => stack.push((t.target, w)),
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        closures[s as usize] = touched;
    }

    // Build the strictly alternating IMC: interactive states first (their
    // order preserved), then the Markov states.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for (s, slot) in map.iter_mut().enumerate() {
        if keep[s] {
            *slot = next;
            next += 1;
        }
    }
    for (s, slot) in map.iter_mut().enumerate() {
        if imc.kind(s as u32) == StateKind::Markov {
            *slot = next;
            next += 1;
        }
    }

    let mut b = ImcBuilder::new(next as usize, map[imc.initial() as usize]);
    for (s, word, u) in &word_transitions {
        let name = word_name(imc, word);
        b.interactive(&name, map[*s as usize], map[*u as usize]);
    }
    for m in imc.markov() {
        if map[m.source as usize] != u32::MAX {
            b.markov(map[m.source as usize], m.rate, map[m.target as usize]);
        }
    }
    let (out, old_of_reached) = b.build().restrict_to_reachable_with_map();
    debug_assert!(is_strictly_alternating(&out));
    // Compose the two renumberings: result state -> pre-restriction state
    // -> input state.
    let mut input_of_mid = vec![u32::MAX; next as usize];
    for (input, &mid) in map.iter().enumerate() {
        if mid != u32::MAX {
            input_of_mid[mid as usize] = input as u32;
        }
    }
    let origin: Vec<u32> = old_of_reached
        .iter()
        .map(|&mid| input_of_mid[mid as usize])
        .collect();
    let zero_closure = origin
        .iter()
        .map(|&input| {
            let c = &closures[input as usize];
            if c.is_empty() {
                vec![input]
            } else {
                c.clone()
            }
        })
        .collect();
    Ok((out, origin, zero_closure))
}

/// Renders a word as an action name.
fn word_name(imc: &Imc, word: &[ActionId]) -> String {
    if word.is_empty() {
        unicon_lts::TAU_NAME.to_owned()
    } else {
        word.iter()
            .map(|a| imc.actions().name(*a))
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// Whether interactive and Markov states strictly alternate: every
/// interactive transition ends in a Markov state, every Markov transition
/// in an interactive state, and no hybrid or absorbing states exist.
pub fn is_strictly_alternating(imc: &Imc) -> bool {
    (0..imc.num_states() as u32).all(|s| match imc.kind(s) {
        StateKind::Hybrid | StateKind::Absorbing => false,
        StateKind::Interactive => imc
            .interactive_from(s)
            .iter()
            .all(|t| imc.kind(t.target) == StateKind::Markov),
        StateKind::Markov => imc
            .markov_from(s)
            .iter()
            .all(|m| imc.kind(m.target) == StateKind::Interactive),
    })
}

/// Reads a strictly alternating IMC as a CTMDP (the paper's `C_M`): states
/// are the interactive states, actions the words, and each word transition
/// into Markov state `u` contributes `u`'s cumulative rate vector as its
/// rate function.
///
/// # Panics
///
/// Panics if the input is not strictly alternating or its initial state is
/// not interactive.
pub fn to_ctmdp(imc: &Imc) -> Ctmdp {
    to_ctmdp_with_map(imc).0
}

/// Like [`to_ctmdp`], additionally returning, for every CTMDP state, the
/// interactive IMC state it came from.
///
/// # Panics
///
/// See [`to_ctmdp`].
pub fn to_ctmdp_with_map(imc: &Imc) -> (Ctmdp, Vec<u32>) {
    assert!(
        is_strictly_alternating(imc),
        "to_ctmdp requires a strictly alternating IMC"
    );
    assert_eq!(
        imc.kind(imc.initial()),
        StateKind::Interactive,
        "the initial state must be interactive"
    );
    let n = imc.num_states();
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for s in 0..n as u32 {
        if imc.kind(s) == StateKind::Interactive {
            map[s as usize] = next;
            next += 1;
        }
    }
    let mut b = CtmdpBuilder::new(next as usize, map[imc.initial() as usize]);
    for t in imc.interactive() {
        let pairs: Vec<(u32, f64)> = imc
            .markov_from(t.target)
            .iter()
            .map(|m| (map[m.target as usize], m.rate))
            .collect();
        b.transition(map[t.source as usize], imc.actions().name(t.action), &pairs);
    }
    let mut imc_of_ctmdp = vec![u32::MAX; next as usize];
    for (s, &c) in map.iter().enumerate() {
        if c != u32::MAX {
            imc_of_ctmdp[c as usize] = s as u32;
        }
    }
    (b.build(), imc_of_ctmdp)
}

/// The full trajectory: steps (1)–(3) plus the CTMDP extraction, with
/// Table-1 statistics.
///
/// If the initial state is a Markov state after step (1), a fresh
/// interactive initial state with a τ transition to it is introduced
/// (keeping `s₀ ∈ S_I` as Definition 1 requires).
///
/// # Errors
///
/// See [`make_interactive_alternating`].
pub fn transform(imc: &Imc) -> Result<TransformOutput, TransformError> {
    let start = Instant::now();
    // Step (1): urgency cut + restriction, tracking origins.
    let (mut m, mut origin) = imc
        .apply_pre_emption(View::Closed)
        .restrict_to_reachable_with_map();
    // Guarantee an interactive initial state. The fresh state is an
    // instantaneous prefix of s₀, so it inherits s₀'s origin.
    if matches!(
        m.kind(m.initial()),
        StateKind::Markov | StateKind::Absorbing
    ) {
        let s0_origin = origin[m.initial() as usize];
        m = prepend_interactive_initial(&m);
        origin.push(s0_origin);
    }
    // Step (2): the entry state of Markov state s' is an instantaneous
    // prefix of s'.
    let (m, entries) = make_markov_alternating_with_entries(&m);
    for &t in &entries {
        let t_origin = origin[t as usize];
        origin.push(t_origin);
    }
    // Step (3) and extraction.
    let (strictly_alternating, step3_origin, step3_closure) =
        make_interactive_alternating_with_map(&m)?;
    let (ctmdp, imc_of_ctmdp) = to_ctmdp_with_map(&strictly_alternating);
    let ctmdp_state_origin: Vec<u32> = imc_of_ctmdp
        .iter()
        .map(|&sa| origin[step3_origin[sa as usize] as usize])
        .collect();
    let ctmdp_zero_closure: Vec<Vec<u32>> = imc_of_ctmdp
        .iter()
        .map(|&sa| {
            let mut c: Vec<u32> = step3_closure[sa as usize]
                .iter()
                .map(|&mid| origin[mid as usize])
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        })
        .collect();

    unicon_imc::audit::record(
        "transform",
        unicon_imc::audit::lemma::THEOREM1,
        View::Closed,
        &[imc],
        &strictly_alternating,
        unicon_imc::audit::Witness::Transform {
            ctmdp_fingerprint: ctmdp.fingerprint(),
            rate: ctmdp.uniform_rate().ok(),
        },
    );

    let (markov_states, interactive_states, _, _) = strictly_alternating.kind_counts();
    let stats = TransformStats {
        interactive_states,
        markov_states,
        interactive_transitions: strictly_alternating.num_interactive(),
        markov_transitions: strictly_alternating.num_markov(),
        memory_bytes: ctmdp.memory_bytes(),
        transform_time: start.elapsed(),
    };
    Ok(TransformOutput {
        ctmdp,
        strictly_alternating,
        ctmdp_state_origin,
        ctmdp_zero_closure,
        stats,
    })
}

/// Adds a fresh interactive initial state `init' --τ--> s₀`.
fn prepend_interactive_initial(imc: &Imc) -> Imc {
    let n = imc.num_states();
    let mut interactive = imc.interactive().to_vec();
    interactive.push(Transition {
        source: n as u32,
        action: ActionId::TAU,
        target: imc.initial(),
    });
    rebuild(imc, n + 1, n as u32, interactive, imc.markov().to_vec())
}

/// Rebuilds an IMC with the same action table but new structure.
fn rebuild(
    imc: &Imc,
    num_states: usize,
    initial: u32,
    interactive: Vec<Transition>,
    markov: Vec<MarkovTransition>,
) -> Imc {
    let mut b = ImcBuilder::new(num_states, initial);
    for t in &interactive {
        b.interactive(imc.actions().name(t.action), t.source, t.target);
    }
    for m in &markov {
        b.markov(m.source, m.rate, m.target);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicon_ctmc::transient::{self, TransientOptions};
    use unicon_ctmc::Ctmc;
    use unicon_ctmdp::reachability::{timed_reachability, ReachOptions};
    use unicon_numeric::assert_close;

    /// fail/repair workstation-in-miniature: interactive decisions between
    /// Markov phases.
    fn mini_model() -> Imc {
        let mut b = ImcBuilder::new(5, 0);
        // 0 interactive: choose left or right (visible words)
        b.interactive("left", 0, 1);
        b.interactive("right", 0, 2);
        // 1, 2 Markov with same exit rate 2 (uniform)
        b.markov(1, 2.0, 3);
        b.markov(2, 1.5, 3);
        b.markov(2, 0.5, 4);
        // 3, 4 interactive looping back
        b.tau(3, 0);
        b.interactive("reset", 4, 0);
        b.build()
    }

    #[test]
    fn step1_cuts_hybrid_markov() {
        let mut b = ImcBuilder::new(2, 0);
        b.interactive("a", 0, 1);
        b.markov(0, 5.0, 1);
        b.markov(1, 1.0, 0);
        let alt = make_alternating(&b.build());
        assert_eq!(alt.kind(0), StateKind::Interactive);
        assert_eq!(alt.num_markov(), 1);
    }

    #[test]
    fn step2_splits_markov_chains() {
        let mut b = ImcBuilder::new(3, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 2);
        b.interactive("done", 2, 2); // interactive sink
        let m = make_markov_alternating(&b.build());
        // one fresh splitter for the 0->1 edge
        assert_eq!(m.num_states(), 4);
        // fresh state has a tau to 1
        let fresh = 3u32;
        assert_eq!(m.interactive_from(fresh).len(), 1);
        assert!(m.interactive_from(fresh)[0].action.is_tau());
        // Markov transitions all end in interactive states
        for mk in m.markov() {
            assert_ne!(m.kind(mk.target), StateKind::Markov);
        }
    }

    #[test]
    fn step2_idempotent_on_alternating_input() {
        let m = mini_model();
        let once = make_markov_alternating(&m);
        let twice = make_markov_alternating(&once);
        assert_eq!(once.num_states(), twice.num_states());
    }

    #[test]
    fn step3_compresses_words() {
        let out = transform(&mini_model()).expect("transform");
        let c = &out.ctmdp;
        // initial state has the two word choices "left", "right"
        let labels: Vec<&str> = c
            .transitions_from(c.initial())
            .iter()
            .map(|t| c.actions().name(t.action))
            .collect();
        assert!(labels.contains(&"left"));
        assert!(labels.contains(&"right"));
        // state 3's tau-loop to 0 means: after Markov state 1 the word
        // continues through 0: compressed words "left", "right" again
        assert!(c.uniform_rate().is_ok());
        assert_close!(c.uniform_rate().unwrap(), 2.0, 1e-12);
    }

    #[test]
    fn words_join_multiple_visible_actions() {
        // 0 -a-> 1 -b-> 2(Markov) ; 2 --> 0
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("a", 0, 1);
        b.interactive("b", 1, 2);
        b.markov(2, 1.0, 0);
        let out = transform(&b.build()).expect("transform");
        let c = &out.ctmdp;
        let labels: Vec<&str> = c
            .transitions_from(c.initial())
            .iter()
            .map(|t| c.actions().name(t.action))
            .collect();
        assert_eq!(labels, vec!["a.b"]);
    }

    #[test]
    fn all_tau_word_is_tau() {
        let mut b = ImcBuilder::new(3, 0);
        b.tau(0, 1);
        b.tau(1, 2);
        b.markov(2, 1.0, 0);
        let out = transform(&b.build()).expect("transform");
        let c = &out.ctmdp;
        let labels: Vec<&str> = c
            .transitions_from(c.initial())
            .iter()
            .map(|t| c.actions().name(t.action))
            .collect();
        assert_eq!(labels, vec!["tau"]);
    }

    #[test]
    fn zeno_is_detected() {
        let mut b = ImcBuilder::new(2, 0);
        b.tau(0, 1);
        b.tau(1, 0);
        b.markov(1, 1.0, 0);
        match transform(&b.build()) {
            Err(TransformError::Zeno { cycle }) => assert!(!cycle.is_empty()),
            other => panic!("expected Zeno error, got {other:?}"),
        }
    }

    #[test]
    fn dead_end_is_detected() {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("a", 0, 1);
        b.markov(1, 1.0, 2);
        // state 2 absorbing
        let e = transform(&b.build()).unwrap_err();
        assert!(matches!(e, TransformError::DeadEnd { .. }));
        assert!(e.to_string().contains("absorbing"));
    }

    #[test]
    fn markov_initial_state_gets_interactive_prefix() {
        let mut b = ImcBuilder::new(2, 0);
        b.markov(0, 1.0, 1);
        b.interactive("back", 1, 0); // wait: 'back' leads to Markov state 0 ✓
        let out = transform(&b.build()).expect("transform");
        assert!(out.ctmdp.num_states() >= 2);
        // the CTMDP's initial state has a tau word into the chain
        let c = &out.ctmdp;
        let labels: Vec<&str> = c
            .transitions_from(c.initial())
            .iter()
            .map(|t| c.actions().name(t.action))
            .collect();
        assert_eq!(labels, vec!["tau"]);
    }

    #[test]
    fn deterministic_model_matches_ctmc_oracle() {
        // A closed deterministic uniform IMC == a CTMC after collapsing the
        // zero-time moves: Markov state 0 branches (rate 1 each) to a tau
        // hop into the ticking goal chain or a tau hop restarting at 0.
        let mut b = ImcBuilder::new(4, 0);
        b.markov(0, 1.0, 1);
        b.markov(0, 1.0, 2);
        b.tau(1, 3);
        b.tau(2, 0);
        b.markov(3, 2.0, 3);
        let imc = b.build();
        // Wait: initial state 0 is Markov; transform adds the tau prefix.
        let out = transform(&imc).expect("transform");
        let c = &out.ctmdp;
        // goal: the CTMDP state corresponding to interactive state "1"
        // (the one whose word leads into the ticking Markov state 3).
        // Equivalent CTMC: 0 --1.0--> goal, 0 --1.0--> 0 (restart), goal abs.
        let ctmc = Ctmc::from_rates(2, 0, [(0, 1, 1.0), (0, 0, 1.0), (1, 1, 2.0)]);
        // "Being at the ticking Markov state" corresponds to every CTMDP
        // state whose (single) rate function is the ticking self-loop:
        // one target, total rate 2.
        let mut goal = vec![false; c.num_states()];
        let mut found = false;
        for s in 0..c.num_states() as u32 {
            for tr in c.transitions_from(s) {
                let rf = c.rate_function(tr.rate_fn);
                if rf.targets().len() == 1 && (rf.total() - 2.0).abs() < 1e-12 {
                    goal[s as usize] = true;
                    found = true;
                }
            }
        }
        assert!(found, "ticking goal states not found");
        for t in [0.4, 1.0, 3.0] {
            let mdp = timed_reachability(c, &goal, t, &ReachOptions::default().with_epsilon(1e-10))
                .unwrap()
                .from_state(c.initial());
            let oracle = transient::reachability(
                &ctmc,
                &[false, true],
                t,
                &TransientOptions::default().with_epsilon(1e-12),
            )
            .from_state(0);
            assert_close!(mdp, oracle, 1e-8);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let out = transform(&mini_model()).expect("transform");
        assert_eq!(out.stats.interactive_states, out.ctmdp.num_states());
        assert_eq!(
            out.stats.interactive_transitions,
            out.ctmdp.num_transitions()
        );
        assert!(out.stats.markov_states > 0);
        assert!(out.stats.memory_bytes > 0);
        assert!(is_strictly_alternating(&out.strictly_alternating));
    }

    #[test]
    fn strictly_alternating_checker() {
        let out = transform(&mini_model()).expect("transform");
        assert!(is_strictly_alternating(&out.strictly_alternating));
        assert!(!is_strictly_alternating(&mini_model()));
    }

    #[test]
    fn goal_closure_vs_exact_semantics() {
        // 0 interactive --pass--> 1 interactive --go--> 2 Markov --> 0.
        // State 1 is traversed in zero time only: it never becomes a CTMDP
        // state, so the exact goal translation misses it while the closure
        // translation marks its zero-time predecessors.
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("pass", 0, 1);
        b.interactive("go", 1, 2);
        b.markov(2, 1.0, 0);
        let out = transform(&b.build()).expect("transforms");
        let goal_on_1 = [false, true, false];
        let closure = out.goal_vector(&goal_on_1);
        let exact = out.goal_vector_exact(&goal_on_1);
        // exact: no CTMDP state originates from state 1
        assert!(exact.iter().all(|&g| !g));
        // closure: the state whose word passes through 1 is marked
        assert!(closure.iter().any(|&g| g));
        // closure is always a superset of exact
        for (c, e) in closure.iter().zip(&exact) {
            assert!(*c || !*e);
        }
    }

    #[test]
    fn entries_are_one_per_markov_target() {
        // chain of three Markov states: 0 -> 1 -> 2 -> 0 plus an
        // interactive entry point.
        let mut b = ImcBuilder::new(4, 3);
        b.interactive("start", 3, 0);
        b.markov(0, 1.0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 0);
        let (out, entries) = make_markov_alternating_with_entries(&b.build());
        // every Markov state has a Markov predecessor -> 3 entries
        assert_eq!(entries, vec![0, 1, 2]);
        assert_eq!(out.num_states(), 7);
        // all Markov transitions now end in (fresh) interactive states
        for m in out.markov() {
            assert_eq!(out.kind(m.target), StateKind::Interactive);
        }
    }

    #[test]
    fn origin_of_entry_states_is_their_markov_target() {
        let mut b = ImcBuilder::new(3, 0);
        b.interactive("go", 0, 1);
        b.markov(1, 1.0, 2);
        b.markov(2, 1.0, 1);
        let imc = b.build();
        let out = transform(&imc).expect("transforms");
        // every CTMDP state's origin is a valid input state, and at least
        // one CTMDP state originates from each dwelling Markov state
        for &o in &out.ctmdp_state_origin {
            assert!((o as usize) < imc.num_states());
        }
        assert!(out.ctmdp_state_origin.contains(&1));
        assert!(out.ctmdp_state_origin.contains(&2));
    }
}
