//! Transformation from closed (uniform) IMCs to strictly alternating IMCs
//! and on to (uniform) CTMDPs — Section 4.1 of the paper.
//!
//! The trajectory has three structure-normalizing steps followed by the
//! CTMDP extraction:
//!
//! 1. **Alternating** ([`make_alternating`]): under the closed-system
//!    urgency assumption, Markov transitions of hybrid states can never
//!    fire; cutting them leaves only interactive and Markov states.
//! 2. **Markov alternating** ([`make_markov_alternating`]): each
//!    Markov→Markov edge `s --λ--> s'` is split through a fresh interactive
//!    state `(s,s')` with `s --λ--> (s,s') --τ--> s'`, so every Markov
//!    transition ends in an interactive state.
//! 3. **Interactive alternating** ([`make_interactive_alternating`]):
//!    maximal sequences of interactive transitions are compressed into
//!    single transitions labeled by *words* over `Act⁺_{\τ} ∪ {τ}`, so
//!    every interactive transition ends in a Markov state. Interactive
//!    states without Markov predecessors (other than the initial state)
//!    disappear.
//!
//! The strictly alternating IMC is then read as a CTMDP
//! ([`to_ctmdp`]): its states are the interactive states, its actions the
//! words, and each transition's rate function is the Markov state it runs
//! into. Theorem 1 states that this preserves scheduler-indexed path
//! measures; the tests validate it against the CTMC oracle on deterministic
//! models and by Monte-Carlo simulation on nondeterministic ones.
//!
//! # Examples
//!
//! ```
//! use unicon_imc::ImcBuilder;
//! use unicon_transform::transform;
//!
//! // closed uniform IMC: tick between two states, with a τ-decision.
//! let mut b = ImcBuilder::new(3, 0);
//! b.tau(0, 1);
//! b.markov(1, 2.0, 2);
//! b.tau(2, 0);
//! b.markov(1, 1.0, 0); // hmm: state 1 only Markov; fine
//! let out = transform(&b.build()).expect("transformable");
//! assert!(out.ctmdp.uniform_rate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod steps;

pub use steps::{
    is_strictly_alternating, make_alternating, make_interactive_alternating,
    make_interactive_alternating_with_map, make_markov_alternating,
    make_markov_alternating_with_entries, to_ctmdp, to_ctmdp_with_map, transform, TransformError,
    TransformOutput, TransformStats,
};
