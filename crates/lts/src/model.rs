//! The [`Lts`] model and its builder.

use crate::action::{ActionId, ActionTable};

/// One labeled transition `source --action--> target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transition {
    /// Source state.
    pub source: u32,
    /// Action label.
    pub action: ActionId,
    /// Target state.
    pub target: u32,
}

/// A finite labeled transition system.
///
/// States are `0..num_states()`; transitions are stored grouped by source
/// state. The model is immutable after construction — build one with
/// [`LtsBuilder`].
///
/// # Examples
///
/// ```
/// use unicon_lts::LtsBuilder;
///
/// let mut b = LtsBuilder::new(3, 0);
/// b.add("a", 0, 1);
/// b.add("b", 1, 2);
/// let lts = b.build();
/// assert_eq!(lts.num_transitions(), 2);
/// assert_eq!(lts.successors(0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lts {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    /// Transition list sorted by (source, action, target), deduplicated.
    transitions: Vec<Transition>,
    /// `offsets[s]..offsets[s+1]` indexes the transitions of source `s`.
    offsets: Vec<usize>,
}

impl Lts {
    pub(crate) fn from_raw(
        actions: ActionTable,
        num_states: usize,
        initial: u32,
        mut transitions: Vec<Transition>,
    ) -> Self {
        assert!(num_states > 0, "an LTS needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state {initial} out of bounds"
        );
        for t in &transitions {
            assert!(
                (t.source as usize) < num_states && (t.target as usize) < num_states,
                "transition {t:?} out of bounds for {num_states} states"
            );
        }
        transitions.sort_unstable();
        transitions.dedup();
        let mut offsets = vec![0usize; num_states + 1];
        for t in &transitions {
            offsets[t.source as usize + 1] += 1;
        }
        for s in 0..num_states {
            offsets[s + 1] += offsets[s];
        }
        Self {
            actions,
            num_states,
            initial,
            transitions,
            offsets,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The action table of this model.
    pub fn actions(&self) -> &ActionTable {
        &self.actions
    }

    /// All transitions, sorted by `(source, action, target)`.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions emanating from `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn successors(&self, state: u32) -> impl Iterator<Item = &Transition> {
        self.successors_slice(state).iter()
    }

    /// Transitions emanating from `state`, as an O(1) slice view into the
    /// (source, action, target)-sorted transition array — the CSR row of
    /// `state`. Sortedness lets callers binary-search by action.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn successors_slice(&self, state: u32) -> &[Transition] {
        let s = state as usize;
        assert!(s < self.num_states, "state {state} out of bounds");
        &self.transitions[self.offsets[s]..self.offsets[s + 1]]
    }

    /// Whether `state` has an outgoing τ-transition (i.e. is *unstable*
    /// under the closed-system urgency convention when all actions count;
    /// for plain LTSs only τ matters).
    pub fn has_tau(&self, state: u32) -> bool {
        self.successors(state).any(|t| t.action.is_tau())
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states];
        let mut stack = vec![self.initial];
        seen[self.initial as usize] = true;
        while let Some(s) = stack.pop() {
            for t in self.successors(s) {
                if !seen[t.target as usize] {
                    seen[t.target as usize] = true;
                    stack.push(t.target);
                }
            }
        }
        seen
    }

    /// Returns `true` if every state is reachable from the initial state.
    pub fn is_fully_reachable(&self) -> bool {
        self.reachable_states().iter().all(|&r| r)
    }
}

/// Builder for [`Lts`].
///
/// # Examples
///
/// ```
/// use unicon_lts::LtsBuilder;
///
/// let mut b = LtsBuilder::new(2, 0);
/// b.add("go", 0, 1);
/// b.add_tau(1, 0);
/// let lts = b.build();
/// assert!(lts.has_tau(1));
/// ```
#[derive(Debug, Clone)]
pub struct LtsBuilder {
    actions: ActionTable,
    num_states: usize,
    initial: u32,
    transitions: Vec<Transition>,
}

impl LtsBuilder {
    /// Starts a builder for an LTS with `num_states` states and the given
    /// initial state.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` or the initial state is out of bounds.
    pub fn new(num_states: usize, initial: u32) -> Self {
        assert!(num_states > 0, "an LTS needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of bounds"
        );
        Self {
            actions: ActionTable::new(),
            num_states,
            initial,
            transitions: Vec::new(),
        }
    }

    /// Adds `source --action--> target`, interning the action name.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of bounds.
    pub fn add(&mut self, action: &str, source: u32, target: u32) -> &mut Self {
        assert!(
            (source as usize) < self.num_states && (target as usize) < self.num_states,
            "transition endpoint out of bounds"
        );
        let action = self.actions.intern(action);
        self.transitions.push(Transition {
            source,
            action,
            target,
        });
        self
    }

    /// Adds an internal `source --τ--> target` transition.
    pub fn add_tau(&mut self, source: u32, target: u32) -> &mut Self {
        self.add(crate::TAU_NAME, source, target)
    }

    /// Finalizes the LTS.
    pub fn build(self) -> Lts {
        Lts::from_raw(
            self.actions,
            self.num_states,
            self.initial,
            self.transitions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Lts {
        let mut b = LtsBuilder::new(3, 0);
        b.add("a", 0, 1);
        b.add("b", 1, 2);
        b.add("c", 2, 0);
        b.build()
    }

    #[test]
    fn counts() {
        let l = abc();
        assert_eq!(l.num_states(), 3);
        assert_eq!(l.num_transitions(), 3);
        assert_eq!(l.initial(), 0);
    }

    #[test]
    fn successors_grouped() {
        let l = abc();
        let succ: Vec<_> = l.successors(1).map(|t| t.target).collect();
        assert_eq!(succ, vec![2]);
        assert_eq!(l.successors(0).count(), 1);
    }

    #[test]
    fn duplicate_transitions_are_merged() {
        let mut b = LtsBuilder::new(2, 0);
        b.add("a", 0, 1);
        b.add("a", 0, 1);
        assert_eq!(b.build().num_transitions(), 1);
    }

    #[test]
    fn tau_detection() {
        let mut b = LtsBuilder::new(2, 0);
        b.add_tau(0, 1);
        b.add("v", 1, 0);
        let l = b.build();
        assert!(l.has_tau(0));
        assert!(!l.has_tau(1));
    }

    #[test]
    fn reachability() {
        let mut b = LtsBuilder::new(3, 0);
        b.add("a", 0, 1);
        // state 2 unreachable
        let l = b.build();
        assert_eq!(l.reachable_states(), vec![true, true, false]);
        assert!(!l.is_fully_reachable());
        assert!(abc().is_fully_reachable());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_bad_state() {
        LtsBuilder::new(1, 0).add("a", 0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn builder_rejects_empty() {
        LtsBuilder::new(0, 0);
    }
}
