//! Strong bisimulation minimization for LTSs.
//!
//! Signature-based partition refinement (Blom–Orzan): states are repeatedly
//! split by the multiset-free signature `{(a, block(t)) | s --a--> t}` until
//! the partition stabilizes, then the quotient LTS is built. Runs in
//! `O(iterations · m log m)`, which is ample for the explicit models of this
//! workspace; the stochastic variant for IMCs lives in `unicon-imc`.

use std::collections::HashMap;

use crate::model::{Lts, Transition};

/// A partition of the states of a model into blocks `0..num_blocks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block[s]` is the block index of state `s`.
    pub block: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
}

impl Partition {
    /// The trivial partition with all states in one block.
    pub fn universal(num_states: usize) -> Self {
        Self {
            block: vec![0; num_states],
            num_blocks: usize::from(num_states > 0),
        }
    }

    /// Builds a partition from an explicit per-state block assignment,
    /// renumbering blocks densely.
    pub fn from_assignment(assignment: &[u32]) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut block = Vec::with_capacity(assignment.len());
        for &b in assignment {
            let next = remap.len() as u32;
            let id = *remap.entry(b).or_insert(next);
            block.push(id);
        }
        Self {
            num_blocks: remap.len(),
            block,
        }
    }

    /// Splits blocks by an arbitrary signature function; returns the refined
    /// partition and whether anything changed.
    pub fn refine_by<S, F>(&self, mut signature: F) -> (Partition, bool)
    where
        S: std::hash::Hash + Eq,
        F: FnMut(usize) -> S,
    {
        let mut keys: HashMap<(u32, S), u32> = HashMap::new();
        let mut block = Vec::with_capacity(self.block.len());
        for s in 0..self.block.len() {
            let key = (self.block[s], signature(s));
            let next = keys.len() as u32;
            let id = *keys.entry(key).or_insert(next);
            block.push(id);
        }
        let num_blocks = keys.len();
        let changed = num_blocks != self.num_blocks;
        (Partition { block, num_blocks }, changed)
    }
}

/// Computes the strong-bisimilarity partition of an LTS.
///
/// Two states are strongly bisimilar iff they can match each other's
/// transitions action-by-action into bisimilar states.
pub fn strong_bisimulation(lts: &Lts) -> Partition {
    let mut part = Partition::universal(lts.num_states());
    loop {
        let (next, changed) = part.refine_by(|s| {
            let mut sig: Vec<(u32, u32)> = lts
                .successors(s as u32)
                .map(|t| (t.action.0, part.block[t.target as usize]))
                .collect();
            sig.sort_unstable();
            sig.dedup();
            sig
        });
        part = next;
        if !changed {
            return part;
        }
    }
}

/// Builds the quotient LTS of `lts` under `partition`.
///
/// Block containing the initial state becomes the new initial state; one
/// transition `B --a--> C` exists iff some `s ∈ B` has `s --a--> t, t ∈ C`.
///
/// # Panics
///
/// Panics if the partition does not cover exactly the states of `lts`.
pub fn quotient(lts: &Lts, partition: &Partition) -> Lts {
    assert_eq!(
        partition.block.len(),
        lts.num_states(),
        "partition does not match the model"
    );
    let transitions: Vec<Transition> = lts
        .transitions()
        .iter()
        .map(|t| Transition {
            source: partition.block[t.source as usize],
            action: t.action,
            target: partition.block[t.target as usize],
        })
        .collect();
    Lts::from_raw(
        lts.actions().clone(),
        partition.num_blocks,
        partition.block[lts.initial() as usize],
        transitions,
    )
}

/// Minimizes an LTS modulo strong bisimilarity.
///
/// # Examples
///
/// ```
/// use unicon_lts::{bisim, LtsBuilder};
///
/// // Two identical branches are collapsed.
/// let mut b = LtsBuilder::new(3, 0);
/// b.add("a", 0, 1);
/// b.add("a", 0, 2);
/// b.add("b", 1, 1);
/// b.add("b", 2, 2);
/// let min = bisim::minimize(&b.build());
/// assert_eq!(min.num_states(), 2);
/// ```
pub fn minimize(lts: &Lts) -> Lts {
    quotient(lts, &strong_bisimulation(lts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LtsBuilder;

    #[test]
    fn universal_partition() {
        let p = Partition::universal(5);
        assert_eq!(p.num_blocks, 1);
        assert_eq!(p.block, vec![0; 5]);
    }

    #[test]
    fn from_assignment_renumbers_densely() {
        let p = Partition::from_assignment(&[7, 3, 7, 9]);
        assert_eq!(p.num_blocks, 3);
        assert_eq!(p.block[0], p.block[2]);
        assert_ne!(p.block[0], p.block[1]);
    }

    #[test]
    fn deterministic_chain_is_already_minimal() {
        let mut b = LtsBuilder::new(3, 0);
        b.add("a", 0, 1);
        b.add("b", 1, 2);
        let l = b.build();
        assert_eq!(minimize(&l).num_states(), 3);
    }

    #[test]
    fn identical_selfloop_states_collapse() {
        let mut b = LtsBuilder::new(4, 0);
        for s in 0..4 {
            b.add("tick", s, (s + 1) % 4);
        }
        // every state behaves the same: one 'tick' to a similar state
        let min = minimize(&b.build());
        assert_eq!(min.num_states(), 1);
        assert_eq!(min.num_transitions(), 1);
    }

    #[test]
    fn different_alphabets_stay_apart() {
        let mut b = LtsBuilder::new(2, 0);
        b.add("a", 0, 0);
        b.add("b", 1, 1);
        let min = minimize(&b.build());
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn nondeterminism_is_preserved() {
        // 0 --a--> 1 (deadlock), 0 --a--> 2 --b--> 2
        let mut b = LtsBuilder::new(3, 0);
        b.add("a", 0, 1);
        b.add("a", 0, 2);
        b.add("b", 2, 2);
        let min = minimize(&b.build());
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn quotient_maps_initial_state() {
        let mut b = LtsBuilder::new(2, 1);
        b.add("x", 1, 0);
        let l = b.build();
        let min = minimize(&l);
        // initial block still has the outgoing x
        assert_eq!(min.successors(min.initial()).count(), 1);
    }

    #[test]
    fn minimization_is_idempotent() {
        let mut b = LtsBuilder::new(6, 0);
        b.add("a", 0, 1);
        b.add("a", 0, 2);
        b.add("c", 1, 3);
        b.add("c", 2, 4);
        b.add("d", 3, 5);
        b.add("d", 4, 5);
        let once = minimize(&b.build());
        let twice = minimize(&once);
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_transitions(), twice.num_transitions());
    }
}
