//! Aldebaran (`.aut`) and GraphViz DOT serialization.
//!
//! The Aldebaran format is the textual LTS exchange format of the CADP
//! toolbox the paper's tool chain is built on:
//!
//! ```text
//! des (<initial>, <#transitions>, <#states>)
//! (<from>, "<label>", <to>)
//! ...
//! ```
//!
//! CADP spells the internal action `i`; we convert to and from our `tau`.

use std::fmt::Write as _;

use crate::model::{Lts, LtsBuilder};

/// Error raised when parsing an Aldebaran file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAutError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseAutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aut parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAutError {}

/// Serializes an LTS in Aldebaran format.
///
/// # Examples
///
/// ```
/// use unicon_lts::{io, LtsBuilder};
///
/// let mut b = LtsBuilder::new(2, 0);
/// b.add("go", 0, 1);
/// let text = io::to_aut(&b.build());
/// assert!(text.starts_with("des (0, 1, 2)"));
/// ```
pub fn to_aut(lts: &Lts) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "des ({}, {}, {})",
        lts.initial(),
        lts.num_transitions(),
        lts.num_states()
    )
    .expect("writing to a String cannot fail");
    for t in lts.transitions() {
        let name = lts.actions().name(t.action);
        let label = if t.action.is_tau() { "i" } else { name };
        writeln!(out, "({}, \"{}\", {})", t.source, label, t.target)
            .expect("writing to a String cannot fail");
    }
    out
}

/// Parses an LTS from Aldebaran format.
///
/// # Errors
///
/// Returns [`ParseAutError`] on malformed headers or transition lines, out
/// of range state numbers, or a missing `des` header.
pub fn from_aut(text: &str) -> Result<Lts, ParseAutError> {
    let mut lines = text.lines().enumerate();
    let (first_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or_else(|| ParseAutError {
            line: 1,
            message: "empty input".into(),
        })?;
    let header = header.trim();
    let err = |line: usize, message: &str| ParseAutError {
        line: line + 1,
        message: message.into(),
    };
    let body = header
        .strip_prefix("des")
        .ok_or_else(|| err(first_no, "expected 'des (...)' header"))?
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(first_no, "malformed des header"))?;
    let parts: Vec<&str> = body.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(err(first_no, "des header needs three fields"));
    }
    let initial: u32 = parts[0]
        .parse()
        .map_err(|_| err(first_no, "bad initial state"))?;
    let num_transitions: usize = parts[1]
        .parse()
        .map_err(|_| err(first_no, "bad transition count"))?;
    let num_states: usize = parts[2]
        .parse()
        .map_err(|_| err(first_no, "bad state count"))?;
    if num_states == 0 {
        return Err(err(first_no, "an LTS needs at least one state"));
    }
    if (initial as usize) >= num_states {
        return Err(err(first_no, "initial state out of range"));
    }

    let mut builder = LtsBuilder::new(num_states, initial);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let inner = line
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| err(no, "expected '(from, \"label\", to)'"))?;
        // label may contain commas, so split once from each end
        let (from_str, rest) = inner
            .split_once(',')
            .ok_or_else(|| err(no, "missing fields"))?;
        let (label_part, to_str) = rest
            .rsplit_once(',')
            .ok_or_else(|| err(no, "missing fields"))?;
        let from: u32 = from_str
            .trim()
            .parse()
            .map_err(|_| err(no, "bad source state"))?;
        let to: u32 = to_str
            .trim()
            .parse()
            .map_err(|_| err(no, "bad target state"))?;
        if (from as usize) >= num_states || (to as usize) >= num_states {
            return Err(err(no, "state out of range"));
        }
        let label = label_part.trim();
        let label = label
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(label);
        let label = if label == "i" { crate::TAU_NAME } else { label };
        builder.add(label, from, to);
        seen += 1;
    }
    if seen != num_transitions {
        return Err(ParseAutError {
            line: first_no + 1,
            message: format!("header promised {num_transitions} transitions, found {seen}"),
        });
    }
    Ok(builder.build())
}

/// Renders an LTS as a GraphViz DOT digraph (for debugging / papers).
pub fn to_dot(lts: &Lts, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{name}\" {{").expect("writing to a String cannot fail");
    writeln!(out, "  rankdir=LR;").expect("writing to a String cannot fail");
    writeln!(out, "  {} [shape=circle, style=bold];", lts.initial())
        .expect("writing to a String cannot fail");
    for t in lts.transitions() {
        let label = lts.actions().name(t.action);
        writeln!(out, "  {} -> {} [label=\"{}\"];", t.source, t.target, label)
            .expect("writing to a String cannot fail");
    }
    writeln!(out, "}}").expect("writing to a String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lts {
        let mut b = LtsBuilder::new(3, 0);
        b.add("fail", 0, 1);
        b.add_tau(1, 2);
        b.add("repair", 2, 0);
        b.build()
    }

    #[test]
    fn aut_roundtrip() {
        let l = sample();
        let text = to_aut(&l);
        let back = from_aut(&text).expect("roundtrip parse");
        assert_eq!(back.num_states(), l.num_states());
        assert_eq!(back.num_transitions(), l.num_transitions());
        assert_eq!(back.initial(), l.initial());
        // tau survives the i <-> tau conversion
        assert!(back.has_tau(1));
    }

    #[test]
    fn aut_uses_i_for_tau() {
        let text = to_aut(&sample());
        assert!(text.contains("\"i\""));
        assert!(!text.contains("\"tau\""));
    }

    #[test]
    fn parse_rejects_garbage_header() {
        assert!(from_aut("nonsense").is_err());
        assert!(from_aut("des (0, 0)").is_err());
        assert!(from_aut("des (5, 0, 2)").is_err());
    }

    #[test]
    fn parse_rejects_wrong_transition_count() {
        let e = from_aut("des (0, 2, 2)\n(0, \"a\", 1)\n").unwrap_err();
        assert!(e.message.contains("promised"));
    }

    #[test]
    fn parse_rejects_out_of_range_states() {
        assert!(from_aut("des (0, 1, 2)\n(0, \"a\", 7)\n").is_err());
    }

    #[test]
    fn parse_accepts_blank_lines_and_unquoted_labels() {
        let l = from_aut("\ndes (0, 1, 2)\n\n(0, a, 1)\n").expect("parse");
        assert_eq!(l.num_transitions(), 1);
        assert_eq!(l.actions().name(l.transitions()[0].action), "a");
    }

    #[test]
    fn dot_mentions_all_labels() {
        let d = to_dot(&sample(), "test");
        assert!(d.contains("fail") && d.contains("repair") && d.contains("tau"));
        assert!(d.starts_with("digraph"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = from_aut("des (0, 9, 1)").unwrap_err();
        let s = e.to_string();
        assert!(s.contains("line"));
    }
}
