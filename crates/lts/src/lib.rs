//! Labeled transition systems (LTSs) for the `unicon` workspace.
//!
//! LTSs are the purely functional component models of the paper's modelling
//! trajectory: the workstations, switches, backbone and repair unit of the
//! fault-tolerant workstation cluster are all plain LTSs, later enriched with
//! timing by composition with *time-constraint* IMCs. An LTS is also the
//! degenerate uniform IMC with rate `E = 0`.
//!
//! The crate provides:
//!
//! * interned [`action`] labels with the distinguished internal action τ,
//! * the [`Lts`] model with a builder,
//! * the process-algebraic operators of the paper — [`Lts::hide`],
//!   [`Lts::relabel`], and CSP/LOTOS-style parallel composition
//!   [`Lts::parallel`] with a synchronization set,
//! * strong [`bisim`]ulation minimization,
//! * Aldebaran (`.aut`, CADP-compatible) and GraphViz DOT [`io`].
//!
//! # Examples
//!
//! ```
//! use unicon_lts::LtsBuilder;
//!
//! // A component that can fail and be repaired.
//! let mut b = LtsBuilder::new(2, 0);
//! b.add("fail", 0, 1);
//! b.add("repair", 1, 0);
//! let component = b.build();
//!
//! // Two interleaved copies, synchronized on nothing.
//! let two = component.parallel(&component, &[]);
//! assert_eq!(two.num_states(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod bisim;
pub mod io;
mod model;
pub mod ops;

pub use action::{ActionId, ActionTable, TAU_NAME};
pub use model::{Lts, LtsBuilder, Transition};
