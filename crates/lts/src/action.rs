//! Interned action labels.
//!
//! Every model owns an [`ActionTable`] mapping compact [`ActionId`]s to
//! string labels. Index 0 is always the distinguished internal action τ
//! (named [`TAU_NAME`]), which hiding produces and which the maximal-progress
//! and urgency assumptions give precedence over Markov transitions.

use std::collections::HashMap;
use std::fmt;

/// The name of the internal action τ.
///
/// The Aldebaran format uses `"i"` for the internal action; [`crate::io`]
/// converts between the two spellings.
pub const TAU_NAME: &str = "tau";

/// Compact identifier of an action within a model's [`ActionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// The internal action τ (always id 0).
    pub const TAU: ActionId = ActionId(0);

    /// Whether this is the internal action.
    pub fn is_tau(self) -> bool {
        self == Self::TAU
    }

    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between action names and [`ActionId`]s.
///
/// τ is pre-interned at id 0.
///
/// # Examples
///
/// ```
/// use unicon_lts::{ActionTable, ActionId};
///
/// let mut t = ActionTable::new();
/// let fail = t.intern("fail");
/// assert_eq!(t.intern("fail"), fail); // idempotent
/// assert_eq!(t.name(fail), "fail");
/// assert_eq!(t.intern("tau"), ActionId::TAU);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionTable {
    names: Vec<String>,
    index: HashMap<String, ActionId>,
}

impl ActionTable {
    /// Creates a table containing only τ.
    pub fn new() -> Self {
        let mut t = Self {
            names: Vec::new(),
            index: HashMap::new(),
        };
        let tau = t.intern(TAU_NAME);
        debug_assert_eq!(tau, ActionId::TAU);
        t
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> ActionId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id =
            ActionId(u32::try_from(self.names.len()).expect("more than 2^32 distinct actions"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned action by name.
    pub fn lookup(&self, name: &str) -> Option<ActionId> {
        self.index.get(name).copied()
    }

    /// The name of an action.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: ActionId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned actions (including τ).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table holds only τ.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ActionId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ActionId(i as u32), n.as_str()))
    }

    /// All visible (non-τ) action names.
    pub fn visible(&self) -> impl Iterator<Item = (ActionId, &str)> {
        self.iter().filter(|(id, _)| !id.is_tau())
    }
}

impl Default for ActionTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_id_zero() {
        let t = ActionTable::new();
        assert_eq!(t.lookup(TAU_NAME), Some(ActionId::TAU));
        assert!(ActionId::TAU.is_tau());
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = ActionTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a, ActionId(1));
        assert_eq!(b, ActionId(2));
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn name_roundtrip() {
        let mut t = ActionTable::new();
        let id = t.intern("g_wsL");
        assert_eq!(t.name(id), "g_wsL");
        assert_eq!(t.name(ActionId::TAU), TAU_NAME);
    }

    #[test]
    fn visible_excludes_tau() {
        let mut t = ActionTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<_> = t.visible().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn lookup_missing() {
        let t = ActionTable::new();
        assert_eq!(t.lookup("nope"), None);
    }
}
