//! Process-algebraic operators on LTSs: hiding, relabelling, parallel
//! composition with CSP/LOTOS-style synchronization sets, and restriction to
//! reachable states.
//!
//! These mirror the structural operational semantics rules of Section 3 of
//! the paper (minus the Markov rules, which live in `unicon-imc`).

use std::collections::HashMap;

use crate::action::{ActionId, ActionTable};
use crate::model::{Lts, Transition};

impl Lts {
    /// Hides (internalizes) the named actions: each becomes τ.
    ///
    /// Unknown action names are ignored (hiding an action the model does not
    /// use is a no-op, as in CADP's SVL).
    ///
    /// # Examples
    ///
    /// ```
    /// use unicon_lts::LtsBuilder;
    ///
    /// let mut b = LtsBuilder::new(2, 0);
    /// b.add("fail", 0, 1);
    /// let h = b.build().hide(&["fail"]);
    /// assert!(h.has_tau(0));
    /// ```
    pub fn hide(&self, actions: &[&str]) -> Lts {
        let hidden: Vec<ActionId> = actions
            .iter()
            .filter_map(|a| self.actions().lookup(a))
            .collect();
        self.rename_actions(|id, table| {
            if hidden.contains(&id) {
                ActionId::TAU
            } else {
                let _ = table;
                id
            }
        })
    }

    /// Hides every action *except* the named ones (and τ).
    pub fn hide_all_but(&self, keep: &[&str]) -> Lts {
        let kept: Vec<ActionId> = keep
            .iter()
            .filter_map(|a| self.actions().lookup(a))
            .collect();
        self.rename_actions(|id, _| {
            if id.is_tau() || kept.contains(&id) {
                id
            } else {
                ActionId::TAU
            }
        })
    }

    /// Renames actions according to `(from, to)` pairs (process-algebraic
    /// relabelling, used to instantiate the generic `g`/`r` actions of a
    /// component as `g_wsL`/`r_wsL` etc.).
    ///
    /// # Panics
    ///
    /// Panics if a `from` action is τ (τ cannot be relabelled).
    pub fn relabel(&self, map: &[(&str, &str)]) -> Lts {
        let mut new_actions = ActionTable::new();
        let rename: HashMap<&str, &str> = map.iter().copied().collect();
        assert!(
            !rename.contains_key(crate::TAU_NAME),
            "the internal action tau cannot be relabelled"
        );
        let mut translate = Vec::with_capacity(self.actions().len());
        for (_, name) in self.actions().iter() {
            let new_name = rename.get(name).copied().unwrap_or(name);
            translate.push(new_actions.intern(new_name));
        }
        let transitions = self
            .transitions()
            .iter()
            .map(|t| Transition {
                source: t.source,
                action: translate[t.action.index()],
                target: t.target,
            })
            .collect();
        Lts::from_raw(new_actions, self.num_states(), self.initial(), transitions)
    }

    fn rename_actions<F>(&self, mut f: F) -> Lts
    where
        F: FnMut(ActionId, &ActionTable) -> ActionId,
    {
        let mut new_actions = ActionTable::new();
        let mut translate = Vec::with_capacity(self.actions().len());
        for (id, name) in self.actions().iter() {
            let mapped = f(id, self.actions());
            if mapped.is_tau() {
                translate.push(ActionId::TAU);
            } else {
                translate.push(new_actions.intern(name));
            }
        }
        let transitions = self
            .transitions()
            .iter()
            .map(|t| Transition {
                source: t.source,
                action: translate[t.action.index()],
                target: t.target,
            })
            .collect();
        Lts::from_raw(new_actions, self.num_states(), self.initial(), transitions)
    }

    /// CSP/LOTOS-style parallel composition `self |[sync]| other`.
    ///
    /// Actions in `sync` must be performed jointly; all other actions (and τ)
    /// interleave. Only the reachable part of the product is constructed.
    ///
    /// # Panics
    ///
    /// Panics if `sync` contains τ.
    ///
    /// # Examples
    ///
    /// ```
    /// use unicon_lts::LtsBuilder;
    ///
    /// let mut a = LtsBuilder::new(2, 0);
    /// a.add("go", 0, 1);
    /// let a = a.build();
    /// let mut b = LtsBuilder::new(2, 0);
    /// b.add("go", 0, 1);
    /// let b = b.build();
    ///
    /// // Synchronized: both move together, 2 reachable states.
    /// assert_eq!(a.parallel(&b, &["go"]).num_states(), 2);
    /// // Interleaved: 4 reachable states.
    /// assert_eq!(a.parallel(&b, &[]).num_states(), 4);
    /// ```
    pub fn parallel(&self, other: &Lts, sync: &[&str]) -> Lts {
        assert!(
            !sync.contains(&crate::TAU_NAME),
            "tau cannot be in a synchronization set"
        );
        let mut actions = ActionTable::new();
        // Translate both alphabets into the union table.
        let left_tr: Vec<ActionId> = self
            .actions()
            .iter()
            .map(|(_, n)| actions.intern(n))
            .collect();
        let right_tr: Vec<ActionId> = other
            .actions()
            .iter()
            .map(|(_, n)| actions.intern(n))
            .collect();
        let sync_ids: Vec<ActionId> = sync.iter().map(|a| actions.intern(a)).collect();
        // Per-action lookup table over the union alphabet: O(1) sync tests
        // instead of a linear scan per transition.
        let mut is_sync = vec![false; actions.len()];
        for &a in &sync_ids {
            is_sync[a.index()] = true;
        }
        // Union action id -> right-local action id (interning is injective),
        // so synchronized matches can binary-search `other`'s sorted
        // per-state slice instead of filtering it transition by transition.
        let mut right_of_union: Vec<Option<ActionId>> = vec![None; actions.len()];
        for (local, &union) in right_tr.iter().enumerate() {
            right_of_union[union.index()] = Some(ActionId(local as u32));
        }

        // On-the-fly reachable product construction.
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut states: Vec<(u32, u32)> = Vec::new();
        let mut transitions: Vec<Transition> = Vec::new();
        let start = (self.initial(), other.initial());
        index.insert(start, 0);
        states.push(start);
        let mut frontier = vec![start];
        while let Some((ls, rs)) = frontier.pop() {
            let src = index[&(ls, rs)];
            let mut push = |index: &mut HashMap<(u32, u32), u32>,
                            states: &mut Vec<(u32, u32)>,
                            frontier: &mut Vec<(u32, u32)>,
                            action: ActionId,
                            tgt: (u32, u32)| {
                let id = *index.entry(tgt).or_insert_with(|| {
                    states.push(tgt);
                    frontier.push(tgt);
                    (states.len() - 1) as u32
                });
                transitions.push(Transition {
                    source: src,
                    action,
                    target: id,
                });
            };
            let left_succ = self.successors_slice(ls);
            let right_succ = other.successors_slice(rs);
            for t in left_succ {
                let a = left_tr[t.action.index()];
                if !is_sync[a.index()] {
                    push(&mut index, &mut states, &mut frontier, a, (t.target, rs));
                }
            }
            for t in right_succ {
                let a = right_tr[t.action.index()];
                if !is_sync[a.index()] {
                    push(&mut index, &mut states, &mut frontier, a, (ls, t.target));
                }
            }
            // Synchronized moves: the right matches for one action form a
            // contiguous run of the (action, target)-sorted slice, found by
            // binary search — same transitions in the same order, so the
            // product state numbering is untouched.
            for lt in left_succ {
                let a = left_tr[lt.action.index()];
                if is_sync[a.index()] {
                    let Some(ra) = right_of_union[a.index()] else {
                        continue;
                    };
                    let lo = right_succ.partition_point(|t| t.action < ra);
                    let hi = lo + right_succ[lo..].partition_point(|t| t.action == ra);
                    for rt in &right_succ[lo..hi] {
                        push(
                            &mut index,
                            &mut states,
                            &mut frontier,
                            a,
                            (lt.target, rt.target),
                        );
                    }
                }
            }
        }
        Lts::from_raw(actions, states.len(), 0, transitions)
    }

    /// Restricts the model to its reachable states, renumbering them in
    /// discovery order (the initial state becomes 0).
    pub fn restrict_to_reachable(&self) -> Lts {
        let reach = self.reachable_states();
        let mut map = vec![u32::MAX; self.num_states()];
        let mut next = 0u32;
        // stable renumbering: state order preserved
        for (s, &r) in reach.iter().enumerate() {
            if r {
                map[s] = next;
                next += 1;
            }
        }
        let transitions = self
            .transitions()
            .iter()
            .filter(|t| reach[t.source as usize])
            .map(|t| Transition {
                source: map[t.source as usize],
                action: t.action,
                target: map[t.target as usize],
            })
            .collect();
        Lts::from_raw(
            self.actions().clone(),
            next as usize,
            map[self.initial() as usize],
            transitions,
        )
    }
}

/// Builds the n-fold interleaving `lts ||| lts ||| … ||| lts` (empty
/// synchronization set).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn interleave_copies(lts: &Lts, n: usize) -> Lts {
    assert!(n > 0, "need at least one copy");
    let mut acc = lts.clone();
    for _ in 1..n {
        acc = acc.parallel(lts, &[]);
    }
    acc
}

/// Convenience: fully interleaves a list of LTSs (no synchronization).
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn interleave_all(parts: &[Lts]) -> Lts {
    assert!(!parts.is_empty(), "need at least one LTS");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = acc.parallel(p, &[]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LtsBuilder;

    fn failing_component() -> Lts {
        let mut b = LtsBuilder::new(4, 0);
        b.add("fail", 0, 1);
        b.add("g", 1, 2);
        b.add("repair", 2, 3);
        b.add("r", 3, 0);
        b.build()
    }

    #[test]
    fn hide_turns_actions_into_tau() {
        let h = failing_component().hide(&["fail", "repair"]);
        assert!(h.has_tau(0));
        assert!(h.has_tau(2));
        assert!(!h.has_tau(1));
        // alphabet shrinks
        assert!(h.actions().lookup("fail").is_none());
        assert!(h.actions().lookup("g").is_some());
    }

    #[test]
    fn hide_unknown_action_is_noop() {
        let l = failing_component();
        let h = l.hide(&["nonexistent"]);
        assert_eq!(h.num_transitions(), l.num_transitions());
        assert!(!h.has_tau(0));
    }

    #[test]
    fn hide_all_but_keeps_interface() {
        let h = failing_component().hide_all_but(&["g", "r"]);
        assert!(h.has_tau(0)); // fail became tau
        assert!(h.actions().lookup("g").is_some());
        assert!(h.actions().lookup("fail").is_none());
    }

    #[test]
    fn relabel_renames() {
        let l = failing_component().relabel(&[("g", "g_wsL"), ("r", "r_wsL")]);
        assert!(l.actions().lookup("g_wsL").is_some());
        assert!(l.actions().lookup("g").is_none());
        assert_eq!(l.num_transitions(), 4);
    }

    #[test]
    #[should_panic(expected = "tau cannot be relabelled")]
    fn relabel_rejects_tau() {
        failing_component().relabel(&[("tau", "x")]);
    }

    #[test]
    fn relabel_can_merge_actions() {
        let mut b = LtsBuilder::new(2, 0);
        b.add("a", 0, 1);
        b.add("b", 0, 1);
        let l = b.build().relabel(&[("a", "c"), ("b", "c")]);
        // both transitions collapse onto the same labelled edge
        assert_eq!(l.num_transitions(), 1);
    }

    #[test]
    fn parallel_sync_on_shared_action() {
        let mut a = LtsBuilder::new(2, 0);
        a.add("s", 0, 1);
        a.add("x", 0, 1);
        let a = a.build();
        let mut b = LtsBuilder::new(2, 0);
        b.add("s", 0, 1);
        let b = b.build();
        let p = a.parallel(&b, &["s"]);
        // states: (0,0) -s-> (1,1); (0,0) -x-> (1,0); no s from (1,0)
        assert_eq!(p.num_states(), 3);
        let labels: Vec<&str> = p
            .successors(0)
            .map(|t| p.actions().name(t.action))
            .collect();
        assert!(labels.contains(&"s") && labels.contains(&"x"));
    }

    #[test]
    fn parallel_sync_blocks_when_partner_cannot() {
        let mut a = LtsBuilder::new(2, 0);
        a.add("s", 0, 1);
        let a = a.build();
        let b = LtsBuilder::new(1, 0).build(); // no transitions at all
        let p = a.parallel(&b, &["s"]);
        assert_eq!(p.num_states(), 1);
        assert_eq!(p.num_transitions(), 0);
    }

    #[test]
    fn parallel_tau_always_interleaves() {
        let mut a = LtsBuilder::new(2, 0);
        a.add_tau(0, 1);
        let a = a.build();
        let p = a.parallel(&a, &[]);
        assert_eq!(p.num_states(), 4);
        assert_eq!(p.num_transitions(), 4);
    }

    #[test]
    #[should_panic(expected = "tau cannot be in a synchronization set")]
    fn parallel_rejects_tau_sync() {
        let l = failing_component();
        l.parallel(&l, &["tau"]);
    }

    #[test]
    fn interleave_copies_grows_exponentially() {
        let mut b = LtsBuilder::new(2, 0);
        b.add("t", 0, 1);
        let l = b.build();
        assert_eq!(interleave_copies(&l, 3).num_states(), 8);
    }

    #[test]
    fn restrict_to_reachable_renumbers() {
        let mut b = LtsBuilder::new(4, 1);
        b.add("a", 1, 3);
        b.add("a", 0, 2); // 0 and 2 unreachable from 1
        let l = b.build().restrict_to_reachable();
        assert_eq!(l.num_states(), 2);
        assert_eq!(l.num_transitions(), 1);
        assert_eq!(l.initial(), 0);
    }

    #[test]
    fn parallel_is_commutative_up_to_size() {
        let a = failing_component();
        let mut b = LtsBuilder::new(2, 0);
        b.add("g", 0, 1);
        b.add("r", 1, 0);
        let b = b.build();
        let ab = a.parallel(&b, &["g", "r"]);
        let ba = b.parallel(&a, &["g", "r"]);
        assert_eq!(ab.num_states(), ba.num_states());
        assert_eq!(ab.num_transitions(), ba.num_transitions());
    }
}
