//! Randomized tests for LTS operators and serialization, driven by the
//! in-tree deterministic [`XorShift64`] generator (fixed seeds, no external
//! PRNG).

use unicon_lts::{bisim, io, Lts, LtsBuilder};
use unicon_numeric::rng::{Rng, XorShift64};

const ACTIONS: [&str; 4] = ["tau", "a", "b", "c"];
const CASES: u64 = 128;

/// A random LTS shape: state count plus (action, source, target) triples.
fn raw_lts(rng: &mut XorShift64, max_states: usize) -> (usize, Vec<(u8, u8, u8)>) {
    let n = 1 + rng.random_range(max_states);
    let len = rng.random_range(3 * n);
    let ts = (0..len)
        .map(|_| {
            (
                rng.random_range(4) as u8,
                rng.random_range(n) as u8,
                rng.random_range(n) as u8,
            )
        })
        .collect();
    (n, ts)
}

fn build(n: usize, transitions: &[(u8, u8, u8)]) -> Lts {
    let mut b = LtsBuilder::new(n, 0);
    for &(a, s, t) in transitions {
        b.add(ACTIONS[a as usize], u32::from(s), u32::from(t));
    }
    b.build()
}

/// AUT serialization round-trips exactly.
#[test]
fn aut_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xA07 + case);
        let (n, ts) = raw_lts(&mut rng, 8);
        let l = build(n, &ts);
        let text = io::to_aut(&l);
        let back = io::from_aut(&text).expect("own output parses");
        assert_eq!(back.num_states(), l.num_states());
        assert_eq!(back.num_transitions(), l.num_transitions());
        assert_eq!(back.initial(), l.initial());
        // same transition structure under the same action names
        let name = |l: &Lts, t: &unicon_lts::Transition| {
            (t.source, l.actions().name(t.action).to_owned(), t.target)
        };
        // transition order depends on action interning order, so compare
        // as sorted sets of (source, name, target)
        let mut a: Vec<_> = l.transitions().iter().map(|t| name(&l, t)).collect();
        let mut b: Vec<_> = back.transitions().iter().map(|t| name(&back, t)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

/// Hiding is idempotent and only renames labels.
#[test]
fn hide_idempotent() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x41DE + case);
        let (n, ts) = raw_lts(&mut rng, 8);
        let l = build(n, &ts);
        let h1 = l.hide(&["a", "b"]);
        let h2 = h1.hide(&["a", "b"]);
        assert_eq!(h1.num_states(), h2.num_states());
        assert_eq!(h1.num_transitions(), h2.num_transitions());
        // hiding everything leaves only tau
        let all = l.hide(&["a", "b", "c"]);
        assert!(all.transitions().iter().all(|t| t.action.is_tau()));
    }
}

/// Relabelling with an identity map is the identity.
#[test]
fn relabel_identity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x2E1A + case);
        let (n, ts) = raw_lts(&mut rng, 8);
        let l = build(n, &ts);
        let r = l.relabel(&[("a", "a"), ("b", "b")]);
        assert_eq!(r.num_transitions(), l.num_transitions());
    }
}

/// The product with a single-state, transition-free LTS is isomorphic
/// to the reachable part of the original.
#[test]
fn unit_of_parallel() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x0172 + case);
        let (n, ts) = raw_lts(&mut rng, 8);
        let l = build(n, &ts);
        let unit = LtsBuilder::new(1, 0).build();
        let p = l.parallel(&unit, &[]);
        let reach = l.restrict_to_reachable();
        assert_eq!(p.num_states(), reach.num_states());
        assert_eq!(p.num_transitions(), reach.num_transitions());
    }
}

/// Parallel composition is commutative up to size.
#[test]
fn parallel_commutes_in_size() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xC033 + case);
        let (n1, ts1) = raw_lts(&mut rng, 5);
        let (n2, ts2) = raw_lts(&mut rng, 5);
        let a = build(n1, &ts1);
        let b = build(n2, &ts2);
        let ab = a.parallel(&b, &["a"]);
        let ba = b.parallel(&a, &["a"]);
        assert_eq!(ab.num_states(), ba.num_states());
        assert_eq!(ab.num_transitions(), ba.num_transitions());
    }
}

/// Full synchronization on all visible actions makes the product no
/// larger than the synchronized component languages allow: every
/// reachable product state is a pair of reachable component states.
#[test]
fn product_states_are_component_pairs() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x9A12 + case);
        let (n1, ts1) = raw_lts(&mut rng, 5);
        let (n2, ts2) = raw_lts(&mut rng, 5);
        let a = build(n1, &ts1);
        let b = build(n2, &ts2);
        let p = a.parallel(&b, &[]);
        assert!(p.num_states() <= a.num_states() * b.num_states());
        assert!(p.is_fully_reachable());
    }
}

/// Strong bisimulation minimization: idempotent, size-monotone, and
/// quotienting twice is stable.
#[test]
fn minimization_idempotent() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x1DE9 + case);
        let (n, ts) = raw_lts(&mut rng, 8);
        let l = build(n, &ts).restrict_to_reachable();
        let m1 = bisim::minimize(&l);
        assert!(m1.num_states() <= l.num_states());
        let m2 = bisim::minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
        assert_eq!(m1.num_transitions(), m2.num_transitions());
    }
}

/// Minimization preserves the set of enabled action sequences up to
/// length 2 from the initial state (a cheap language check).
#[test]
fn minimization_preserves_short_traces() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x77AC + case);
        let (n, ts) = raw_lts(&mut rng, 7);
        let l = build(n, &ts);
        let m = bisim::minimize(&l);
        let traces = |x: &Lts| {
            let mut out = std::collections::BTreeSet::new();
            for t1 in x.successors(x.initial()) {
                out.insert(vec![x.actions().name(t1.action).to_owned()]);
                for t2 in x.successors(t1.target) {
                    out.insert(vec![
                        x.actions().name(t1.action).to_owned(),
                        x.actions().name(t2.action).to_owned(),
                    ]);
                }
            }
            out
        };
        assert_eq!(traces(&l), traces(&m));
    }
}
