//! Property-based tests for LTS operators and serialization.

use proptest::prelude::*;
use unicon_lts::{bisim, io, Lts, LtsBuilder};

const ACTIONS: [&str; 4] = ["tau", "a", "b", "c"];

fn raw_lts(max_states: usize) -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>)> {
    (1..=max_states).prop_flat_map(move |n| {
        let nn = n as u8;
        (
            Just(n),
            prop::collection::vec((0u8..4, 0..nn, 0..nn), 0..(3 * n)),
        )
    })
}

fn build(n: usize, transitions: &[(u8, u8, u8)]) -> Lts {
    let mut b = LtsBuilder::new(n, 0);
    for &(a, s, t) in transitions {
        b.add(ACTIONS[a as usize], u32::from(s), u32::from(t));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// AUT serialization round-trips exactly.
    #[test]
    fn aut_roundtrip((n, ts) in raw_lts(8)) {
        let l = build(n, &ts);
        let text = io::to_aut(&l);
        let back = io::from_aut(&text).expect("own output parses");
        prop_assert_eq!(back.num_states(), l.num_states());
        prop_assert_eq!(back.num_transitions(), l.num_transitions());
        prop_assert_eq!(back.initial(), l.initial());
        // same transition structure under the same action names
        let name = |l: &Lts, t: &unicon_lts::Transition| {
            (t.source, l.actions().name(t.action).to_owned(), t.target)
        };
        // transition order depends on action interning order, so compare
        // as sorted sets of (source, name, target)
        let mut a: Vec<_> = l.transitions().iter().map(|t| name(&l, t)).collect();
        let mut b: Vec<_> = back.transitions().iter().map(|t| name(&back, t)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Hiding is idempotent and only renames labels.
    #[test]
    fn hide_idempotent((n, ts) in raw_lts(8)) {
        let l = build(n, &ts);
        let h1 = l.hide(&["a", "b"]);
        let h2 = h1.hide(&["a", "b"]);
        prop_assert_eq!(h1.num_states(), h2.num_states());
        prop_assert_eq!(h1.num_transitions(), h2.num_transitions());
        // hiding everything leaves only tau
        let all = l.hide(&["a", "b", "c"]);
        prop_assert!(all
            .transitions()
            .iter()
            .all(|t| t.action.is_tau()));
    }

    /// Relabelling with an identity map is the identity.
    #[test]
    fn relabel_identity((n, ts) in raw_lts(8)) {
        let l = build(n, &ts);
        let r = l.relabel(&[("a", "a"), ("b", "b")]);
        prop_assert_eq!(r.num_transitions(), l.num_transitions());
    }

    /// The product with a single-state, transition-free LTS is isomorphic
    /// to the reachable part of the original.
    #[test]
    fn unit_of_parallel((n, ts) in raw_lts(8)) {
        let l = build(n, &ts);
        let unit = LtsBuilder::new(1, 0).build();
        let p = l.parallel(&unit, &[]);
        let reach = l.restrict_to_reachable();
        prop_assert_eq!(p.num_states(), reach.num_states());
        prop_assert_eq!(p.num_transitions(), reach.num_transitions());
    }

    /// Parallel composition is commutative up to size.
    #[test]
    fn parallel_commutes_in_size((n1, ts1) in raw_lts(5), (n2, ts2) in raw_lts(5)) {
        let a = build(n1, &ts1);
        let b = build(n2, &ts2);
        let ab = a.parallel(&b, &["a"]);
        let ba = b.parallel(&a, &["a"]);
        prop_assert_eq!(ab.num_states(), ba.num_states());
        prop_assert_eq!(ab.num_transitions(), ba.num_transitions());
    }

    /// Full synchronization on all visible actions makes the product no
    /// larger than the synchronized component languages allow: every
    /// reachable product state is a pair of reachable component states.
    #[test]
    fn product_states_are_component_pairs((n1, ts1) in raw_lts(5), (n2, ts2) in raw_lts(5)) {
        let a = build(n1, &ts1);
        let b = build(n2, &ts2);
        let p = a.parallel(&b, &[]);
        prop_assert!(p.num_states() <= a.num_states() * b.num_states());
        prop_assert!(p.is_fully_reachable());
    }

    /// Strong bisimulation minimization: idempotent, size-monotone, and
    /// quotienting twice is stable.
    #[test]
    fn minimization_idempotent((n, ts) in raw_lts(8)) {
        let l = build(n, &ts).restrict_to_reachable();
        let m1 = bisim::minimize(&l);
        prop_assert!(m1.num_states() <= l.num_states());
        let m2 = bisim::minimize(&m1);
        prop_assert_eq!(m1.num_states(), m2.num_states());
        prop_assert_eq!(m1.num_transitions(), m2.num_transitions());
    }

    /// Minimization preserves the set of enabled action sequences up to
    /// length 2 from the initial state (a cheap language check).
    #[test]
    fn minimization_preserves_short_traces((n, ts) in raw_lts(7)) {
        let l = build(n, &ts);
        let m = bisim::minimize(&l);
        let traces = |x: &Lts| {
            let mut out = std::collections::BTreeSet::new();
            for t1 in x.successors(x.initial()) {
                out.insert(vec![x.actions().name(t1.action).to_owned()]);
                for t2 in x.successors(t1.target) {
                    out.insert(vec![
                        x.actions().name(t1.action).to_owned(),
                        x.actions().name(t2.action).to_owned(),
                    ]);
                }
            }
            out
        };
        prop_assert_eq!(traces(&l), traces(&m));
    }
}
