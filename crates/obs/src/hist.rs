//! Integer-exact histograms with fixed log-scale buckets.
//!
//! Bucket bounds are the powers of two `1, 2, 4, …, 2^39` plus `+Inf`.
//! Observations, counts and sums are all integers (nanoseconds or
//! counts), so two runs observing the same values render byte-identical
//! expositions on every platform — no float formatting is involved.

/// Number of buckets: upper bounds `2^0 … 2^39`, then `+Inf`.
/// `2^39` ns ≈ 9.2 minutes, far above any single span in the pipeline.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// A fixed log₂-bucket histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }

    /// The index of the bucket `v` falls into: the smallest `i` with
    /// `v ≤ bound(i)`, or the overflow bucket.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v ≥ 2, exactly, in integers.
        let idx = (64 - (v - 1).leading_zeros()) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, or `None` for `+Inf`.
    #[must_use]
    pub fn bound(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Records one observation (sum saturates instead of wrapping).
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts.
    #[must_use]
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Cumulative counts in bucket order — the Prometheus `le` series.
    #[must_use]
    pub fn cumulative(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0; HISTOGRAM_BUCKETS];
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary contract: a value equal to a bucket bound lands in
    /// that bucket; one above it spills into the next.
    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bound(i).expect("finite bucket");
            assert_eq!(Histogram::bucket_index(bound), i, "bound {bound} inclusive");
            assert_eq!(
                Histogram::bucket_index(bound + 1),
                i + 1,
                "bound {bound} + 1 spills over"
            );
        }
        // the overflow bucket catches everything beyond the last bound
        assert_eq!(Histogram::bound(HISTOGRAM_BUCKETS - 1), None);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn observe_accumulates_exactly() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 3, 1 << 39, (1 << 39) + 1] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 2 + 3 + (1 << 39) + (1 << 39) + 1);
        assert_eq!(h.counts()[0], 1); // the 1
        assert_eq!(h.counts()[1], 2); // both 2s
        assert_eq!(h.counts()[2], 1); // the 3
        assert_eq!(h.counts()[39], 1); // exactly 2^39
        assert_eq!(h.counts()[40], 1); // the overflow
        let cum = h.cumulative();
        assert_eq!(cum[HISTOGRAM_BUCKETS - 1], 6, "cumulative ends at count");
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone");
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
