//! Integer-exact histograms with fixed log-scale buckets.
//!
//! Bucket bounds are the powers of two `1, 2, 4, …, 2^39` plus `+Inf`.
//! Observations, counts and sums are all integers (nanoseconds or
//! counts), so two runs observing the same values render byte-identical
//! expositions on every platform — no float formatting is involved.

/// Number of buckets: upper bounds `2^0 … 2^39`, then `+Inf`.
/// `2^39` ns ≈ 9.2 minutes, far above any single span in the pipeline.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// A fixed log₂-bucket histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
            max: 0,
        }
    }

    /// The index of the bucket `v` falls into: the smallest `i` with
    /// `v ≤ bound(i)`, or the overflow bucket.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v ≥ 2, exactly, in integers.
        let idx = (64 - (v - 1).leading_zeros()) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, or `None` for `+Inf`.
    #[must_use]
    pub fn bound(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << i)
        } else {
            None
        }
    }

    /// Records one observation (sum saturates instead of wrapping).
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// The largest observation, tracked exactly; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Exact-bucket quantile estimate for `q ∈ [0, 1]`: the inclusive
    /// upper bound of the first bucket whose cumulative count reaches
    /// rank `⌈q·count⌉` (rank 1 at minimum), capped at the exact
    /// tracked maximum. The cap makes a single observation and the
    /// overflow bucket exact, and every estimate is computed in pure
    /// integer arithmetic — two runs observing the same values report
    /// byte-identical quantiles on every platform. `None` when the
    /// histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ⌈q·count⌉ without float rounding surprises at the top: the
        // product is clamped back into [1, count].
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(match Self::bound(i) {
                    Some(b) => b.min(self.max),
                    None => self.max,
                });
            }
        }
        Some(self.max)
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts.
    #[must_use]
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Cumulative counts in bucket order — the Prometheus `le` series.
    #[must_use]
    pub fn cumulative(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0; HISTOGRAM_BUCKETS];
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary contract: a value equal to a bucket bound lands in
    /// that bucket; one above it spills into the next.
    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bound(i).expect("finite bucket");
            assert_eq!(Histogram::bucket_index(bound), i, "bound {bound} inclusive");
            assert_eq!(
                Histogram::bucket_index(bound + 1),
                i + 1,
                "bound {bound} + 1 spills over"
            );
        }
        // the overflow bucket catches everything beyond the last bound
        assert_eq!(Histogram::bound(HISTOGRAM_BUCKETS - 1), None);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn observe_accumulates_exactly() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 3, 1 << 39, (1 << 39) + 1] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 2 + 3 + (1 << 39) + (1 << 39) + 1);
        assert_eq!(h.counts()[0], 1); // the 1
        assert_eq!(h.counts()[1], 2); // both 2s
        assert_eq!(h.counts()[2], 1); // the 3
        assert_eq!(h.counts()[39], 1); // exactly 2^39
        assert_eq!(h.counts()[40], 1); // the overflow
        let cum = h.cumulative();
        assert_eq!(cum[HISTOGRAM_BUCKETS - 1], 6, "cumulative ends at count");
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone");
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        assert_eq!(h.max(), None);
    }

    /// A single sample is exact at every quantile: the bucket upper
    /// bound is capped at the tracked maximum.
    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.observe(100); // bucket bound is 128
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(100), "q={q}");
        }
        assert_eq!(h.max(), Some(100));
    }

    /// All samples in one bucket: every quantile reports that bucket,
    /// capped at the exact maximum observed inside it.
    #[test]
    fn all_in_one_bucket_quantiles_report_the_bucket() {
        let mut h = Histogram::new();
        for v in [65, 80, 100, 127] {
            h.observe(v); // all in the (64, 128] bucket
        }
        for q in [0.0, 0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), Some(127), "q={q}");
        }
        assert_eq!(h.max(), Some(127));
    }

    /// Observations beyond the last finite bound land in the +Inf
    /// bucket; quantiles there report the exact tracked maximum instead
    /// of an unbounded estimate — u64::MAX included.
    #[test]
    fn overflow_bucket_quantiles_use_the_exact_max() {
        let mut h = Histogram::new();
        h.observe(1);
        h.observe(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.99), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    /// Rank arithmetic at exact bucket boundaries: with samples at the
    /// inclusive bound of distinct buckets, each quantile resolves to a
    /// bound, never interpolates, and p0 takes rank 1.
    #[test]
    fn quantile_ranks_resolve_to_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.observe(v); // four distinct buckets, one sample each
        }
        assert_eq!(h.quantile(0.0), Some(1)); // rank 1
        assert_eq!(h.quantile(0.25), Some(1)); // rank 1
        assert_eq!(h.quantile(0.5), Some(2)); // rank 2
        assert_eq!(h.quantile(0.75), Some(4)); // rank 3
        assert_eq!(h.quantile(1.0), Some(8)); // rank 4
    }
}
