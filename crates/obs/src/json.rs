//! A minimal hand-rolled JSON writer and parser — just enough for the
//! JSONL trace format and its round-trip tests, with zero dependencies.
//!
//! The writer escapes strings per RFC 8259 and renders floats in
//! exponent notation (Rust's shortest round-trip form), emitting `null`
//! for non-finite values (JSON has no NaN/∞). The parser is a strict
//! recursive-descent reader for the full value grammar.

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float in shortest round-trip exponent form, or `null` when
/// non-finite.
pub fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:e}"));
    } else {
        out.push_str("null");
    }
}

/// A parse failure: byte offset plus a static reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What was wrong there.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Numbers are `f64` (the trace format keeps
/// integers within the exact range and ships checksums as hex strings,
/// so nothing precision-critical rides on a double).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first violation.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, word: &'static str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape digits"))?;
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 char; the input is a &str so the
                    // byte stream is valid by construction
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii by construction");
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            reason: "malformed number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_floats_round_trip() {
        let mut s = String::new();
        write_str("a\"b\\c\nd\u{1}e", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        let parsed = Value::parse(&s).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{1}e"));

        for x in [0.0, 1.0, -2.5, 1e-300, 6.02e23, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_f64(x, &mut out);
            let back = Value::parse(&out).expect("number parses");
            assert_eq!(back.as_f64().map(f64::to_bits), Some(x.to_bits()));
        }
        let mut nan = String::new();
        write_f64(f64::NAN, &mut nan);
        assert_eq!(nan, "null");
    }

    #[test]
    fn parser_reads_nested_documents() {
        let v = Value::parse(r#"{"a":[1,2.5e-1,true,null],"b":{"c":"x"}}"#).expect("parses");
        let arr = match v.get("a") {
            Some(Value::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].as_f64(), Some(0.25));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x")
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
