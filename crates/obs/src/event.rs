//! The typed event vocabulary and its JSONL rendering.

use crate::json;
use crate::Class;

/// Console log severity, doubling as the console sink's verbosity
/// threshold: `quiet` shows only [`Level::Error`], the default shows
/// everything up to [`Level::Info`], `debug` shows all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see (always shown).
    Error,
    /// Progress and result summaries (the default).
    Info,
    /// Diagnostic chatter.
    Debug,
}

impl Level {
    /// Parses a `--log-level` value: `quiet`, `info` or `debug`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "quiet" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The canonical lowercase name (as serialized into traces).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// One structured telemetry record. Every variant is timestamp-free
/// except the span pair, which carries wall-clock duration measured at
/// the span boundaries only (the bit-invisibility contract).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span began; `parent` is the id of the enclosing open span on
    /// the same thread, if any.
    SpanOpen {
        /// Span name (a static phase label, e.g. `"minimize"`).
        name: &'static str,
        /// Process-unique span id.
        id: u64,
        /// Enclosing span's id, `None` at the root.
        parent: Option<u64>,
    },
    /// A span ended after `nanos` wall-clock nanoseconds.
    SpanClose {
        /// Span name, repeated for self-contained trace lines.
        name: &'static str,
        /// The id issued by the matching [`Event::SpanOpen`].
        id: u64,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
    /// A human log line.
    Log {
        /// Severity.
        level: Level,
        /// Fully formatted message.
        message: String,
    },
    /// A monotonic count contribution (e.g. weight-cache hits).
    Counter {
        /// Metric-safe counter name.
        name: &'static str,
        /// Amount to add.
        value: u64,
    },
    /// A point-in-time level (e.g. active queries, queue depth). Unlike
    /// [`Event::Counter`] contributions, a gauge *replaces* the previous
    /// value.
    Gauge {
        /// Metric-safe gauge name.
        name: &'static str,
        /// The new level.
        value: f64,
    },
    /// One backward value-iteration step of the reach engine.
    ReachIteration {
        /// Query index within its batch.
        query: usize,
        /// Step index `i` (counts down from the truncation point to 1).
        step: usize,
        /// Poisson weight ψ(i) applied this step.
        psi: f64,
        /// Convergence residual: the unprocessed Poisson mass
        /// `Σ_{n < i} ψ(n)` plus the truncated right tail — an upper
        /// bound on the change the remaining steps can still make.
        /// Non-increasing along the iteration; ends `≤ ε`.
        residual: f64,
        /// Bits of the chunked-Neumaier checksum of `q_i`, the same
        /// quantity the determinism gates compare.
        checksum: u64,
    },
    /// A reach query began; records its Fox–Glynn truncation window.
    QueryStart {
        /// Query index within its batch.
        query: usize,
        /// Time bound analyzed.
        t: f64,
        /// Poisson parameter λ = E·t.
        lambda: f64,
        /// Left truncation point L(ε).
        left: usize,
        /// Right truncation point R(ε) = the iteration count.
        right: usize,
    },
    /// One round of the worklist partition refiner.
    RefineRound {
        /// 1-based round number.
        round: usize,
        /// States re-signed this round.
        dirty_states: usize,
        /// Blocks examined for splitting.
        dirty_blocks: usize,
        /// States moved into fresh blocks.
        moved: usize,
        /// Total blocks after the round.
        num_blocks: usize,
    },
    /// One sample for a named histogram (e.g. a request latency in
    /// nanoseconds). Unlike [`Event::Counter`] the value is a
    /// distribution sample, not a sum contribution.
    Observe {
        /// Metric-safe histogram name.
        name: &'static str,
        /// The observed value (integer units, typically nanoseconds).
        value: u64,
    },
    /// One completed serve request: the per-request accounting record
    /// that ties a `request_id` to where its wall-clock went.
    Request {
        /// Session-monotonic request id (also stamped on the response
        /// line and on every trace event emitted while handling it).
        id: u64,
        /// Request verb: `"register"`, `"query"`, `"metrics"`,
        /// `"shutdown"` or `"error"`.
        verb: &'static str,
        /// Nanoseconds between reading the request line and the handler
        /// starting work (admission/queue wait).
        queue_ns: u64,
        /// Nanoseconds the handler ran.
        run_ns: u64,
    },
    /// A guard-layer incident (checkpoint written, degradation, budget
    /// exhaustion, resume).
    Guard {
        /// Incident kind: `"checkpoint"`, `"degradation"`,
        /// `"budget-exhausted"` or `"resumed"`.
        kind: &'static str,
        /// Query index the incident occurred in.
        query: usize,
        /// Value-iteration step at the incident.
        step: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl Event {
    /// The interest class this event belongs to.
    #[must_use]
    pub fn class(&self) -> Class {
        match self {
            Event::SpanOpen { .. } | Event::SpanClose { .. } => Class::Span,
            Event::Log { .. } => Class::Log,
            Event::ReachIteration { .. } => Class::Iter,
            Event::Counter { .. }
            | Event::Gauge { .. }
            | Event::Observe { .. }
            | Event::Request { .. }
            | Event::QueryStart { .. }
            | Event::RefineRound { .. } => Class::Metric,
            Event::Guard { .. } => Class::Guard,
        }
    }

    /// Renders the event as one self-contained JSON object (one JSONL
    /// trace line, without the trailing newline).
    ///
    /// Floats use exponent notation (shortest round-trip form);
    /// checksums are 16-digit hex strings so no reader can lose
    /// precision to a double.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            Event::SpanOpen { name, id, parent } => {
                s.push_str("{\"type\":\"span_open\",\"name\":");
                json::write_str(name, &mut s);
                s.push_str(",\"id\":");
                s.push_str(&id.to_string());
                s.push_str(",\"parent\":");
                match parent {
                    Some(p) => s.push_str(&p.to_string()),
                    None => s.push_str("null"),
                }
                s.push('}');
            }
            Event::SpanClose { name, id, nanos } => {
                s.push_str("{\"type\":\"span_close\",\"name\":");
                json::write_str(name, &mut s);
                s.push_str(",\"id\":");
                s.push_str(&id.to_string());
                s.push_str(",\"nanos\":");
                s.push_str(&nanos.to_string());
                s.push('}');
            }
            Event::Log { level, message } => {
                s.push_str("{\"type\":\"log\",\"level\":");
                json::write_str(level.as_str(), &mut s);
                s.push_str(",\"message\":");
                json::write_str(message, &mut s);
                s.push('}');
            }
            Event::Counter { name, value } => {
                s.push_str("{\"type\":\"counter\",\"name\":");
                json::write_str(name, &mut s);
                s.push_str(",\"value\":");
                s.push_str(&value.to_string());
                s.push('}');
            }
            Event::Gauge { name, value } => {
                s.push_str("{\"type\":\"gauge\",\"name\":");
                json::write_str(name, &mut s);
                s.push_str(",\"value\":");
                json::write_f64(*value, &mut s);
                s.push('}');
            }
            Event::ReachIteration {
                query,
                step,
                psi,
                residual,
                checksum,
            } => {
                s.push_str("{\"type\":\"reach_iteration\",\"query\":");
                s.push_str(&query.to_string());
                s.push_str(",\"step\":");
                s.push_str(&step.to_string());
                s.push_str(",\"psi\":");
                json::write_f64(*psi, &mut s);
                s.push_str(",\"residual\":");
                json::write_f64(*residual, &mut s);
                s.push_str(",\"checksum\":");
                json::write_str(&format!("{checksum:016x}"), &mut s);
                s.push('}');
            }
            Event::QueryStart {
                query,
                t,
                lambda,
                left,
                right,
            } => {
                s.push_str("{\"type\":\"query_start\",\"query\":");
                s.push_str(&query.to_string());
                s.push_str(",\"t\":");
                json::write_f64(*t, &mut s);
                s.push_str(",\"lambda\":");
                json::write_f64(*lambda, &mut s);
                s.push_str(",\"left\":");
                s.push_str(&left.to_string());
                s.push_str(",\"right\":");
                s.push_str(&right.to_string());
                s.push('}');
            }
            Event::RefineRound {
                round,
                dirty_states,
                dirty_blocks,
                moved,
                num_blocks,
            } => {
                s.push_str("{\"type\":\"refine_round\",\"round\":");
                s.push_str(&round.to_string());
                s.push_str(",\"dirty_states\":");
                s.push_str(&dirty_states.to_string());
                s.push_str(",\"dirty_blocks\":");
                s.push_str(&dirty_blocks.to_string());
                s.push_str(",\"moved\":");
                s.push_str(&moved.to_string());
                s.push_str(",\"num_blocks\":");
                s.push_str(&num_blocks.to_string());
                s.push('}');
            }
            Event::Observe { name, value } => {
                s.push_str("{\"type\":\"observe\",\"name\":");
                json::write_str(name, &mut s);
                s.push_str(",\"value\":");
                s.push_str(&value.to_string());
                s.push('}');
            }
            Event::Request {
                id,
                verb,
                queue_ns,
                run_ns,
            } => {
                s.push_str("{\"type\":\"request\",\"id\":");
                s.push_str(&id.to_string());
                s.push_str(",\"verb\":");
                json::write_str(verb, &mut s);
                s.push_str(",\"queue_ns\":");
                s.push_str(&queue_ns.to_string());
                s.push_str(",\"run_ns\":");
                s.push_str(&run_ns.to_string());
                s.push('}');
            }
            Event::Guard {
                kind,
                query,
                step,
                detail,
            } => {
                s.push_str("{\"type\":\"guard\",\"kind\":");
                json::write_str(kind, &mut s);
                s.push_str(",\"query\":");
                s.push_str(&query.to_string());
                s.push_str(",\"step\":");
                s.push_str(&step.to_string());
                s.push_str(",\"detail\":");
                json::write_str(detail, &mut s);
                s.push('}');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("quiet"), Some(Level::Error));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Info && Level::Info < Level::Debug);
    }

    /// Every event variant serializes to JSON that the in-tree parser
    /// reads back with the original field values — the JSONL round-trip
    /// contract for external consumers.
    #[test]
    fn jsonl_round_trip_all_variants() {
        let events = [
            Event::SpanOpen {
                name: "build",
                id: 7,
                parent: None,
            },
            Event::SpanOpen {
                name: "minimize",
                id: 8,
                parent: Some(7),
            },
            Event::SpanClose {
                name: "minimize",
                id: 8,
                nanos: 12_345,
            },
            Event::Log {
                level: Level::Info,
                message: "quoted \"msg\" with \\ and \n newline".into(),
            },
            Event::Counter {
                name: "weight_cache_hits",
                value: 3,
            },
            Event::Gauge {
                name: "serve_active_queries",
                value: 2.0,
            },
            Event::ReachIteration {
                query: 1,
                step: 42,
                psi: 1.25e-3,
                residual: 7.5e-9,
                checksum: 0x0123_4567_89ab_cdef,
            },
            Event::QueryStart {
                query: 0,
                t: 10.0,
                lambda: 20.047,
                left: 3,
                right: 58,
            },
            Event::RefineRound {
                round: 2,
                dirty_states: 17,
                dirty_blocks: 4,
                moved: 5,
                num_blocks: 23,
            },
            Event::Guard {
                kind: "degradation",
                query: 0,
                step: 9,
                detail: "worker 2 panicked".into(),
            },
            Event::Observe {
                name: "serve_query_latency_ns",
                value: 1_234_567,
            },
            Event::Request {
                id: 3,
                verb: "query",
                queue_ns: 21_000,
                run_ns: 9_876_543,
            },
        ];
        for ev in &events {
            let line = ev.to_json();
            let v = Value::parse(&line).unwrap_or_else(|e| panic!("parse {line}: {e}"));
            let ty = v.get("type").and_then(Value::as_str).expect("type field");
            match ev {
                Event::SpanOpen { name, id, parent } => {
                    assert_eq!(ty, "span_open");
                    assert_eq!(v.get("name").and_then(Value::as_str), Some(*name));
                    assert_eq!(v.get("id").and_then(Value::as_f64), Some(*id as f64));
                    match parent {
                        None => assert!(matches!(v.get("parent"), Some(Value::Null))),
                        Some(p) => {
                            assert_eq!(v.get("parent").and_then(Value::as_f64), Some(*p as f64));
                        }
                    }
                }
                Event::SpanClose { name, nanos, .. } => {
                    assert_eq!(ty, "span_close");
                    assert_eq!(v.get("name").and_then(Value::as_str), Some(*name));
                    assert_eq!(v.get("nanos").and_then(Value::as_f64), Some(*nanos as f64));
                }
                Event::Log { level, message } => {
                    assert_eq!(ty, "log");
                    assert_eq!(v.get("level").and_then(Value::as_str), Some(level.as_str()));
                    assert_eq!(
                        v.get("message").and_then(Value::as_str),
                        Some(message.as_str())
                    );
                }
                Event::Counter { name, value } => {
                    assert_eq!(ty, "counter");
                    assert_eq!(v.get("name").and_then(Value::as_str), Some(*name));
                    assert_eq!(v.get("value").and_then(Value::as_f64), Some(*value as f64));
                }
                Event::Gauge { name, value } => {
                    assert_eq!(ty, "gauge");
                    assert_eq!(v.get("name").and_then(Value::as_str), Some(*name));
                    assert_eq!(
                        v.get("value").and_then(Value::as_f64).map(f64::to_bits),
                        Some(value.to_bits())
                    );
                }
                Event::ReachIteration {
                    psi,
                    residual,
                    checksum,
                    ..
                } => {
                    assert_eq!(ty, "reach_iteration");
                    // floats round-trip exactly through the exponent form
                    assert_eq!(
                        v.get("psi").and_then(Value::as_f64).map(f64::to_bits),
                        Some(psi.to_bits())
                    );
                    assert_eq!(
                        v.get("residual").and_then(Value::as_f64).map(f64::to_bits),
                        Some(residual.to_bits())
                    );
                    // checksums travel as hex strings, never as doubles
                    assert_eq!(
                        v.get("checksum").and_then(Value::as_str),
                        Some(format!("{checksum:016x}").as_str())
                    );
                }
                Event::QueryStart { lambda, right, .. } => {
                    assert_eq!(ty, "query_start");
                    assert_eq!(
                        v.get("lambda").and_then(Value::as_f64).map(f64::to_bits),
                        Some(lambda.to_bits())
                    );
                    assert_eq!(v.get("right").and_then(Value::as_f64), Some(*right as f64));
                }
                Event::RefineRound {
                    round, num_blocks, ..
                } => {
                    assert_eq!(ty, "refine_round");
                    assert_eq!(v.get("round").and_then(Value::as_f64), Some(*round as f64));
                    assert_eq!(
                        v.get("num_blocks").and_then(Value::as_f64),
                        Some(*num_blocks as f64)
                    );
                }
                Event::Guard { kind, detail, .. } => {
                    assert_eq!(ty, "guard");
                    assert_eq!(v.get("kind").and_then(Value::as_str), Some(*kind));
                    assert_eq!(
                        v.get("detail").and_then(Value::as_str),
                        Some(detail.as_str())
                    );
                }
                Event::Observe { name, value } => {
                    assert_eq!(ty, "observe");
                    assert_eq!(v.get("name").and_then(Value::as_str), Some(*name));
                    assert_eq!(v.get("value").and_then(Value::as_f64), Some(*value as f64));
                }
                Event::Request {
                    id,
                    verb,
                    queue_ns,
                    run_ns,
                } => {
                    assert_eq!(ty, "request");
                    assert_eq!(v.get("id").and_then(Value::as_f64), Some(*id as f64));
                    assert_eq!(v.get("verb").and_then(Value::as_str), Some(*verb));
                    assert_eq!(
                        v.get("queue_ns").and_then(Value::as_f64),
                        Some(*queue_ns as f64)
                    );
                    assert_eq!(
                        v.get("run_ns").and_then(Value::as_f64),
                        Some(*run_ns as f64)
                    );
                }
            }
        }
    }
}
