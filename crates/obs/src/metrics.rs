//! The metrics [`Registry`]: a sink that aggregates the event stream
//! into counters, gauges and histograms, rendered as Prometheus-style
//! text exposition (`unicon metrics`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::hist::Histogram;
use crate::sink::Sink;
use crate::Event;

/// `(metric name, label set)` — the label set is pre-rendered
/// (`key="value"`), empty for unlabeled samples. `BTreeMap` keys give
/// the exposition a deterministic sort order.
type SeriesKey = (String, String);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// Aggregates events into typed metrics. Install it like any sink and
/// render with [`Registry::exposition`]; counts and histogram buckets
/// are integer-exact, so equal event streams produce byte-identical
/// expositions on every platform.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn help_text(metric: &str) -> &'static str {
    match metric {
        "unicon_span_duration_ns" => "Wall-clock span durations in nanoseconds, by span name.",
        "unicon_spans_total" => "Closed spans, by span name.",
        "unicon_log_messages_total" => "Console log messages, by level.",
        "unicon_reach_iterations_total" => "Value-iteration steps executed by the reach engine.",
        "unicon_reach_queries_total" => "Reach queries started.",
        "unicon_foxglynn_lambda" => "Poisson parameter of the most recent reach query.",
        "unicon_foxglynn_window_width" => {
            "Fox-Glynn truncation window width R-L+1 of the most recent reach query."
        }
        "unicon_refine_rounds_total" => "Worklist partition-refinement rounds.",
        "unicon_refine_dirty_states_total" => "States re-signed across all refinement rounds.",
        "unicon_refine_moved_states_total" => "States moved to fresh blocks during refinement.",
        "unicon_refine_blocks" => "Partition blocks after the most recent refinement round.",
        "unicon_guard_events_total" => "Guard-layer incidents, by kind.",
        "unicon_reach_kernel_ns_per_state" => {
            "Average wall nanoseconds per state per value-iteration step of the most recent reach batch."
        }
        "unicon_serve_registry_hits_total" => {
            "Model registrations answered from the serve registry cache."
        }
        "unicon_serve_registry_misses_total" => {
            "Model registrations that triggered a fresh build in serve."
        }
        "unicon_serve_requests_total" => "JSONL request lines handled by serve.",
        "unicon_serve_errors_total" => "serve requests answered with a typed error record.",
        "unicon_serve_partials_total" => "serve queries stopped by a per-request budget.",
        "unicon_serve_active_queries" => "Reach queries currently executing in serve.",
        "unicon_serve_active_sessions" => "JSONL sessions currently connected to serve.",
        "unicon_serve_queue_depth" => {
            "Requests accepted but not yet answered across all serve sessions."
        }
        "unicon_serve_sessions_rejected_total" => {
            "Connections shed at the serve session gate (--max-sessions)."
        }
        "unicon_serve_queries_shed_total" => {
            "Queries shed at the serve admission gate (--max-inflight)."
        }
        "unicon_serve_cache_evictions_total" => {
            "Models evicted from the serve registry under --cache-budget."
        }
        "unicon_serve_cache_resident_bytes" => {
            "Heap bytes held by models resident in the serve registry."
        }
        "unicon_serve_drain_seconds" => {
            "Seconds the most recent serve drain (shutdown/SIGTERM) has run."
        }
        "unicon_serve_build_failures_total" => {
            "serve model builds that panicked and quarantined their size."
        }
        "unicon_serve_idle_timeouts_total" => {
            "serve sessions closed by the socket read/idle timeout."
        }
        "unicon_serve_lines_too_long_total" => {
            "serve request lines rejected for exceeding --max-line-bytes."
        }
        "unicon_serve_query_latency_ns" => {
            "Wall-clock latency of serve reach queries in nanoseconds (admission to response)."
        }
        "unicon_serve_queue_wait_ns" => {
            "Nanoseconds serve requests waited between line read and handler start (admission wait)."
        }
        "unicon_serve_request_run_ns" => "Nanoseconds serve request handlers ran, end to end.",
        "unicon_serve_build_ns" => "Wall-clock serve model build times in nanoseconds.",
        "unicon_reach_query_ns" => "Wall-clock reach query latencies in nanoseconds.",
        "unicon_kernel_fixed_ps_per_state" => {
            "Fused-kernel sweep cost in picoseconds per state over fixed-classed (goal) groups, per query."
        }
        "unicon_kernel_empty_ps_per_state" => {
            "Fused-kernel sweep cost in picoseconds per state over empty-classed (absorbing) groups, per query."
        }
        "unicon_kernel_single_ps_per_state" => {
            "Fused-kernel sweep cost in picoseconds per state over single-row groups, per query."
        }
        "unicon_kernel_multi_ps_per_state" => {
            "Fused-kernel sweep cost in picoseconds per state over multi-row (optimizing) groups, per query."
        }
        _ => "Event-stream counter.",
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut Inner) -> T) -> T {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut inner)
    }

    /// Registers an empty histogram series so the exposition shows the
    /// metric (with zeroed buckets and quantiles) before the first
    /// sample arrives — the zero-seeding convention used for counters.
    pub fn seed_histogram(&self, name: &str) {
        self.with_inner(|inner| {
            inner
                .histograms
                .entry((name.to_string(), String::new()))
                .or_default();
        });
    }

    /// Renders the Prometheus text exposition: `# HELP` / `# TYPE`
    /// headers followed by `name{labels} value` samples, sorted by
    /// metric name and label set.
    #[must_use]
    pub fn exposition(&self) -> String {
        self.with_inner(|inner| {
            // metric name -> (type, rendered sample lines)
            let mut metrics: BTreeMap<&str, (&str, Vec<String>)> = BTreeMap::new();
            for ((name, labels), value) in &inner.counters {
                let entry = metrics
                    .entry(name.as_str())
                    .or_insert_with(|| ("counter", Vec::new()));
                entry
                    .1
                    .push(render_sample(name, labels, &value.to_string()));
            }
            for ((name, labels), value) in &inner.gauges {
                let entry = metrics
                    .entry(name.as_str())
                    .or_insert_with(|| ("gauge", Vec::new()));
                let mut v = String::new();
                crate::json::write_f64(*value, &mut v);
                entry.1.push(render_sample(name, labels, &v));
            }
            for ((name, labels), hist) in &inner.histograms {
                let entry = metrics
                    .entry(name.as_str())
                    .or_insert_with(|| ("histogram", Vec::new()));
                let cumulative = hist.cumulative();
                for (i, &c) in cumulative.iter().enumerate() {
                    let le = match Histogram::bound(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let with_le = if labels.is_empty() {
                        format!("le=\"{le}\"")
                    } else {
                        format!("{labels},le=\"{le}\"")
                    };
                    entry.1.push(render_sample(
                        &format!("{name}_bucket"),
                        &with_le,
                        &c.to_string(),
                    ));
                }
                entry.1.push(render_sample(
                    &format!("{name}_sum"),
                    labels,
                    &hist.sum().to_string(),
                ));
                entry.1.push(render_sample(
                    &format!("{name}_count"),
                    labels,
                    &hist.count().to_string(),
                ));
                // Exact-bucket quantile estimates (integer math, so equal
                // event streams stay byte-identical). Empty histograms
                // render 0 so zero-seeded series are still scrapeable.
                for (suffix, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    entry.1.push(render_sample(
                        &format!("{name}_{suffix}"),
                        labels,
                        &hist.quantile(q).unwrap_or(0).to_string(),
                    ));
                }
                entry.1.push(render_sample(
                    &format!("{name}_max"),
                    labels,
                    &hist.max().unwrap_or(0).to_string(),
                ));
            }

            let mut out = String::new();
            for (name, (ty, samples)) in &metrics {
                let _ = writeln!(out, "# HELP {name} {}", help_text(name));
                let _ = writeln!(out, "# TYPE {name} {ty}");
                for s in samples {
                    out.push_str(s);
                    out.push('\n');
                }
            }
            out
        })
    }
}

fn render_sample(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}")
    } else {
        format!("{name}{{{labels}}} {value}")
    }
}

impl Sink for Registry {
    fn record(&self, event: &Event) {
        self.with_inner(|inner| {
            let count = |m: &mut BTreeMap<SeriesKey, u64>, name: &str, labels: String, add: u64| {
                *m.entry((name.to_string(), labels)).or_insert(0) += add;
            };
            match event {
                Event::SpanOpen { .. } => {}
                Event::SpanClose { name, nanos, .. } => {
                    count(
                        &mut inner.counters,
                        "unicon_spans_total",
                        format!("span=\"{name}\""),
                        1,
                    );
                    inner
                        .histograms
                        .entry((
                            "unicon_span_duration_ns".to_string(),
                            format!("span=\"{name}\""),
                        ))
                        .or_default()
                        .observe(*nanos);
                }
                Event::Log { level, .. } => {
                    count(
                        &mut inner.counters,
                        "unicon_log_messages_total",
                        format!("level=\"{}\"", level.as_str()),
                        1,
                    );
                }
                Event::Counter { name, value } => {
                    count(
                        &mut inner.counters,
                        &format!("unicon_{name}_total"),
                        String::new(),
                        *value,
                    );
                }
                Event::Gauge { name, value } => {
                    inner
                        .gauges
                        .insert((format!("unicon_{name}"), String::new()), *value);
                }
                Event::ReachIteration { .. } => {
                    count(
                        &mut inner.counters,
                        "unicon_reach_iterations_total",
                        String::new(),
                        1,
                    );
                }
                Event::QueryStart {
                    lambda,
                    left,
                    right,
                    ..
                } => {
                    count(
                        &mut inner.counters,
                        "unicon_reach_queries_total",
                        String::new(),
                        1,
                    );
                    inner.gauges.insert(
                        ("unicon_foxglynn_lambda".to_string(), String::new()),
                        *lambda,
                    );
                    inner.gauges.insert(
                        ("unicon_foxglynn_window_width".to_string(), String::new()),
                        (right - left + 1) as f64,
                    );
                }
                Event::RefineRound {
                    dirty_states,
                    moved,
                    num_blocks,
                    ..
                } => {
                    count(
                        &mut inner.counters,
                        "unicon_refine_rounds_total",
                        String::new(),
                        1,
                    );
                    count(
                        &mut inner.counters,
                        "unicon_refine_dirty_states_total",
                        String::new(),
                        *dirty_states as u64,
                    );
                    count(
                        &mut inner.counters,
                        "unicon_refine_moved_states_total",
                        String::new(),
                        *moved as u64,
                    );
                    inner.gauges.insert(
                        ("unicon_refine_blocks".to_string(), String::new()),
                        *num_blocks as f64,
                    );
                }
                Event::Observe { name, value } => {
                    inner
                        .histograms
                        .entry((format!("unicon_{name}"), String::new()))
                        .or_default()
                        .observe(*value);
                }
                Event::Request {
                    queue_ns, run_ns, ..
                } => {
                    inner
                        .histograms
                        .entry(("unicon_serve_queue_wait_ns".to_string(), String::new()))
                        .or_default()
                        .observe(*queue_ns);
                    inner
                        .histograms
                        .entry(("unicon_serve_request_run_ns".to_string(), String::new()))
                        .or_default()
                        .observe(*run_ns);
                }
                Event::Guard { kind, .. } => {
                    count(
                        &mut inner.counters,
                        "unicon_guard_events_total",
                        format!("kind=\"{kind}\""),
                        1,
                    );
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn feed(reg: &Registry) {
        reg.record(&Event::SpanClose {
            name: "minimize",
            id: 1,
            nanos: 1000,
        });
        reg.record(&Event::SpanClose {
            name: "minimize",
            id: 2,
            nanos: 3,
        });
        reg.record(&Event::Counter {
            name: "weight_cache_hits",
            value: 5,
        });
        reg.record(&Event::Gauge {
            name: "serve_active_queries",
            value: 3.0,
        });
        reg.record(&Event::Gauge {
            name: "serve_active_queries",
            value: 1.0,
        });
        reg.record(&Event::ReachIteration {
            query: 0,
            step: 2,
            psi: 0.1,
            residual: 1e-3,
            checksum: 1,
        });
        reg.record(&Event::QueryStart {
            query: 0,
            t: 10.0,
            lambda: 20.0,
            left: 3,
            right: 58,
        });
        reg.record(&Event::RefineRound {
            round: 1,
            dirty_states: 10,
            dirty_blocks: 2,
            moved: 4,
            num_blocks: 7,
        });
        reg.record(&Event::Guard {
            kind: "degradation",
            query: 0,
            step: 5,
            detail: "x".into(),
        });
        reg.record(&Event::Log {
            level: Level::Info,
            message: "hi".into(),
        });
    }

    #[test]
    fn exposition_is_well_formed_and_aggregated() {
        let reg = Registry::new();
        feed(&reg);
        let text = reg.exposition();
        for line in text.lines() {
            let ok = line.starts_with("# HELP ") || line.starts_with("# TYPE ") || {
                // name{labels} value | name value
                let (head, value) = line.rsplit_once(' ').expect("sample has a value");
                !head.is_empty() && !value.is_empty()
            };
            assert!(ok, "malformed exposition line: {line}");
        }
        assert!(text.contains("# TYPE unicon_span_duration_ns histogram"));
        assert!(text.contains("unicon_span_duration_ns_count{span=\"minimize\"} 2"));
        assert!(text.contains("unicon_span_duration_ns_sum{span=\"minimize\"} 1003"));
        // 1000 ≤ 1024 = 2^10: cumulative le="1024" covers both samples
        assert!(text.contains("unicon_span_duration_ns_bucket{span=\"minimize\",le=\"1024\"} 2"));
        assert!(text.contains("unicon_span_duration_ns_bucket{span=\"minimize\",le=\"+Inf\"} 2"));
        assert!(text.contains("unicon_weight_cache_hits_total 5"));
        // gauges replace, never accumulate
        assert!(text.contains("# TYPE unicon_serve_active_queries gauge"));
        assert!(text.contains("unicon_serve_active_queries 1e0"));
        assert!(text.contains("unicon_reach_iterations_total 1"));
        assert!(text.contains("unicon_foxglynn_window_width 5.6e1"));
        assert!(text.contains("unicon_guard_events_total{kind=\"degradation\"} 1"));
        assert!(text.contains("unicon_log_messages_total{level=\"info\"} 1"));

        // identical event streams render byte-identical expositions
        let reg2 = Registry::new();
        feed(&reg2);
        assert_eq!(text, reg2.exposition());
    }

    #[test]
    fn observe_and_request_feed_histograms_with_quantiles() {
        let reg = Registry::new();
        reg.record(&Event::Observe {
            name: "serve_query_latency_ns",
            value: 100,
        });
        reg.record(&Event::Observe {
            name: "serve_query_latency_ns",
            value: 200,
        });
        reg.record(&Event::Request {
            id: 1,
            verb: "query",
            queue_ns: 50,
            run_ns: 5000,
        });
        let text = reg.exposition();
        assert!(text.contains("# TYPE unicon_serve_query_latency_ns histogram"));
        assert!(text.contains("unicon_serve_query_latency_ns_count 2"));
        // 100 lands in the 2^7 = 128 bucket; p50 reports its upper bound
        assert!(text.contains("unicon_serve_query_latency_ns_p50 128"));
        assert!(text.contains("unicon_serve_query_latency_ns_p99 200"));
        assert!(text.contains("unicon_serve_query_latency_ns_max 200"));
        assert!(text.contains("unicon_serve_queue_wait_ns_count 1"));
        assert!(text.contains("unicon_serve_queue_wait_ns_p50 50"));
        assert!(text.contains("unicon_serve_request_run_ns_count 1"));
    }

    #[test]
    fn seeded_histograms_render_zeroed_series() {
        let reg = Registry::new();
        reg.seed_histogram("unicon_serve_build_ns");
        let text = reg.exposition();
        assert!(text.contains("# HELP unicon_serve_build_ns"));
        assert!(text.contains("unicon_serve_build_ns_count 0"));
        assert!(text.contains("unicon_serve_build_ns_p50 0"));
        assert!(text.contains("unicon_serve_build_ns_p90 0"));
        assert!(text.contains("unicon_serve_build_ns_p99 0"));
        assert!(text.contains("unicon_serve_build_ns_max 0"));
    }

    #[test]
    fn exposition_sorts_by_metric_name() {
        let reg = Registry::new();
        feed(&reg);
        let text = reg.exposition();
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().expect("metric name"))
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
