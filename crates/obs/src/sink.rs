//! Pluggable event sinks: the JSONL trace stream and the stderr console
//! logger. The metrics [`crate::Registry`] is a third sink, defined in
//! its own module.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::{Class, Event, Level};

/// An event consumer. Sinks must be thread-safe; the dispatcher calls
/// [`Sink::record`] from whichever thread emitted.
pub trait Sink: Send + Sync {
    /// Bitmask of [`Class`]es this sink wants ([`Class::bit`]). The
    /// dispatcher ORs all installed sinks' interests into one global
    /// mask, so a console-only setup never turns on hot-path telemetry.
    fn interest(&self) -> u32 {
        Class::all_mask()
    }

    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (called once before process exit).
    fn flush(&self) {}
}

/// Streams every event as one JSON line (JSONL) to a buffered file.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_json();
        // record() runs on the emitting thread, so the thread-local
        // request scope identifies the serve request this event belongs
        // to; stamping it lets a trace be filtered to one request.
        if let Some(rid) = crate::current_request() {
            line.truncate(line.len() - 1);
            line.push_str(",\"request\":");
            line.push_str(&rid.to_string());
            line.push('}');
        }
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Tracing must never abort an analysis: I/O errors are dropped
        // (the final flush in the CLI reports its own failure path).
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.flush();
    }
}

/// The human logger: prints [`Event::Log`] lines to stderr, filtered by
/// a runtime-adjustable verbosity threshold. Interested only in
/// [`Class::Log`], so installing it never enables engine telemetry.
#[derive(Debug)]
pub struct ConsoleSink {
    max_level: AtomicU8,
}

fn level_to_u8(l: Level) -> u8 {
    match l {
        Level::Error => 0,
        Level::Info => 1,
        Level::Debug => 2,
    }
}

impl ConsoleSink {
    /// A console showing messages up to `level` (`Level::Error` =
    /// quiet, `Level::Info` = default, `Level::Debug` = everything).
    #[must_use]
    pub fn new(level: Level) -> Self {
        Self {
            max_level: AtomicU8::new(level_to_u8(level)),
        }
    }

    /// Adjusts the verbosity threshold (the CLI parses `--log-level`
    /// after the sink is already installed).
    pub fn set_level(&self, level: Level) {
        self.max_level.store(level_to_u8(level), Ordering::Relaxed);
    }
}

impl Sink for ConsoleSink {
    fn interest(&self) -> u32 {
        Class::Log.bit()
    }

    fn record(&self, event: &Event) {
        let Event::Log { level, message } = event else {
            return;
        };
        if level_to_u8(*level) > self.max_level.load(Ordering::Relaxed) {
            return;
        }
        match level {
            Level::Error => eprintln!("error: {message}"),
            Level::Info => eprintln!("{message}"),
            Level::Debug => eprintln!("debug: {message}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("unicon-obs-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create trace file");
        sink.record(&Event::Counter {
            name: "a",
            value: 1,
        });
        sink.record(&Event::Log {
            level: Level::Info,
            message: "two\nlines stay one record".into(),
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one JSONL line per event");
        for line in &lines {
            crate::json::Value::parse(line).expect("each line is a JSON document");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_stamps_the_active_request_scope() {
        let dir = std::env::temp_dir().join("unicon-obs-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("trace-rid-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create trace file");
        sink.record(&Event::Counter {
            name: "unscoped",
            value: 1,
        });
        {
            let _scope = crate::request_scope(42);
            sink.record(&Event::Counter {
                name: "scoped",
                value: 1,
            });
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::Value::parse(lines[0]).expect("valid json");
        assert!(first.get("request").is_none(), "no scope, no stamp");
        let second = crate::json::Value::parse(lines[1]).expect("valid json");
        assert_eq!(
            second.get("request").and_then(crate::json::Value::as_f64),
            Some(42.0)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn console_interest_is_logs_only() {
        let c = ConsoleSink::new(Level::Info);
        assert_eq!(c.interest(), Class::Log.bit());
        assert_eq!(c.interest() & Class::Iter.bit(), 0);
    }
}
