//! # unicon-obs — structured observability, bit-invisible by contract
//!
//! One coherent telemetry substrate for the whole tool chain: monotonic
//! **spans** with parent/child nesting, typed **events** (per-iteration
//! value-iteration residuals, Fox–Glynn truncation windows, bisimulation
//! refinement progress, guard-layer incidents), and pluggable **sinks**
//! (a JSONL trace stream, a Prometheus-style metrics [`Registry`], a
//! stderr console logger). Entirely `std`, zero external dependencies.
//!
//! ## The bit-invisibility contract
//!
//! Instrumentation must never change a result. The engines guarantee
//! bitwise-identical values at every thread count; telemetry rides along
//! only under these rules, enforced by construction here and by the
//! `ci.sh` trace-on/trace-off checksum gate:
//!
//! * emission sites only **read** engine state (residuals, checksums);
//!   no instrumented code path writes into the numeric pipeline;
//! * `Instant` is read **only at span boundaries** ([`open_span`] /
//!   [`close_span`]), never inside a per-iteration event — iteration
//!   records are timestamp-free, so tracing adds no clock reads to the
//!   hot loop;
//! * when no installed sink is interested in a [`Class`] (and no
//!   thread-local collector is active), [`live`] is a single relaxed
//!   atomic load plus a thread-local flag check, and [`emit`] never
//!   builds the event — the disabled handle costs near zero.
//!
//! ## Dispatch model
//!
//! All engine emission sites run on the *calling* thread (the sequential
//! loop, the parallel driver's assembly loop, the guard driver, the
//! refiner, the build pipeline) — worker threads never emit. That makes
//! the thread-local [`collect`] capture race-free even under a
//! multi-threaded test runner, while global sinks installed with
//! [`install`] see the same events (tee semantics).
//!
//! ```
//! use unicon_obs as obs;
//!
//! let ((), events) = obs::collect(|| {
//!     let span = obs::open_span("phase");
//!     obs::emit(obs::Class::Metric, || obs::Event::Counter {
//!         name: "things_done",
//!         value: 3,
//!     });
//!     obs::close_span(span).expect("balanced");
//! });
//! assert_eq!(events.len(), 3); // open, counter, close
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
pub mod json;
mod metrics;
pub mod profile;
mod sink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub use event::{Event, Level};
pub use hist::{Histogram, HISTOGRAM_BUCKETS};
pub use metrics::Registry;
pub use sink::{ConsoleSink, JsonlSink, Sink};

// ---------------------------------------------------------------------------
// Event classes and the global interest mask
// ---------------------------------------------------------------------------

/// Coarse event classes, used as an interest filter so a sink that only
/// wants logs (the console) never turns on per-iteration telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Human log lines ([`Event::Log`]).
    Log,
    /// Span open/close records.
    Span,
    /// Per-iteration convergence telemetry — the only class whose
    /// emission sites sit on the numeric hot path.
    Iter,
    /// Counters and aggregate progress records (refinement rounds,
    /// Fox–Glynn windows, cache statistics).
    Metric,
    /// Guard-layer incidents (checkpoints, degradations, budget stops).
    Guard,
}

impl Class {
    /// This class's bit in an interest mask.
    #[must_use]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The mask covering every class.
    #[must_use]
    pub fn all_mask() -> u32 {
        0b1_1111
    }
}

/// OR of the interests of all installed sinks; `0` when nothing is
/// installed, so the disabled fast path is one relaxed load.
static INTEREST: AtomicU32 = AtomicU32::new(0);
static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The active [`collect`] buffer, if any.
    static COLLECTOR: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
    /// The open-span stack of this thread (parent tracking + timing).
    static SPAN_STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    /// The request id events on this thread are attributed to, if any.
    static CURRENT_REQUEST: Cell<Option<u64>> = const { Cell::new(None) };
}

fn sinks() -> std::sync::RwLockReadGuard<'static, Vec<Arc<dyn Sink>>> {
    SINKS
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs a sink; events of the classes it is interested in start
/// flowing to it immediately.
pub fn install(sink: Arc<dyn Sink>) {
    let mut guard = SINKS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.push(sink);
    let mask = guard.iter().fold(0, |m, s| m | s.interest());
    INTEREST.store(mask, Ordering::Relaxed);
}

/// Removes every installed sink (used by tests; the CLI installs once
/// per process).
pub fn reset() {
    let mut guard = SINKS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.clear();
    INTEREST.store(0, Ordering::Relaxed);
}

/// Flushes every installed sink (the CLI calls this once before exit so
/// buffered JSONL traces hit the disk).
pub fn flush() {
    for s in sinks().iter() {
        s.flush();
    }
}

fn collecting() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Is any consumer interested in `class` right now? Engines guard the
/// *computation* of expensive payloads (residuals, checksums) on this;
/// [`emit`] re-checks it internally, so plain call sites don't need to.
#[must_use]
pub fn live(class: Class) -> bool {
    INTEREST.load(Ordering::Relaxed) & class.bit() != 0 || collecting()
}

/// Emits an event lazily: `f` runs only when a sink or collector wants
/// events of `class`.
pub fn emit(class: Class, f: impl FnOnce() -> Event) {
    let mask = INTEREST.load(Ordering::Relaxed);
    let wanted = mask & class.bit() != 0;
    if !wanted && !collecting() {
        return;
    }
    let ev = f();
    COLLECTOR.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(ev.clone());
        }
    });
    if wanted {
        for s in sinks().iter() {
            if s.interest() & class.bit() != 0 {
                s.record(&ev);
            }
        }
    }
}

/// Runs `f` with a thread-local event collector and returns its result
/// together with every event emitted *on this thread* while it ran.
///
/// Events still reach installed global sinks (tee). Collectors nest:
/// an inner `collect` temporarily shadows the outer one, so the outer
/// buffer does not see the inner run's events. If `f` panics, the
/// previous collector is restored and the partial capture is dropped.
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>) {
    struct Restore {
        prev: Option<Option<Vec<Event>>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                COLLECTOR.with(|c| *c.borrow_mut() = prev);
            }
        }
    }
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(Vec::new()));
    let mut restore = Restore { prev: Some(prev) };
    let out = f();
    let events = COLLECTOR.with(|c| {
        let mut buf = c.borrow_mut();
        let captured = buf.take().unwrap_or_default();
        *buf = restore.prev.take().expect("restore guard is armed");
        captured
    });
    (out, events)
}

// ---------------------------------------------------------------------------
// Request scoping
// ---------------------------------------------------------------------------

/// The request id the current thread's events are attributed to, if a
/// [`request_scope`] is active. The JSONL sink stamps this onto every
/// trace line (`"request":N`), so a multi-request trace can be filtered
/// to one request end-to-end. Engine emission all happens on the
/// calling/assembler thread, so a serve session's scope covers every
/// span, iteration record and metric its query triggers.
#[must_use]
pub fn current_request() -> Option<u64> {
    CURRENT_REQUEST.with(Cell::get)
}

/// An active request attribution scope; dropping it restores the
/// previous scope (scopes nest, inner wins).
#[derive(Debug)]
pub struct RequestScope {
    prev: Option<u64>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.prev));
    }
}

/// Attributes every event emitted on this thread to request `id` until
/// the returned guard drops. Purely an annotation: no event is created,
/// suppressed or reordered by scoping, so the bit-invisibility contract
/// is untouched.
pub fn request_scope(id: u64) -> RequestScope {
    let prev = CURRENT_REQUEST.with(|c| c.replace(Some(id)));
    RequestScope { prev }
}

/// Emits one histogram sample ([`Event::Observe`]) for `name`.
pub fn observe(name: &'static str, value: u64) {
    emit(Class::Metric, || Event::Observe { name, value });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct OpenSpan {
    id: u64,
    name: &'static str,
    start: Instant,
}

/// Proof of an open span, consumed by [`close_span`]. A token obtained
/// while observability was dormant is inert: closing it is a no-op.
/// Tokens are `Copy` so an out-of-order close (a typed error) can be
/// retried once the child spans have closed.
#[derive(Debug, Clone, Copy)]
#[must_use = "close the span with close_span (or use span() for RAII)"]
pub struct SpanToken {
    id: u64,
    name: &'static str,
}

/// A typed span-discipline violation. Spans form a per-thread stack;
/// closing anything but the innermost open span is an error, never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanError {
    /// The token's span is not open on this thread (already closed, or
    /// opened on another thread).
    NotOpen {
        /// The stale token's span name.
        closing: &'static str,
    },
    /// The token's span is open but not innermost: a child is still
    /// running.
    OutOfOrder {
        /// The span the token refers to.
        closing: &'static str,
        /// The innermost open span that must close first.
        innermost: &'static str,
    },
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanError::NotOpen { closing } => {
                write!(f, "span '{closing}' is not open on this thread")
            }
            SpanError::OutOfOrder { closing, innermost } => write!(
                f,
                "span '{closing}' cannot close before its child '{innermost}'"
            ),
        }
    }
}

impl std::error::Error for SpanError {}

/// Opens a span named `name` on this thread's span stack and emits a
/// [`Event::SpanOpen`] record (with the parent span's id, if any).
///
/// When no consumer wants span events, this reads no clock and returns
/// an inert token.
pub fn open_span(name: &'static str) -> SpanToken {
    if !live(Class::Span) {
        return SpanToken { id: 0, name };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().map(|o| o.id));
    SPAN_STACK.with(|s| {
        s.borrow_mut().push(OpenSpan {
            id,
            name,
            start: Instant::now(),
        })
    });
    emit(Class::Span, || Event::SpanOpen { name, id, parent });
    SpanToken { id, name }
}

/// Closes the span `token` refers to, emitting a [`Event::SpanClose`]
/// with its wall-clock duration.
///
/// # Errors
///
/// [`SpanError::OutOfOrder`] if a child span is still open,
/// [`SpanError::NotOpen`] if the token's span is not on this thread's
/// stack at all. Neither panics, and the stack is left unchanged on
/// error.
pub fn close_span(token: SpanToken) -> Result<(), SpanError> {
    if token.id == 0 {
        return Ok(());
    }
    let closed = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last() {
            Some(top) if top.id == token.id => Ok(stack.pop().expect("non-empty stack")),
            Some(top) if stack.iter().any(|o| o.id == token.id) => Err(SpanError::OutOfOrder {
                closing: token.name,
                innermost: top.name,
            }),
            _ => Err(SpanError::NotOpen {
                closing: token.name,
            }),
        }
    })?;
    let nanos = u64::try_from(closed.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    emit(Class::Span, || Event::SpanClose {
        name: closed.name,
        id: closed.id,
        nanos,
    });
    Ok(())
}

/// An RAII span: opened on construction, closed on drop. Drop order
/// guarantees balanced nesting, so the close cannot fail.
#[derive(Debug)]
pub struct Span {
    token: Option<SpanToken>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            // Balanced by construction; a failure here means the user
            // mixed RAII and manual closes, which the manual API already
            // reported as a typed error.
            let _ = close_span(token);
        }
    }
}

/// Opens an RAII [`Span`]; it closes when the value drops.
pub fn span(name: &'static str) -> Span {
    Span {
        token: Some(open_span(name)),
    }
}

// ---------------------------------------------------------------------------
// Log helpers
// ---------------------------------------------------------------------------

/// Emits a log event; the message closure runs only when someone
/// listens.
pub fn log(level: Level, f: impl FnOnce() -> String) {
    emit(Class::Log, || Event::Log {
        level,
        message: f(),
    });
}

/// Logs at [`Level::Error`].
pub fn error(f: impl FnOnce() -> String) {
    log(Level::Error, f);
}

/// Logs at [`Level::Info`].
pub fn info(f: impl FnOnce() -> String) {
    log(Level::Info, f);
}

/// Logs at [`Level::Debug`].
pub fn debug(f: impl FnOnce() -> String) {
    log(Level::Debug, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_emission_costs_nothing_and_builds_nothing() {
        assert!(!live(Class::Iter));
        let mut ran = false;
        emit(Class::Iter, || {
            ran = true;
            Event::Counter {
                name: "never",
                value: 1,
            }
        });
        assert!(!ran, "payload closure must not run while dormant");
        // dormant spans are inert and close cleanly
        let token = open_span("dormant");
        assert!(close_span(token).is_ok());
    }

    #[test]
    fn collect_captures_events_in_order() {
        let ((), events) = collect(|| {
            emit(Class::Metric, || Event::Counter {
                name: "a",
                value: 1,
            });
            emit(Class::Metric, || Event::Counter {
                name: "b",
                value: 2,
            });
        });
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Counter { name: "a", .. }));
        assert!(matches!(events[1], Event::Counter { name: "b", .. }));
        // the collector is gone afterwards
        assert!(!live(Class::Metric));
    }

    #[test]
    fn span_nesting_records_parents() {
        let ((), events) = collect(|| {
            let outer = open_span("outer");
            let inner = open_span("inner");
            close_span(inner).expect("inner closes first");
            close_span(outer).expect("outer closes last");
        });
        let opens: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanOpen { name, id, parent } => Some((*name, *id, *parent)),
                _ => None,
            })
            .collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[0].0, "outer");
        assert_eq!(opens[0].2, None);
        assert_eq!(opens[1].0, "inner");
        assert_eq!(opens[1].2, Some(opens[0].1), "inner's parent is outer");
        let closes = events
            .iter()
            .filter(|e| matches!(e, Event::SpanClose { .. }))
            .count();
        assert_eq!(closes, 2);
    }

    #[test]
    fn unbalanced_close_is_a_typed_error_not_a_panic() {
        let ((), _) = collect(|| {
            let outer = open_span("outer");
            let inner = open_span("inner");
            let err = close_span(outer).expect_err("inner still open");
            assert_eq!(
                err,
                SpanError::OutOfOrder {
                    closing: "outer",
                    innermost: "inner",
                }
            );
            // recover in order — the stack was left intact, and tokens
            // are Copy, so the retry succeeds
            close_span(inner).expect("inner closes");
            close_span(outer).expect("outer closes after the child");
        });
    }

    #[test]
    fn double_close_is_not_open() {
        let ((), _) = collect(|| {
            let a = open_span("a");
            close_span(a).expect("first close works");
            let err = close_span(a).expect_err("second close fails");
            assert_eq!(err, SpanError::NotOpen { closing: "a" });
        });
    }

    #[test]
    fn raii_span_closes_on_drop() {
        let ((), events) = collect(|| {
            let _s = span("raii");
        });
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SpanClose { name: "raii", .. })));
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), None);
        {
            let _outer = request_scope(7);
            assert_eq!(current_request(), Some(7));
            {
                let _inner = request_scope(8);
                assert_eq!(current_request(), Some(8), "inner scope wins");
            }
            assert_eq!(current_request(), Some(7), "outer scope restored");
        }
        assert_eq!(current_request(), None, "no scope after the last drop");
    }

    #[test]
    fn collect_restores_previous_collector_on_panic() {
        let ((), outer_events) = collect(|| {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = collect(|| {
                    emit(Class::Metric, || Event::Counter {
                        name: "inner",
                        value: 1,
                    });
                    panic!("boom");
                });
            }));
            assert!(caught.is_err());
            emit(Class::Metric, || Event::Counter {
                name: "outer",
                value: 1,
            });
        });
        assert_eq!(outer_events.len(), 1, "inner capture was dropped");
        assert!(matches!(
            outer_events[0],
            Event::Counter { name: "outer", .. }
        ));
    }
}
