//! Self-profiling over the span stream: reconstructs the nested span
//! tree from collected [`Event`]s and renders it as folded stacks
//! (flamegraph-compatible), Chrome `trace_event` JSON, and a hottest-
//! spans table (`unicon profile`).
//!
//! Span records carry measured durations but no absolute timestamps
//! (the bit-invisibility contract keeps clock reads at span boundaries
//! only), so the Chrome timeline is *packed*: each span starts where
//! its previous sibling ended, inside its parent's start. Durations are
//! real; gaps between siblings are elided. Folded stacks and the top
//! table use only durations, which are exact.

use crate::json;
use crate::Event;

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (the static phase label).
    pub name: &'static str,
    /// The span id from the trace.
    pub id: u64,
    /// Arena index of the parent node, `None` for roots.
    pub parent: Option<usize>,
    /// Measured wall-clock duration in nanoseconds (0 until the close
    /// record is seen).
    pub nanos: u64,
    /// Arena indices of child spans, in open order.
    pub children: Vec<usize>,
}

/// The reconstructed span forest: an arena of nodes plus the root
/// indices, in open order.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All nodes; children/parent fields index into this arena.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans (no parent), in open order.
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the span forest from an event stream: `SpanOpen` records
    /// create nodes (linked to their parent by id), `SpanClose` records
    /// fill in durations. Unmatched closes are ignored; unclosed opens
    /// keep duration 0.
    #[must_use]
    pub fn build(events: &[Event]) -> SpanTree {
        let mut tree = SpanTree::default();
        // span id -> arena index; ids are process-unique, so a plain
        // linear map over the (small) arena suffices and stays ordered.
        let find = |nodes: &[SpanNode], id: u64| nodes.iter().position(|n| n.id == id);
        for ev in events {
            match ev {
                Event::SpanOpen { name, id, parent } => {
                    let parent_idx = parent.and_then(|p| find(&tree.nodes, p));
                    let idx = tree.nodes.len();
                    tree.nodes.push(SpanNode {
                        name,
                        id: *id,
                        parent: parent_idx,
                        nanos: 0,
                        children: Vec::new(),
                    });
                    match parent_idx {
                        Some(p) => tree.nodes[p].children.push(idx),
                        None => tree.roots.push(idx),
                    }
                }
                Event::SpanClose { id, nanos, .. } => {
                    if let Some(idx) = find(&tree.nodes, *id) {
                        tree.nodes[idx].nanos = *nanos;
                    }
                }
                _ => {}
            }
        }
        tree
    }

    /// Number of spans in the forest.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the stream contained no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Self time of node `idx`: its duration minus its children's
    /// (saturating — a child measured longer than its parent, possible
    /// under clock granularity, never goes negative).
    #[must_use]
    pub fn self_nanos(&self, idx: usize) -> u64 {
        let child_sum: u64 = self.nodes[idx]
            .children
            .iter()
            .map(|&c| self.nodes[c].nanos)
            .sum();
        self.nodes[idx].nanos.saturating_sub(child_sum)
    }

    /// The `;`-joined stack path from the root down to node `idx`.
    #[must_use]
    pub fn stack_path(&self, idx: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            parts.push(self.nodes[i].name);
            cur = self.nodes[i].parent;
        }
        parts.reverse();
        parts.join(";")
    }

    /// Folded-stack output: one `root;child;leaf <self-nanos>` line per
    /// distinct stack path (first-encounter order, self times summed),
    /// directly consumable by flamegraph tooling with nanosecond
    /// "sample" weights. Zero-self-time stacks are kept so every span
    /// name appears.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let mut order: Vec<String> = Vec::new();
        let mut totals: Vec<u64> = Vec::new();
        for idx in 0..self.nodes.len() {
            let path = self.stack_path(idx);
            let self_ns = self.self_nanos(idx);
            match order.iter().position(|p| *p == path) {
                Some(i) => totals[i] += self_ns,
                None => {
                    order.push(path);
                    totals.push(self_ns);
                }
            }
        }
        let mut out = String::new();
        for (path, ns) in order.iter().zip(&totals) {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents":[...]}` envelope,
    /// loadable in `chrome://tracing` / Perfetto): one complete (`"X"`)
    /// event per span, timestamps in microseconds on the packed
    /// timeline, with the span id and self time under `args`.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut cursor = 0u64; // packed timeline position, nanoseconds
        for &root in &self.roots {
            let end = self.emit_chrome(root, cursor, &mut events);
            cursor = end;
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Recursively renders node `idx` starting at `start` ns on the
    /// packed timeline; returns the node's end position.
    fn emit_chrome(&self, idx: usize, start: u64, events: &mut Vec<String>) -> u64 {
        let node = &self.nodes[idx];
        let mut ev = String::from("{\"name\":");
        json::write_str(node.name, &mut ev);
        ev.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":");
        // Chrome wants microseconds; keep sub-µs precision as a decimal.
        json::write_f64(start as f64 / 1e3, &mut ev);
        ev.push_str(",\"dur\":");
        json::write_f64(node.nanos as f64 / 1e3, &mut ev);
        ev.push_str(",\"args\":{\"span_id\":");
        ev.push_str(&node.id.to_string());
        ev.push_str(",\"self_ns\":");
        ev.push_str(&self.self_nanos(idx).to_string());
        ev.push_str("}}");
        events.push(ev);
        let mut child_start = start;
        for &c in &self.nodes[idx].children {
            child_start = self.emit_chrome(c, child_start, events);
        }
        start + self.nodes[idx].nanos
    }

    /// The hottest spans aggregated by name: `(name, calls, total ns,
    /// self ns)`, sorted by self time descending (ties broken by name
    /// for a deterministic table), truncated to `top`.
    #[must_use]
    pub fn top_spans(&self, top: usize) -> Vec<(&'static str, u64, u64, u64)> {
        let mut agg: Vec<(&'static str, u64, u64, u64)> = Vec::new();
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            let self_ns = self.self_nanos(idx);
            match agg.iter_mut().find(|(n, ..)| *n == node.name) {
                Some(row) => {
                    row.1 += 1;
                    row.2 += node.nanos;
                    row.3 += self_ns;
                }
                None => agg.push((node.name, 1, node.nanos, self_ns)),
            }
        }
        agg.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
        agg.truncate(top);
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    /// A hand-built span stream:
    /// build(100us) { minimize(60us) { refine(40us) }, transform(20us) }
    /// then a sibling root reach(50us).
    fn sample_events() -> Vec<Event> {
        vec![
            Event::SpanOpen {
                name: "build",
                id: 1,
                parent: None,
            },
            Event::SpanOpen {
                name: "minimize",
                id: 2,
                parent: Some(1),
            },
            Event::SpanOpen {
                name: "refine",
                id: 3,
                parent: Some(2),
            },
            Event::SpanClose {
                name: "refine",
                id: 3,
                nanos: 40_000,
            },
            Event::SpanClose {
                name: "minimize",
                id: 2,
                nanos: 60_000,
            },
            Event::SpanOpen {
                name: "transform",
                id: 4,
                parent: Some(1),
            },
            Event::SpanClose {
                name: "transform",
                id: 4,
                nanos: 20_000,
            },
            Event::SpanClose {
                name: "build",
                id: 1,
                nanos: 100_000,
            },
            Event::SpanOpen {
                name: "reach",
                id: 5,
                parent: None,
            },
            Event::SpanClose {
                name: "reach",
                id: 5,
                nanos: 50_000,
            },
        ]
    }

    #[test]
    fn tree_reconstruction_links_parents_and_durations() {
        let tree = SpanTree::build(&sample_events());
        assert_eq!(tree.nodes.len(), 5);
        assert_eq!(tree.roots.len(), 2);
        let build = &tree.nodes[tree.roots[0]];
        assert_eq!(build.name, "build");
        assert_eq!(build.nanos, 100_000);
        assert_eq!(build.children.len(), 2);
        let minimize = &tree.nodes[build.children[0]];
        assert_eq!(minimize.name, "minimize");
        assert_eq!(minimize.children.len(), 1);
        // self time: build = 100us - (60us + 20us) = 20us
        assert_eq!(tree.self_nanos(tree.roots[0]), 20_000);
        assert_eq!(tree.self_nanos(build.children[0]), 20_000); // 60 - 40
    }

    #[test]
    fn folded_stacks_carry_nested_paths_and_self_times() {
        let tree = SpanTree::build(&sample_events());
        let folded = tree.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"build 20000"));
        assert!(lines.contains(&"build;minimize 20000"));
        assert!(lines.contains(&"build;minimize;refine 40000"));
        assert!(lines.contains(&"build;transform 20000"));
        assert!(lines.contains(&"reach 50000"));
        // every line is "path space integer"
        for line in &lines {
            let (path, ns) = line.rsplit_once(' ').expect("weight");
            assert!(!path.is_empty());
            ns.parse::<u64>().expect("integer self time");
        }
    }

    #[test]
    fn chrome_trace_parses_and_packs_the_timeline() {
        let tree = SpanTree::build(&sample_events());
        let json_text = tree.chrome_trace();
        let v = Value::parse(&json_text).expect("chrome trace is valid JSON");
        let events = match v.get("traceEvents") {
            Some(Value::Arr(items)) => items,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(events.len(), 5);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
            assert!(ev.get("ts").and_then(Value::as_f64).is_some());
            assert!(ev.get("dur").and_then(Value::as_f64).is_some());
            assert!(ev.get("name").and_then(Value::as_str).is_some());
        }
        // packed layout: the second root starts where the first ended
        let reach = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("reach"))
            .expect("reach event");
        assert_eq!(reach.get("ts").and_then(Value::as_f64), Some(100.0)); // µs
                                                                          // children start at the parent's start, packed in order
        let minimize = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("minimize"))
            .expect("minimize event");
        assert_eq!(minimize.get("ts").and_then(Value::as_f64), Some(0.0));
        let transform = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("transform"))
            .expect("transform event");
        assert_eq!(transform.get("ts").and_then(Value::as_f64), Some(60.0));
    }

    #[test]
    fn top_spans_sort_by_self_time() {
        let tree = SpanTree::build(&sample_events());
        let top = tree.top_spans(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, "reach"); // 50us self
        assert_eq!(top[0], ("reach", 1, 50_000, 50_000));
        assert_eq!(top[1].0, "refine"); // 40us self
        let all = tree.top_spans(10);
        assert_eq!(all.len(), 5, "five distinct names");
    }

    #[test]
    fn empty_stream_builds_an_empty_tree() {
        let tree = SpanTree::build(&[]);
        assert!(tree.nodes.is_empty());
        assert_eq!(tree.folded_stacks(), "");
        let v = Value::parse(&tree.chrome_trace()).expect("empty trace parses");
        assert!(matches!(v.get("traceEvents"), Some(Value::Arr(a)) if a.is_empty()));
    }
}
