//! Property-based tests for the sparse-matrix substrate.

use proptest::prelude::*;
use unicon_sparse::{CooBuilder, CsrMatrix};

/// Strategy: a list of triplets within a 12x9 matrix.
fn triplets() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0usize..12, 0usize..9, -100.0f64..100.0), 0..80)
}

fn build(ts: &[(usize, usize, f64)]) -> CsrMatrix {
    CsrMatrix::from_triplets(12, 9, ts.iter().copied())
}

/// Dense reference representation.
fn dense(ts: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; 9]; 12];
    for &(r, c, v) in ts {
        d[r][c] += v;
    }
    d
}

proptest! {
    #[test]
    fn get_matches_dense(ts in triplets()) {
        let m = build(&ts);
        let d = dense(&ts);
        for (r, row) in d.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                prop_assert!((m.get(r, c) - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matvec_matches_dense(ts in triplets(), x in prop::collection::vec(-10.0f64..10.0, 9)) {
        let m = build(&ts);
        let d = dense(&ts);
        let y = m.matvec(&x);
        for (r, &yr) in y.iter().enumerate() {
            let expect: f64 = (0..9).map(|c| d[r][c] * x[c]).sum();
            prop_assert!((yr - expect).abs() < 1e-7, "row {r}: {yr} vs {expect}");
        }
    }

    #[test]
    fn transpose_involution(ts in triplets()) {
        let m = build(&ts);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_transposed_agrees_with_transpose_matvec(
        ts in triplets(),
        x in prop::collection::vec(-10.0f64..10.0, 12)
    ) {
        let m = build(&ts);
        let a = m.matvec_transposed(&x);
        let b = m.transpose().matvec(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn rows_are_sorted_and_deduped(ts in triplets()) {
        let m = build(&ts);
        let mut nnz = 0;
        for r in 0..m.rows() {
            let cols: Vec<usize> = m.row(r).map(|(c, _)| c).collect();
            nnz += cols.len();
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
        }
        prop_assert_eq!(nnz, m.nnz());
    }

    #[test]
    fn no_stored_zeros(ts in triplets()) {
        let m = build(&ts);
        for (_, _, v) in m.triplets() {
            prop_assert!(v != 0.0);
        }
    }

    #[test]
    fn triplets_roundtrip(ts in triplets()) {
        let m = build(&ts);
        let m2 = CsrMatrix::from_triplets(12, 9, m.triplets());
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn row_sum_matches_dense(ts in triplets()) {
        let m = build(&ts);
        let d = dense(&ts);
        for (r, row) in d.iter().enumerate() {
            let expect: f64 = row.iter().sum();
            prop_assert!((m.row_sum(r) - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn builder_and_from_triplets_agree(ts in triplets()) {
        let mut b = CooBuilder::new(12, 9);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        prop_assert_eq!(b.build(), build(&ts));
    }
}
