//! Randomized tests for the sparse-matrix substrate, driven by the in-tree
//! deterministic [`XorShift64`] generator (fixed seeds, no external PRNG).

use unicon_numeric::rng::{Rng, XorShift64};
use unicon_sparse::{CooBuilder, CsrMatrix};

const CASES: u64 = 64;

/// A random list of triplets within a 12x9 matrix.
fn triplets(rng: &mut XorShift64) -> Vec<(usize, usize, f64)> {
    let len = rng.random_range(80);
    (0..len)
        .map(|_| {
            (
                rng.random_range(12),
                rng.random_range(9),
                -100.0 + 200.0 * rng.random_f64(),
            )
        })
        .collect()
}

fn vector(rng: &mut XorShift64, len: usize) -> Vec<f64> {
    (0..len).map(|_| -10.0 + 20.0 * rng.random_f64()).collect()
}

fn build(ts: &[(usize, usize, f64)]) -> CsrMatrix {
    CsrMatrix::from_triplets(12, 9, ts.iter().copied())
}

/// Dense reference representation.
fn dense(ts: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; 9]; 12];
    for &(r, c, v) in ts {
        d[r][c] += v;
    }
    d
}

#[test]
fn get_matches_dense() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x6E7 + case);
        let ts = triplets(&mut rng);
        let m = build(&ts);
        let d = dense(&ts);
        for (r, row) in d.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert!((m.get(r, c) - v).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn matvec_matches_dense() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x3A7 + case);
        let ts = triplets(&mut rng);
        let x = vector(&mut rng, 9);
        let m = build(&ts);
        let d = dense(&ts);
        let y = m.matvec(&x);
        for (r, &yr) in y.iter().enumerate() {
            let expect: f64 = (0..9).map(|c| d[r][c] * x[c]).sum();
            assert!((yr - expect).abs() < 1e-7, "row {r}: {yr} vs {expect}");
        }
    }
}

#[test]
fn transpose_involution() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x721 + case);
        let m = build(&triplets(&mut rng));
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matvec_transposed_agrees_with_transpose_matvec() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x7A2 + case);
        let ts = triplets(&mut rng);
        let x = vector(&mut rng, 12);
        let m = build(&ts);
        let a = m.matvec_transposed(&x);
        let b = m.transpose().matvec(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }
}

#[test]
fn rows_are_sorted_and_deduped() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x50D + case);
        let m = build(&triplets(&mut rng));
        let mut nnz = 0;
        for r in 0..m.rows() {
            let cols: Vec<usize> = m.row(r).map(|(c, _)| c).collect();
            nnz += cols.len();
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {r} not strictly sorted");
            }
        }
        assert_eq!(nnz, m.nnz());
    }
}

#[test]
fn no_stored_zeros() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x2E0 + case);
        let m = build(&triplets(&mut rng));
        for (_, _, v) in m.triplets() {
            assert!(v != 0.0);
        }
    }
}

#[test]
fn triplets_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x47F + case);
        let m = build(&triplets(&mut rng));
        let m2 = CsrMatrix::from_triplets(12, 9, m.triplets());
        assert_eq!(m, m2);
    }
}

#[test]
fn row_sum_matches_dense() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x705 + case);
        let ts = triplets(&mut rng);
        let m = build(&ts);
        let d = dense(&ts);
        for (r, row) in d.iter().enumerate() {
            let expect: f64 = row.iter().sum();
            assert!((m.row_sum(r) - expect).abs() < 1e-8);
        }
    }
}

#[test]
fn builder_and_from_triplets_agree() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xB17 + case);
        let ts = triplets(&mut rng);
        let mut b = CooBuilder::new(12, 9);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        assert_eq!(b.build(), build(&ts));
    }
}
