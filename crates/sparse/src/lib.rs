//! Sparse-matrix substrate for the `unicon` workspace.
//!
//! The paper's prototype stores transition relations "as sparse matrices
//! storing action and rate information separately"; this crate provides the
//! corresponding storage layer: a compressed-sparse-row matrix ([`CsrMatrix`])
//! with a coordinate-format builder ([`CooBuilder`]) and the handful of
//! kernels the analyses need (row views, `y = Ax`, `y = Aᵀx`, transpose,
//! row-sum, memory accounting).
//!
//! # Examples
//!
//! ```
//! use unicon_sparse::CooBuilder;
//!
//! let mut b = CooBuilder::new(2, 3);
//! b.push(0, 0, 1.0);
//! b.push(0, 2, 2.0);
//! b.push(1, 1, 3.0);
//! b.push(1, 1, 0.5); // duplicates are merged by addition
//! let m = b.build();
//! assert_eq!(m.nnz(), 3);
//! assert_eq!(m.get(1, 1), 3.5);
//! let y = m.matvec(&[1.0, 1.0, 1.0]);
//! assert_eq!(y, vec![3.0, 3.5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
mod coo;
mod csr;
pub mod fused;

pub use chunk::{assign_blocks, fixed_blocks, RowChunk};
pub use coo::CooBuilder;
pub use csr::{CsrMatrix, RowIter};
pub use fused::{ClassTiming, FusedBuilder, FusedGroups, GroupClass, PoolRow};
