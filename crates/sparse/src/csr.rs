//! Compressed sparse row matrices.

use unicon_numeric::NeumaierSum;

/// An immutable sparse matrix in compressed-sparse-row format.
///
/// Construct one via [`CooBuilder`](crate::CooBuilder) or
/// [`CsrMatrix::from_triplets`]. Column indices within each row are strictly
/// increasing and duplicate entries have been merged, which every kernel in
/// this crate relies on.
///
/// # Examples
///
/// ```
/// use unicon_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, [(0, 1, 2.0), (1, 0, 3.0)]);
/// assert_eq!(m.matvec(&[1.0, 10.0]), vec![20.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty matrix with the given shape (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets, merging duplicates
    /// by addition and dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triplets<I>(rows: usize, cols: usize, triplets: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut b = crate::CooBuilder::new(rows, cols);
        for (r, c, v) in triplets {
            b.push(r, c, v);
        }
        b.build()
    }

    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The value at `(row, col)`, `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of one row, in
    /// increasing column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> RowIter<'_> {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        RowIter {
            cols: &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]],
            values: &self.values[self.row_ptr[row]..self.row_ptr[row + 1]],
            pos: 0,
        }
    }

    /// Number of stored entries in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// Sum of the stored entries of `row` (compensated).
    pub fn row_sum(&self, row: usize) -> f64 {
        let mut s = NeumaierSum::new();
        for (_, v) in self.row(row) {
            s.add(v);
        }
        s.value()
    }

    /// Dense matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            *yr = acc;
        }
        y
    }

    /// Dense transposed product `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "dimension mismatch in matvec_transposed"
        );
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[i] as usize] += self.values[i] * xr;
            }
        }
        y
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i] as usize;
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = r as u32;
                values[slot] = self.values[i];
            }
        }
        CsrMatrix::from_parts(self.cols, self.rows, row_ptr, col_idx, values)
    }

    /// Applies `f` to every stored value, keeping the sparsity pattern.
    pub fn map_values<F: FnMut(f64) -> f64>(&self, mut f: F) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Approximate heap footprint in bytes (the figure reported in Table 1's
    /// "Mem" column for the strictly alternating representation).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Iterates over all stored `(row, col, value)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }
}

/// Iterator over the stored `(col, value)` pairs of one matrix row.
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    cols: &'a [u32],
    values: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.cols.len() {
            let item = (self.cols[self.pos] as usize, self.values[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            [
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, -1.5),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn get_stored_and_missing() {
        let m = sample();
        assert_eq!(m.get(0, 3), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), -1.5);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }

    #[test]
    fn row_iteration_sorted() {
        let m = sample();
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (3, 2.0)]);
        assert_eq!(m.row(1).len(), 1);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = m.matvec(&x);
        assert_eq!(y, vec![9.0, -3.0, 19.0]);
        // (Aᵀ)ᵀ x == A x
        let tt = m.transpose().transpose();
        assert_eq!(tt.matvec(&x), y);
        // Aᵀ y via both kernels
        let z1 = m.matvec_transposed(&y);
        let z2 = m.transpose().matvec(&y);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn zeros_matrix() {
        let m = CsrMatrix::zeros(2, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0; 5]), vec![0.0, 0.0]);
        assert_eq!(m.row(1).count(), 0);
    }

    #[test]
    fn row_sum() {
        let m = sample();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), -1.5);
    }

    #[test]
    fn map_values_keeps_pattern() {
        let m = sample().map_values(|v| v * 2.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn triplets_roundtrip() {
        let m = sample();
        let m2 = CsrMatrix::from_triplets(3, 4, m.triplets());
        assert_eq!(m, m2);
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(sample().memory_bytes() > 0);
    }
}
