//! Coordinate-format builder for [`CsrMatrix`](crate::CsrMatrix).

use crate::CsrMatrix;

/// Incremental builder collecting `(row, col, value)` triplets.
///
/// [`CooBuilder::build`] sorts the triplets, merges duplicates by addition,
/// drops entries that merged to exactly zero, and produces a [`CsrMatrix`].
///
/// # Examples
///
/// ```
/// use unicon_sparse::CooBuilder;
///
/// let mut b = CooBuilder::new(2, 2);
/// b.push(0, 1, 1.0);
/// b.push(0, 1, -1.0); // cancels out
/// b.push(1, 0, 2.0);
/// let m = b.build();
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed u32 index space"
        );
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds a triplet. Duplicates are allowed and merged at build time.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds or the value is not finite.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        assert!(value.is_finite(), "matrix entries must be finite");
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of triplets pushed so far (before merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into a CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());

        let mut i = 0;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            let mut j = i + 1;
            while j < self.entries.len() && self.entries[j].0 == r && self.entries[j].1 == c {
                v += self.entries[j].2;
                j += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
            }
            i = j;
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(0, 0, 3.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn drops_cancelled_entries() {
        let mut b = CooBuilder::new(1, 2);
        b.push(0, 0, 5.0);
        b.push(0, 0, -5.0);
        b.push(0, 1, 1.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut b = CooBuilder::new(2, 3);
        b.push(1, 2, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 3.0);
        let m = b.build();
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(0, 3.0), (2, 1.0)]);
    }

    #[test]
    fn empty_builder_builds_zero_matrix() {
        let b = CooBuilder::new(4, 4);
        assert!(b.is_empty());
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        CooBuilder::new(1, 1).push(1, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn push_nan_panics() {
        CooBuilder::new(1, 1).push(0, 0, f64::NAN);
    }
}
