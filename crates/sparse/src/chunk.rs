//! Deterministic row chunking for parallel kernels.
//!
//! Parallel sweeps over a state space (or the rows of a matrix) must not
//! let the thread count leak into the arithmetic: the reachability
//! engine's determinism contract demands bitwise-identical results for 1,
//! 2 or 64 workers. The helpers here fix the granularity once — blocks of
//! a constant size — and only vary *which worker owns which blocks*, never
//! where block boundaries fall, so per-block partial results are
//! reproducible by construction.

use std::ops::Range;

use crate::CsrMatrix;

/// Splits `0..n` into consecutive blocks of `block_size` items (the last
/// block may be shorter).
///
/// # Panics
///
/// Panics if `block_size == 0`.
///
/// # Examples
///
/// ```
/// use unicon_sparse::chunk::fixed_blocks;
///
/// assert_eq!(fixed_blocks(10, 4), vec![0..4, 4..8, 8..10]);
/// assert_eq!(fixed_blocks(0, 4), Vec::<std::ops::Range<usize>>::new());
/// ```
pub fn fixed_blocks(n: usize, block_size: usize) -> Vec<Range<usize>> {
    assert!(block_size > 0, "block size must be positive");
    (0..n.div_ceil(block_size))
        .map(|b| b * block_size..((b + 1) * block_size).min(n))
        .collect()
}

/// Assigns `num_blocks` consecutive blocks to `workers` contiguous
/// shares, as evenly as possible (the first `num_blocks % workers` shares
/// get one extra block). Returned ranges index *blocks*, not items; empty
/// shares are possible when there are more workers than blocks.
///
/// # Panics
///
/// Panics if `workers == 0`.
///
/// # Examples
///
/// ```
/// use unicon_sparse::chunk::assign_blocks;
///
/// assert_eq!(assign_blocks(7, 3), vec![0..3, 3..5, 5..7]);
/// assert_eq!(assign_blocks(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
/// ```
pub fn assign_blocks(num_blocks: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers > 0, "need at least one worker");
    let base = num_blocks / workers;
    let extra = num_blocks % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A borrowed view of a consecutive row range of a [`CsrMatrix`] —
/// the unit of work a parallel kernel hands to one worker.
#[derive(Debug, Clone)]
pub struct RowChunk<'a> {
    matrix: &'a CsrMatrix,
    rows: Range<usize>,
}

impl<'a> RowChunk<'a> {
    /// The global row range this chunk covers.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chunk covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates one row of the chunk by *global* row index.
    ///
    /// # Panics
    ///
    /// Panics if `row` lies outside the chunk's range.
    pub fn row(&self, row: usize) -> crate::RowIter<'a> {
        assert!(self.rows.contains(&row), "row {row} outside chunk");
        self.matrix.row(row)
    }

    /// Chunk-local matrix–vector product: writes `A[r]·x` for every row
    /// `r` of the chunk into `y[r - start]`, leaving other rows to other
    /// chunks. Row arithmetic is identical to [`CsrMatrix::matvec`], so
    /// assembling all chunk outputs reproduces the full product bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` mismatches the matrix columns or `y.len()`
    /// mismatches the chunk length.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.matrix.cols(), "dimension mismatch");
        assert_eq!(y.len(), self.rows.len(), "chunk output length mismatch");
        for (out, r) in y.iter_mut().zip(self.rows.clone()) {
            let mut acc = 0.0;
            for (c, v) in self.matrix.row(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }
}

impl CsrMatrix {
    /// A borrowed view of the consecutive row range `rows`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn row_chunk(&self, rows: Range<usize>) -> RowChunk<'_> {
        assert!(
            rows.start <= rows.end && rows.end <= self.rows(),
            "row range {rows:?} out of bounds ({})",
            self.rows()
        );
        RowChunk { matrix: self, rows }
    }

    /// Splits the matrix into row chunks of `block_size` rows each (the
    /// last may be shorter) — the deterministic work units for parallel
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn row_chunks(&self, block_size: usize) -> Vec<RowChunk<'_>> {
        fixed_blocks(self.rows(), block_size)
            .into_iter()
            .map(|r| self.row_chunk(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            5,
            4,
            [
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, -1.5),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (4, 3, 0.5),
            ],
        )
    }

    #[test]
    fn fixed_blocks_cover_exactly_once() {
        for (n, b) in [(0, 3), (1, 3), (9, 3), (10, 3), (11, 3), (5, 100)] {
            let blocks = fixed_blocks(n, b);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &blocks {
                assert_eq!(r.start, expected_start);
                assert!(r.len() <= b && !r.is_empty());
                covered += r.len();
                expected_start = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn fixed_blocks_rejects_zero() {
        fixed_blocks(4, 0);
    }

    #[test]
    fn assign_blocks_is_balanced_and_contiguous() {
        for (blocks, workers) in [(7, 3), (8, 4), (3, 5), (0, 2), (100, 7)] {
            let shares = assign_blocks(blocks, workers);
            assert_eq!(shares.len(), workers);
            assert_eq!(shares.first().map(|r| r.start), Some(0));
            let mut prev_end = 0;
            let (mut min_len, mut max_len) = (usize::MAX, 0);
            for r in &shares {
                assert_eq!(r.start, prev_end);
                prev_end = r.end;
                min_len = min_len.min(r.len());
                max_len = max_len.max(r.len());
            }
            assert_eq!(prev_end, blocks);
            assert!(max_len - min_len <= 1, "unbalanced: {shares:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn assign_blocks_rejects_zero_workers() {
        assign_blocks(4, 0);
    }

    #[test]
    fn chunked_matvec_reassembles_bitwise() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let full = m.matvec(&x);
        for block in [1, 2, 3, 100] {
            let mut assembled = vec![0.0; m.rows()];
            for chunk in m.row_chunks(block) {
                let rows = chunk.rows();
                chunk.matvec_into(&x, &mut assembled[rows.start..rows.end]);
            }
            let full_bits: Vec<u64> = full.iter().map(|v| v.to_bits()).collect();
            let asm_bits: Vec<u64> = assembled.iter().map(|v| v.to_bits()).collect();
            assert_eq!(full_bits, asm_bits, "block size {block}");
        }
    }

    #[test]
    fn row_chunk_views_expose_global_rows() {
        let m = sample();
        let chunk = m.row_chunk(2..4);
        assert_eq!(chunk.len(), 2);
        assert!(!chunk.is_empty());
        assert_eq!(chunk.rows(), 2..4);
        let row2: Vec<_> = chunk.row(2).collect();
        assert_eq!(row2, vec![(0, 4.0), (2, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "outside chunk")]
    fn row_chunk_rejects_foreign_row() {
        let m = sample();
        m.row_chunk(0..2).row(3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_chunk_rejects_bad_range() {
        sample().row_chunk(3..9);
    }
}
